"""Seeded random program generation: the differential/audit corpus.

:func:`random_case` produces a seeded (program, database) pair drawing
from the full registered operation set — kernel-backed and fallback ops
alike — optionally with wildcard arguments/parameters and while loops.
Databases come from :func:`repro.data.generators.random_database`:
adversarial tables where ⊥, repeated attributes, and names-in-data all
occur.  A coarse size ledger keeps every generated program's
intermediate tables small, so no resource governor is needed and runs
are cheap enough to use as a corpus.

Two consumers share this generator (same seeds → same cases):

* the differential-testing harness (``tests/engine/diffgen.py``) runs
  each case on the naive and vectorized backends and compares outcomes;
* the ``repro stats-audit`` command replays the corpus under an
  estimation scope to measure per-op q-error of the cardinality
  estimator (:mod:`repro.obs.workload`).
"""

from __future__ import annotations

import random

from ..algebra.programs.params import Star
from ..algebra.programs.statements import Assignment, Program, Statement, While
from ..core import TabularDatabase
from .generators import random_database

__all__ = [
    "ATTRS",
    "VALUES",
    "NAMES",
    "MAX_WHILE_ITERATIONS",
    "random_case",
    "random_rewrite_case",
]

#: While-loop budget every corpus consumer shares (generated loops are
#: built to terminate well within it).
MAX_WHILE_ITERATIONS = 12

ATTRS = ("A", "B", "C", "D")
VALUES = tuple(f"v{i}" for i in range(20))
NAMES = ("R", "S", "T", "U", "V")

#: Operations that never grow a table (rows and columns bounded by the
#: input) — the only ones allowed inside while-loop bodies, so loop
#: iteration cannot blow up the database.
_SAFE_OPS = (
    "SELECT",
    "SELECTCONST",
    "PROJECT",
    "RENAME",
    "TRANSPOSE",
    "CLEANUP",
    "PURGE",
    "DEDUP",
    "DEDUPCOLUMNS",
    "DROPNULLROWS",
    "DIFFERENCE",
    "INTERSECTION",
)

#: Fallback-only operations (no kernel): drawing these mixes naive and
#: vectorized statements inside one vector-engine run.
_FALLBACK_OPS = (
    "GROUP",
    "MERGE",
    "SWITCH",
    "SPLIT",
    "NATURALJOIN",
    "GROUPCOMPACT",
    "MERGECOMPACT",
    "TUPLENEW",
)


class _Sizes:
    """Coarse per-name (tables, rows, cols) upper bounds during generation."""

    def __init__(self, db: TabularDatabase):
        self.by_name: dict[str, tuple[int, int, int]] = {}
        for table in db.tables:
            name = str(table.name)
            count, rows, cols = self.by_name.get(name, (0, 0, 0))
            self.by_name[name] = (
                count + 1,
                max(rows, table.height),
                max(cols, table.width),
            )

    def get(self, name: object) -> tuple[int, int, int]:
        if isinstance(name, Star):
            out = (1, 1, 1)
            for bound in self.by_name.values():
                out = tuple(max(a, b) for a, b in zip(out, bound))
            return out
        return self.by_name.get(str(name), (1, 1, 1))

    def put(self, name: object, bound: tuple[int, int, int]) -> None:
        count = min(bound[0], 6)
        rows = min(bound[1], 400)
        cols = min(bound[2], 20)
        if isinstance(name, Star):
            for key in self.by_name:
                self.by_name[key] = (count, rows, cols)
        else:
            self.by_name[str(name)] = (count, rows, cols)


def _attr(rng: random.Random) -> object:
    return None if rng.random() < 0.08 else rng.choice(ATTRS)


def _attr_set(rng: random.Random) -> list:
    size = rng.randrange(0, 3)
    return [_attr(rng) for _ in range(size)]


def _value(rng: random.Random) -> object:
    return None if rng.random() < 0.1 else rng.choice(VALUES)


def _gen_params(rng: random.Random, op: str, star: Star | None) -> dict:
    def attr() -> object:
        if star is not None and rng.random() < 0.2:
            return star
        return _attr(rng)

    if op == "SELECT":
        return {"left": attr(), "right": attr()}
    if op == "SELECTCONST":
        return {"attr": attr(), "value": _value(rng)}
    if op == "PROJECT":
        return {"attrs": _attr_set(rng)}
    if op == "RENAME":
        return {"old": attr(), "new": attr()}
    if op in ("CLEANUP", "GROUP", "GROUPCOMPACT"):
        return {"by": _attr_set(rng), "on": _attr_set(rng)}
    if op in ("PURGE", "MERGE", "MERGECOMPACT"):
        return {"on": _attr_set(rng), "by": _attr_set(rng)}
    if op in ("DROPNULLROWS", "TUPLENEW"):
        return {"attr": attr()}
    if op == "CONSTCOLUMN":
        return {"attr": attr(), "value": _value(rng)}
    if op == "SWITCH":
        return {"value": _value(rng)}
    if op == "SPLIT":
        return {"on": _attr_set(rng)}
    return {}


def _arity(op: str) -> int:
    return 2 if op in ("UNION", "DIFFERENCE", "INTERSECTION", "PRODUCT",
                       "CLASSICALUNION", "NATURALJOIN") else 1


def _gen_statement(
    rng: random.Random, sizes: _Sizes, *, allow_wildcards: bool, safe_only: bool
) -> list[Statement]:
    """One generation step: usually one statement, sometimes a fusable
    PRODUCT+SELECT pair (so the planner's rewrite is differentially
    covered end to end)."""
    star = Star(1) if allow_wildcards and rng.random() < 0.25 else None

    pool: tuple[str, ...] = _SAFE_OPS
    if not safe_only:
        pool = pool + ("UNION", "PRODUCT", "CLASSICALUNION", "CONSTCOLUMN")
        pool = pool + tuple(rng.sample(_FALLBACK_OPS, 3))
    op = rng.choice(pool)

    args: list[object] = []
    for _ in range(_arity(op)):
        if star is not None and rng.random() < 0.6:
            args.append(star)
        else:
            args.append(rng.choice(NAMES[:4]))
    if star is not None and not any(isinstance(a, Star) for a in args):
        args[0] = star

    counts = [sizes.get(a) for a in args]
    target: object = rng.choice(NAMES)
    if star is not None and rng.random() < 0.3:
        target = star

    # Size guards: regenerate growing ops as a safe op when too big.
    if op in ("PRODUCT", "NATURALJOIN"):
        (n1, r1, c1), (n2, r2, c2) = counts
        if n1 * n2 > 4 or r1 * r2 > 200 or c1 + c2 > 14:
            op = "DIFFERENCE"
    if op in ("UNION", "CLASSICALUNION"):
        (n1, r1, c1), (n2, r2, c2) = counts
        if n1 * n2 > 4 or r1 + r2 > 300 or c1 + c2 > 16:
            op = "INTERSECTION"
    if op in ("GROUP", "GROUPCOMPACT", "MERGE", "MERGECOMPACT", "SWITCH"):
        _n, rows, cols = counts[0]
        if rows + cols > 14 or rows * max(cols, 1) > 200:
            op = "DEDUP"
    if op == "SPLIT":
        _n, rows, cols = counts[0]
        if counts[0][0] * max(rows, 1) > 12:
            op = "DEDUP"
    if op in ("CONSTCOLUMN", "TUPLENEW") and counts[0][2] > 16:
        op = "PROJECT"
    args = args[: _arity(op)]
    counts = counts[: _arity(op)]

    statements = [Assignment(target, op, args, _gen_params(rng, op, star))]

    # Update the ledger with a coarse upper bound of the result shape.
    (n1, r1, c1) = counts[0]
    if _arity(op) == 2:
        (n2, r2, c2) = counts[1]
        bound = (n1 * n2, r1 * r2 if op in ("PRODUCT", "NATURALJOIN") else r1 + r2,
                 c1 + c2)
    elif op in ("GROUP", "GROUPCOMPACT"):
        bound = (n1, 2 * r1 + 2, c1 + r1 + 2)
    elif op in ("MERGE", "MERGECOMPACT"):
        bound = (n1, r1 * max(c1, 1), c1 + 1)
    elif op == "SPLIT":
        bound = (n1 * max(r1, 1), r1, c1)
    elif op == "TRANSPOSE":
        bound = (n1, c1 + 1, r1 + 1)
    elif op == "SWITCH":
        bound = (n1, r1 + c1, r1 + c1)
    elif op in ("CONSTCOLUMN", "TUPLENEW"):
        bound = (n1, r1, c1 + 1)
    else:
        bound = (n1, r1, c1)
    sizes.put(target, bound)

    # Sometimes chase a PRODUCT with a same-target SELECT: exactly the
    # adjacent pair the planner fuses into PRODUCTSELECT.
    if op == "PRODUCT" and not isinstance(target, Star) and rng.random() < 0.7:
        statements.append(
            Assignment(
                target,
                "SELECT",
                [target],
                {"left": _attr(rng), "right": _attr(rng)},
            )
        )
    return statements


def _gen_while(rng: random.Random, sizes: _Sizes, allow_wildcards: bool) -> While:
    condition = rng.choice(NAMES[:4])
    body: list[Statement] = []
    for _ in range(rng.randrange(1, 3)):
        body.extend(
            _gen_statement(rng, sizes, allow_wildcards=allow_wildcards, safe_only=True)
        )
    if rng.random() < 0.7:
        # Guarantee termination: R \ R is always empty, so assigning it
        # to the condition name ends the loop after this iteration.
        body.append(Assignment(condition, "DIFFERENCE", [condition, condition]))
    else:
        body.append(
            Assignment(
                condition,
                "SELECTCONST",
                [condition],
                {"attr": _attr(rng), "value": _value(rng)},
            )
        )
    return While(condition, Program(body))


def random_case(
    seed: int, *, allow_while: bool = True, allow_wildcards: bool = True
) -> tuple[Program, TabularDatabase]:
    """The seeded random (program, database) corpus case."""
    rng = random.Random(seed)
    db = random_database(
        n_tables=rng.randrange(2, 5),
        height=rng.randrange(2, 5),
        width=rng.randrange(1, 4),
        seed=rng.randrange(10**9),
    )
    sizes = _Sizes(db)
    statements: list[Statement] = []
    for _ in range(rng.randrange(3, 9)):
        if allow_while and rng.random() < 0.18:
            statements.append(_gen_while(rng, sizes, allow_wildcards))
        else:
            statements.extend(
                _gen_statement(
                    rng, sizes, allow_wildcards=allow_wildcards, safe_only=False
                )
            )
    return Program(statements), db


# ----------------------------------------------------------------------
# The rewrite-targeting family
# ----------------------------------------------------------------------
#
# ``random_case`` hits the planner's PRODUCT+SELECT fusion often but the
# other optimizer rewrites only by accident.  This family generates
# programs *shaped like* each rule's redex — deep product chains,
# σ-after-RENAME/PROJECT, dead projections, duplicate subexpressions,
# σ-over-∪ — over the same adversarial databases, so the differential
# harness can prove every rewrite sound on inputs with ⊥, repeated
# attributes, and names-in-data.


def _motif_chain(rng: random.Random, bases: list[str]) -> list[Statement]:
    """A ≥3-way PRODUCT chain with trailing selects: join-reorder's redex."""
    k = rng.randrange(3, 5)
    if len(bases) >= k:
        leaves = rng.sample(bases, k=k)
    else:  # adversarial dbs reuse names; repeats keep the chain deep
        leaves = [rng.choice(bases) for _ in range(k)]
    target = rng.choice([n for n in NAMES if n not in bases] or ["T"])
    statements = [Assignment(target, "PRODUCT", [leaves[0], leaves[1]])]
    for leaf in leaves[2:]:
        statements.append(Assignment(target, "PRODUCT", [target, leaf]))
    for _ in range(rng.randrange(1, 3)):
        statements.append(
            Assignment(
                target,
                "SELECT",
                [target],
                {"left": _attr(rng), "right": _attr(rng)},
            )
        )
    return statements


def _motif_renamed_self_join(rng: random.Random, bases: list[str]) -> list[Statement]:
    """RENAME a copy, product it against the original, then select —
    σ can push through the RENAME when its attrs are untouched."""
    base = rng.choice(bases)
    alias = rng.choice([n for n in NAMES if n not in bases] or ["U"])
    old, new = rng.sample(ATTRS, 2)
    select_attr = rng.choice([a for a in ATTRS if a not in (old, new)])
    target = rng.choice([n for n in NAMES if n not in (*bases, alias)] or ["T"])
    return [
        Assignment(alias, "RENAME", [base], {"old": old, "new": new}),
        Assignment(alias, "SELECT", [alias], {"left": select_attr, "right": select_attr}),
        Assignment(target, "PRODUCT", [base, alias]),
        Assignment(
            target, "SELECT", [target], {"left": select_attr, "right": _attr(rng)}
        ),
    ]


def _motif_dead_projection(rng: random.Random, bases: list[str]) -> list[Statement]:
    """A projection whose target is overwritten before any read, plus a
    π∘π pair: prune-dead-project's two redexes."""
    base = rng.choice(bases)
    target = rng.choice([n for n in NAMES if n not in bases] or ["T"])
    wide = [a for a in ATTRS if rng.random() < 0.8] or list(ATTRS[:2])
    narrow = [a for a in wide if rng.random() < 0.5]
    return [
        Assignment(target, "PROJECT", [base], {"attrs": _attr_set(rng)}),
        Assignment(target, "PROJECT", [base], {"attrs": wide}),
        Assignment(target, "PROJECT", [target], {"attrs": narrow}),
    ]


def _motif_duplicate(rng: random.Random, bases: list[str]) -> list[Statement]:
    """The same pure computation bound to two names: CSE's redex."""
    base = rng.choice(bases)
    op = rng.choice(("SELECT", "PROJECT", "DEDUP", "RENAME"))
    params = _gen_params(rng, op, None)
    spare = [n for n in NAMES if n not in bases] or ["T", "U"]
    first = spare[0]
    second = spare[1] if len(spare) > 1 else rng.choice(bases)
    return [
        Assignment(first, op, [base], dict(params)),
        Assignment(second, op, [base], dict(params)),
    ]


def _motif_select_union(rng: random.Random, bases: list[str]) -> list[Statement]:
    """σ over ∪: select-pushdown-union's redex."""
    left, right = rng.sample(bases, 2) if len(bases) >= 2 else (bases[0], bases[0])
    target = rng.choice([n for n in NAMES if n not in bases] or ["T"])
    return [
        Assignment(target, "UNION", [left, right]),
        Assignment(
            target, "SELECT", [target], {"left": _attr(rng), "right": _attr(rng)}
        ),
    ]


_REWRITE_MOTIFS = (
    _motif_chain,
    _motif_renamed_self_join,
    _motif_dead_projection,
    _motif_duplicate,
    _motif_select_union,
)


def random_rewrite_case(seed: int) -> tuple[Program, TabularDatabase]:
    """A seeded (program, database) case shaped to trigger rewrites.

    Every seed draws 2–4 motifs from the redex catalogue (each motif
    maps onto one optimizer rule) plus a little safe-op noise between
    them, over an adversarial :func:`random_database`.  Sizes stay small
    enough (base tables ≤ 4 rows, chains ≤ 4-way) that the worst-case
    product is a few hundred rows — no governor needed.
    """
    rng = random.Random(seed ^ 0x5EED)
    n_tables = rng.randrange(3, 5)
    db = random_database(
        n_tables=n_tables,
        height=rng.randrange(2, 5),
        width=rng.randrange(1, 3),
        seed=rng.randrange(10**9),
    )
    bases = sorted({str(t.name) for t in db.tables})
    sizes = _Sizes(db)
    statements: list[Statement] = []
    for _ in range(rng.randrange(2, 5)):
        motif = rng.choice(_REWRITE_MOTIFS)
        statements.extend(motif(rng, bases))
        if rng.random() < 0.4:
            statements.extend(
                _gen_statement(rng, sizes, allow_wildcards=False, safe_only=True)
            )
    return Program(statements), db
