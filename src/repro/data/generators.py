"""Synthetic workload generators for tests and benchmarks.

All generators are deterministic given their ``seed``, so benchmark runs
and property tests are reproducible.  They produce data in the shape of the
paper's examples: relation-style fact tables (à la ``SalesInfo1``),
grouped/pivoted tables (à la ``SalesInfo2``), and random "wild" tables that
exercise the model's full latitude (repeated attributes, ⊥ attributes,
names in data positions).
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core import NULL, N, Name, Symbol, Table, TabularDatabase, V, Value, make_table

__all__ = [
    "synthetic_sales_facts",
    "synthetic_sales_table",
    "synthetic_grouped_table",
    "random_table",
    "random_database",
]


def synthetic_sales_facts(
    n_parts: int, n_regions: int, density: float = 0.7, seed: int = 0
) -> list[tuple[str, str, int]]:
    """Random (part, region, sold) facts; each pair kept with ``density``.

    At least one fact per part is guaranteed so every part appears.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must lie in [0, 1], got {density}")
    rng = random.Random(seed)
    parts = [f"part{i}" for i in range(n_parts)]
    regions = [f"region{j}" for j in range(n_regions)]
    facts: list[tuple[str, str, int]] = []
    for part in parts:
        chosen = [r for r in regions if rng.random() < density]
        if not chosen:
            chosen = [rng.choice(regions)]
        for region in chosen:
            facts.append((part, region, rng.randrange(10, 1000)))
    return facts


def synthetic_sales_table(
    n_parts: int, n_regions: int, density: float = 0.7, seed: int = 0
) -> Table:
    """A relation-style ``Sales(Part, Region, Sold)`` table of random facts."""
    facts = synthetic_sales_facts(n_parts, n_regions, density, seed)
    return make_table("Sales", ["Part", "Region", "Sold"], facts)


def synthetic_grouped_table(
    n_parts: int, n_regions: int, density: float = 0.7, seed: int = 0
) -> Table:
    """A pivoted sales table in the ``SalesInfo2`` shape (one column per region)."""
    facts = synthetic_sales_facts(n_parts, n_regions, density, seed)
    regions = sorted({r for (_, r, _) in facts})
    parts = sorted({p for (p, _, _) in facts})
    sold = {(p, r): s for (p, r, s) in facts}
    header = [N("Sales"), N("Part")] + [N("Sold")] * len(regions)
    region_row = [N("Region"), NULL] + [V(r) for r in regions]
    grid = [header, region_row]
    for part in parts:
        row: list[Symbol] = [NULL, V(part)]
        for region in regions:
            value = sold.get((part, region))
            row.append(NULL if value is None else V(value))
        grid.append(row)
    return Table(grid)


def random_table(
    height: int,
    width: int,
    seed: int = 0,
    name: str = "T",
    null_rate: float = 0.15,
    attribute_pool: Sequence[str] = ("A", "B", "C", "D"),
    value_pool_size: int = 20,
    names_in_data: bool = True,
) -> Table:
    """A random table exercising the model's full latitude.

    Column attributes are drawn (with repetition) from ``attribute_pool``
    and may be ⊥; row attributes are mostly ⊥ with occasional names; data
    entries are values, nulls, and — when ``names_in_data`` — occasional
    names, since the model allows names in data positions.
    """
    rng = random.Random(seed)
    values = [V(f"v{i}") for i in range(value_pool_size)]

    def random_attr() -> Symbol:
        if rng.random() < 0.1:
            return NULL
        return N(rng.choice(list(attribute_pool)))

    def random_entry() -> Symbol:
        roll = rng.random()
        if roll < null_rate:
            return NULL
        if names_in_data and roll < null_rate + 0.05:
            return N(rng.choice(list(attribute_pool)))
        return rng.choice(values)

    header: list[Symbol] = [N(name)] + [random_attr() for _ in range(width)]
    grid = [header]
    for _ in range(height):
        row_attr: Symbol = NULL if rng.random() < 0.8 else N(rng.choice(list(attribute_pool)))
        grid.append([row_attr] + [random_entry() for _ in range(width)])
    return Table(grid)


def random_database(
    n_tables: int, height: int = 4, width: int = 3, seed: int = 0
) -> TabularDatabase:
    """A random database of ``n_tables`` random tables (names may repeat)."""
    rng = random.Random(seed)
    names = ["R", "S", "T"]
    tables = [
        random_table(
            height=rng.randrange(1, height + 1),
            width=rng.randrange(1, width + 1),
            seed=rng.randrange(10**9),
            name=rng.choice(names),
        )
        for _ in range(n_tables)
    ]
    return TabularDatabase(tables)
