"""FO + while + new — the relational language of Van den Bussche et al. [3].

The paper leans on this language twice: Theorem 4.1 simulates it within
the tabular algebra, and Theorem 4.4's completeness proof expresses the
canonical-level transformation in it.  A program is a sequence of

* ``Assign(name, expr)`` — evaluate a relational algebra expression and
  (re)bind a relation name to the result;
* ``AssignNew(name, expr, id_attr)`` — the *new* construct: evaluate and
  extend every tuple with a globally fresh value under ``id_attr``
  (object/tuple-id creation);
* ``WhileNotEmpty(name, body)`` — the *while* construct: repeat ``body``
  while the named relation is non-empty.

The interpreter mirrors the tabular one (fresh-value source, iteration
budget) so results can be compared 1:1 after compilation to TA.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core import (
    EvaluationError,
    FreshValueSource,
    SchemaError,
)
from ..obs import runtime as _obs
from ..obs.trace import NULL_SPAN
from ..runtime.governor import GOV as _GOV, IterationBudget
from .algebra import Expr
from .relation import Relation, RelationalDatabase

__all__ = [
    "FWStatement",
    "Assign",
    "AssignNew",
    "AssignSetNew",
    "WhileNotEmpty",
    "FWProgram",
]


class FWStatement:
    """Abstract base of FO + while + new statements."""

    def execute(
        self, db: RelationalDatabase, fresh: FreshValueSource, budget: "_Budget"
    ) -> RelationalDatabase:
        raise NotImplementedError


class _Budget(IterationBudget):
    """Shared while-iteration budget for one program run.

    A thin veneer over :class:`repro.runtime.governor.IterationBudget`:
    exhaustion raises :class:`~repro.core.errors.NonTerminationError`
    with structured fields, and every tick is forwarded to the installed
    resource governor — one ``governed()`` scope bounds TA and FO+while
    programs alike.
    """

    def __init__(self, limit: int):
        super().__init__(limit, label="FO+while+new")


class Assign(FWStatement):
    """``R := expr``."""

    def __init__(self, name: str, expr: Expr):
        self.name = name
        self.expr = expr

    def execute(self, db, fresh, budget):
        result = self.expr.evaluate(db)
        return db.set(result.with_name(self.name))

    def __repr__(self) -> str:
        return f"{self.name} := {self.expr!r}"


class AssignNew(FWStatement):
    """``R := new(expr)`` — extend each tuple with a fresh value."""

    def __init__(self, name: str, expr: Expr, id_attr: str = "Id"):
        self.name = name
        self.expr = expr
        self.id_attr = id_attr

    def execute(self, db, fresh, budget):
        result = self.expr.evaluate(db)
        if self.id_attr in result.schema:
            raise SchemaError(
                f"new: attribute {self.id_attr!r} already present in {result.schema}"
            )
        extended = Relation(
            self.name,
            result.schema + (self.id_attr,),
            (row + (fresh.fresh(),) for row in result),
        )
        return db.set(extended)

    def __repr__(self) -> str:
        return f"{self.name} := new[{self.id_attr}]({self.expr!r})"


class AssignSetNew(FWStatement):
    """``R := setnew(expr, set_attr)`` — the power-set construct.

    For every non-empty *subset* S of ``expr``'s tuples, the result lists
    S's tuples extended with S's own fresh value under ``set_attr`` — the
    relational mirror of the tabular SETNEW (Section 3.5), and the piece
    of machinery set-creating transformations (e.g. GOOD's abstraction)
    need.  Exponential by design; ``limit`` bounds the base cardinality.
    """

    def __init__(self, name: str, expr: Expr, set_attr: str = "Set", limit: int = 16):
        self.name = name
        self.expr = expr
        self.set_attr = set_attr
        self.limit = limit

    def execute(self, db, fresh, budget):
        from ..core import LimitExceededError

        result = self.expr.evaluate(db)
        if self.set_attr in result.schema:
            raise SchemaError(
                f"setnew: attribute {self.set_attr!r} already present in {result.schema}"
            )
        rows = list(result)
        if len(rows) > self.limit:
            raise LimitExceededError(
                f"setnew over {len(rows)} tuples would enumerate 2^{len(rows)} - 1 "
                f"subsets; limit is {self.limit}",
                kind="rows",
                op="setnew",
                used=len(rows),
                limit=self.limit,
            )
        out = []
        for mask in range(1, 1 << len(rows)):
            tag = fresh.fresh()
            for position, row in enumerate(rows):
                if mask & (1 << position):
                    out.append(row + (tag,))
        extended = Relation(self.name, result.schema + (self.set_attr,), out)
        return db.set(extended)

    def __repr__(self) -> str:
        return f"{self.name} := setnew[{self.set_attr}]({self.expr!r})"


class WhileNotEmpty(FWStatement):
    """``while R ≠ ∅ do body``."""

    def __init__(self, name: str, body: "FWProgram | Sequence[FWStatement]"):
        self.name = name
        self.body = body if isinstance(body, FWProgram) else FWProgram(body)

    def execute(self, db, fresh, budget):
        obs = _obs.OBS
        if not obs.active:
            while self.name in db and len(db.relation(self.name)) > 0:
                budget.tick(self.name)
                db = self.body._execute(db, fresh, budget)
            return db
        cm = (
            obs.tracer.span("fw-while", text=f"while {self.name}")
            if obs.tracer is not None
            else NULL_SPAN
        )
        with cm as sp:
            iterations = 0
            condition_rows: list[int] = []
            while self.name in db and len(db.relation(self.name)) > 0:
                budget.tick(self.name)
                iterations += 1
                condition_rows.append(len(db.relation(self.name)))
                if obs.metrics is not None:
                    obs.metrics.count("fw_while_iterations")
                if obs.tracer is not None:
                    with obs.tracer.span("iteration", n=iterations):
                        db = self.body._execute(db, fresh, budget)
                else:
                    db = self.body._execute(db, fresh, budget)
            sp.set(iterations=iterations, condition_rows=condition_rows)
            if obs.metrics is not None:
                obs.metrics.count("fw_while_loops")
            return db

    def __repr__(self) -> str:
        return f"while {self.name} do {self.body!r} end"


class FWProgram:
    """A sequence of FO + while + new statements."""

    def __init__(self, statements: Iterable[FWStatement] = ()):
        self.statements = tuple(statements)
        for statement in self.statements:
            if not isinstance(statement, FWStatement):
                raise EvaluationError(f"not an FO+while+new statement: {statement!r}")

    def _execute(self, db, fresh, budget) -> RelationalDatabase:
        gov = _GOV
        if gov.active and gov.governor is not None:
            # FO+while expressions evaluate outside the op registry, so
            # the per-statement check is this language's only chokepoint
            # for deadlines and cancellation between while ticks.
            gov.governor.check()
        obs = _obs.OBS
        if not obs.active:
            for statement in self.statements:
                db = statement.execute(db, fresh, budget)
            return db
        for statement in self.statements:
            if isinstance(statement, WhileNotEmpty):
                db = statement.execute(db, fresh, budget)  # spans itself
                continue
            cm = (
                obs.tracer.span("fw-statement", text=repr(statement))
                if obs.tracer is not None
                else NULL_SPAN
            )
            with cm as sp:
                db = statement.execute(db, fresh, budget)
                if isinstance(statement, (Assign, AssignNew, AssignSetNew)):
                    sp.set(rows_out=len(db.relation(statement.name)))
            if obs.metrics is not None:
                obs.metrics.count("fw_statements")
        return db

    def run(
        self,
        db: RelationalDatabase,
        fresh: FreshValueSource | None = None,
        max_while_iterations: int = 10_000,
    ) -> RelationalDatabase:
        """Execute against ``db`` and return the final database."""
        source = fresh if fresh is not None else FreshValueSource()
        source.advance_past(db.symbols())
        obs = _obs.OBS
        if not obs.active:
            return self._execute(db, source, _Budget(max_while_iterations))
        cm = (
            obs.tracer.span("fw-program", statements=len(self.statements))
            if obs.tracer is not None
            else NULL_SPAN
        )
        with cm:
            return self._execute(db, source, _Budget(max_while_iterations))

    def __len__(self) -> int:
        return len(self.statements)

    def __add__(self, other: "FWProgram") -> "FWProgram":
        if not isinstance(other, FWProgram):
            return NotImplemented
        return FWProgram(self.statements + other.statements)

    def __repr__(self) -> str:
        return "FWProgram([" + "; ".join(repr(s) for s in self.statements) + "])"
