"""FO + while + new — the relational language of Van den Bussche et al. [3].

The paper leans on this language twice: Theorem 4.1 simulates it within
the tabular algebra, and Theorem 4.4's completeness proof expresses the
canonical-level transformation in it.  A program is a sequence of

* ``Assign(name, expr)`` — evaluate a relational algebra expression and
  (re)bind a relation name to the result;
* ``AssignNew(name, expr, id_attr)`` — the *new* construct: evaluate and
  extend every tuple with a globally fresh value under ``id_attr``
  (object/tuple-id creation);
* ``WhileNotEmpty(name, body)`` — the *while* construct: repeat ``body``
  while the named relation is non-empty.

The interpreter mirrors the tabular one (fresh-value source, iteration
budget) so results can be compared 1:1 after compilation to TA.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core import (
    EvaluationError,
    FreshValueSource,
    NonTerminationError,
    SchemaError,
)
from .algebra import Expr
from .relation import Relation, RelationalDatabase

__all__ = [
    "FWStatement",
    "Assign",
    "AssignNew",
    "AssignSetNew",
    "WhileNotEmpty",
    "FWProgram",
]


class FWStatement:
    """Abstract base of FO + while + new statements."""

    def execute(
        self, db: RelationalDatabase, fresh: FreshValueSource, budget: "_Budget"
    ) -> RelationalDatabase:
        raise NotImplementedError


class _Budget:
    """Shared while-iteration budget for one program run."""

    def __init__(self, limit: int):
        self.remaining = limit

    def tick(self) -> None:
        self.remaining -= 1
        if self.remaining < 0:
            raise NonTerminationError("FO+while+new iteration budget exhausted")


class Assign(FWStatement):
    """``R := expr``."""

    def __init__(self, name: str, expr: Expr):
        self.name = name
        self.expr = expr

    def execute(self, db, fresh, budget):
        result = self.expr.evaluate(db)
        return db.set(result.with_name(self.name))

    def __repr__(self) -> str:
        return f"{self.name} := {self.expr!r}"


class AssignNew(FWStatement):
    """``R := new(expr)`` — extend each tuple with a fresh value."""

    def __init__(self, name: str, expr: Expr, id_attr: str = "Id"):
        self.name = name
        self.expr = expr
        self.id_attr = id_attr

    def execute(self, db, fresh, budget):
        result = self.expr.evaluate(db)
        if self.id_attr in result.schema:
            raise SchemaError(
                f"new: attribute {self.id_attr!r} already present in {result.schema}"
            )
        extended = Relation(
            self.name,
            result.schema + (self.id_attr,),
            (row + (fresh.fresh(),) for row in result),
        )
        return db.set(extended)

    def __repr__(self) -> str:
        return f"{self.name} := new[{self.id_attr}]({self.expr!r})"


class AssignSetNew(FWStatement):
    """``R := setnew(expr, set_attr)`` — the power-set construct.

    For every non-empty *subset* S of ``expr``'s tuples, the result lists
    S's tuples extended with S's own fresh value under ``set_attr`` — the
    relational mirror of the tabular SETNEW (Section 3.5), and the piece
    of machinery set-creating transformations (e.g. GOOD's abstraction)
    need.  Exponential by design; ``limit`` bounds the base cardinality.
    """

    def __init__(self, name: str, expr: Expr, set_attr: str = "Set", limit: int = 16):
        self.name = name
        self.expr = expr
        self.set_attr = set_attr
        self.limit = limit

    def execute(self, db, fresh, budget):
        from ..core import LimitExceededError

        result = self.expr.evaluate(db)
        if self.set_attr in result.schema:
            raise SchemaError(
                f"setnew: attribute {self.set_attr!r} already present in {result.schema}"
            )
        rows = list(result)
        if len(rows) > self.limit:
            raise LimitExceededError(
                f"setnew over {len(rows)} tuples would enumerate 2^{len(rows)} - 1 "
                f"subsets; limit is {self.limit}"
            )
        out = []
        for mask in range(1, 1 << len(rows)):
            tag = fresh.fresh()
            for position, row in enumerate(rows):
                if mask & (1 << position):
                    out.append(row + (tag,))
        extended = Relation(self.name, result.schema + (self.set_attr,), out)
        return db.set(extended)

    def __repr__(self) -> str:
        return f"{self.name} := setnew[{self.set_attr}]({self.expr!r})"


class WhileNotEmpty(FWStatement):
    """``while R ≠ ∅ do body``."""

    def __init__(self, name: str, body: "FWProgram | Sequence[FWStatement]"):
        self.name = name
        self.body = body if isinstance(body, FWProgram) else FWProgram(body)

    def execute(self, db, fresh, budget):
        while self.name in db and len(db.relation(self.name)) > 0:
            budget.tick()
            db = self.body._execute(db, fresh, budget)
        return db

    def __repr__(self) -> str:
        return f"while {self.name} do {self.body!r} end"


class FWProgram:
    """A sequence of FO + while + new statements."""

    def __init__(self, statements: Iterable[FWStatement] = ()):
        self.statements = tuple(statements)
        for statement in self.statements:
            if not isinstance(statement, FWStatement):
                raise EvaluationError(f"not an FO+while+new statement: {statement!r}")

    def _execute(self, db, fresh, budget) -> RelationalDatabase:
        for statement in self.statements:
            db = statement.execute(db, fresh, budget)
        return db

    def run(
        self,
        db: RelationalDatabase,
        fresh: FreshValueSource | None = None,
        max_while_iterations: int = 10_000,
    ) -> RelationalDatabase:
        """Execute against ``db`` and return the final database."""
        source = fresh if fresh is not None else FreshValueSource()
        source.advance_past(db.symbols())
        return self._execute(db, source, _Budget(max_while_iterations))

    def __len__(self) -> int:
        return len(self.statements)

    def __add__(self, other: "FWProgram") -> "FWProgram":
        if not isinstance(other, FWProgram):
            return NotImplemented
        return FWProgram(self.statements + other.statements)

    def __repr__(self) -> str:
        return "FWProgram([" + "; ".join(repr(s) for s in self.statements) + "])"
