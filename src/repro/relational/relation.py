"""Classical relations — the substrate for FO + while + new.

The completeness proof (Theorem 4.4) reduces tabular transformations to
relational transformations over the fixed-width canonical scheme, where
the language FO + while + new of Van den Bussche et al. [3] is complete.
This module provides that relational world: named relations with
fixed-arity schemas and *set* semantics, holding :class:`Symbol` entries
(so values, names, and tagged values flow unchanged between the relational
and tabular layers).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..core import NULL, Name, SchemaError, Symbol, coerce_symbol

__all__ = ["Relation", "RelationalDatabase"]


def _coerce_tuple(schema: tuple[str, ...], row: Iterable[object]) -> tuple[Symbol, ...]:
    entries = tuple(coerce_symbol(v) for v in row)
    if len(entries) != len(schema):
        raise SchemaError(
            f"tuple arity {len(entries)} does not match schema arity {len(schema)}"
        )
    return entries


class Relation:
    """An immutable named relation: schema + a set of tuples.

    Attribute names within one schema must be distinct (the classical
    named perspective); entries are symbols, and plain Python values
    coerce to :class:`~repro.core.Value`.
    """

    __slots__ = ("name", "schema", "tuples")

    def __init__(self, name: str, schema: Iterable[str], tuples: Iterable[Iterable[object]] = ()):
        schema_tuple = tuple(schema)
        if len(set(schema_tuple)) != len(schema_tuple):
            raise SchemaError(f"duplicate attributes in schema {schema_tuple}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "schema", schema_tuple)
        object.__setattr__(
            self,
            "tuples",
            frozenset(_coerce_tuple(schema_tuple, row) for row in tuples),
        )

    def __setattr__(self, key, value):  # pragma: no cover - immutability guard
        raise AttributeError("Relation is immutable")

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.schema)

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[tuple[Symbol, ...]]:
        return iter(sorted(self.tuples, key=lambda t: tuple(s.sort_key() for s in t)))

    def __contains__(self, row: object) -> bool:
        if isinstance(row, tuple):
            return tuple(coerce_symbol(v) for v in row) in self.tuples
        return False

    def attribute_index(self, attribute: str) -> int:
        """Position of an attribute in the schema."""
        try:
            return self.schema.index(attribute)
        except ValueError:
            raise SchemaError(f"{self.name} has no attribute {attribute!r}") from None

    def column(self, attribute: str) -> frozenset[Symbol]:
        """All entries under one attribute."""
        idx = self.attribute_index(attribute)
        return frozenset(row[idx] for row in self.tuples)

    def with_name(self, name: str) -> "Relation":
        """The same relation under another name."""
        return Relation(name, self.schema, self.tuples)

    def with_tuples(self, tuples: Iterable[Iterable[object]]) -> "Relation":
        """Same name/schema, different contents."""
        return Relation(self.name, self.schema, tuples)

    def symbols(self) -> frozenset[Symbol]:
        """All symbols occurring in the relation's tuples."""
        return frozenset(s for row in self.tuples for s in row)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Relation)
            and other.name == self.name
            and other.schema == self.schema
            and other.tuples == self.tuples
        )

    def __hash__(self) -> int:
        return hash((self.name, self.schema, self.tuples))

    def __repr__(self) -> str:
        return f"Relation({self.name}({', '.join(self.schema)}), {len(self.tuples)} tuples)"


class RelationalDatabase:
    """An immutable mapping from relation names to relations."""

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[Relation] | Mapping[str, Relation] = ()):
        if isinstance(relations, Mapping):
            relations = relations.values()
        store: dict[str, Relation] = {}
        for relation in relations:
            if relation.name in store:
                raise SchemaError(f"duplicate relation name {relation.name!r}")
            store[relation.name] = relation
        object.__setattr__(self, "_relations", dict(sorted(store.items())))

    def __setattr__(self, key, value):  # pragma: no cover - immutability guard
        raise AttributeError("RelationalDatabase is immutable")

    def relation(self, name: str) -> Relation:
        """The relation called ``name``; raises if absent."""
        if name not in self._relations:
            raise SchemaError(f"no relation named {name!r}")
        return self._relations[name]

    def get(self, name: str) -> Relation | None:
        """The relation called ``name``, or None."""
        return self._relations.get(name)

    def names(self) -> tuple[str, ...]:
        """All relation names, sorted."""
        return tuple(self._relations)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def set(self, relation: Relation) -> "RelationalDatabase":
        """A database with ``relation`` added or replaced (by name)."""
        store = dict(self._relations)
        store[relation.name] = relation
        return RelationalDatabase(store.values())

    def drop(self, name: str) -> "RelationalDatabase":
        """A database without the relation called ``name``."""
        store = dict(self._relations)
        store.pop(name, None)
        return RelationalDatabase(store.values())

    def symbols(self) -> frozenset[Symbol]:
        """All symbols occurring in any relation."""
        out: set[Symbol] = set()
        for relation in self:
            out |= relation.symbols()
        return frozenset(out)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RelationalDatabase)
            and other._relations == self._relations
        )

    def __hash__(self) -> int:
        return hash(tuple(self._relations.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{r.name}/{r.arity}({len(r)})" for r in self)
        return f"RelationalDatabase({inner})"
