"""Classical relational algebra over :mod:`repro.relational.relation`.

The expression AST covers the standard named-perspective operations —
relation reference, union, difference, intersection, Cartesian product
(disjoint schemas), projection, selection (attribute = attribute and
attribute = constant), renaming, and natural join (derived).  This is the
FO core of FO + while + new: relational algebra and domain-independent FO
queries are interchangeable, and the algebraic formulation is what both
the interpreter and the TA compiler consume.
"""

from __future__ import annotations

from typing import Iterable

from ..core import SchemaError, Symbol, coerce_symbol
from .relation import Relation, RelationalDatabase

__all__ = [
    "Expr",
    "Rel",
    "Union",
    "Difference",
    "Intersection",
    "Product",
    "Project",
    "SelectEq",
    "SelectConst",
    "RenameAttr",
    "ConstColumn",
    "Join",
]


class Expr:
    """Abstract base of relational algebra expressions."""

    def schema(self, db: RelationalDatabase) -> tuple[str, ...]:
        """The output schema against ``db`` (validates the expression)."""
        raise NotImplementedError

    def evaluate(self, db: RelationalDatabase) -> Relation:
        """Evaluate to an (anonymous) relation against ``db``."""
        raise NotImplementedError

    # -- sugar ----------------------------------------------------------

    def __or__(self, other: "Expr") -> "Union":
        return Union(self, other)

    def __sub__(self, other: "Expr") -> "Difference":
        return Difference(self, other)

    def __and__(self, other: "Expr") -> "Intersection":
        return Intersection(self, other)

    def __mul__(self, other: "Expr") -> "Product":
        return Product(self, other)

    def project(self, *attrs: str) -> "Project":
        return Project(self, attrs)

    def where_eq(self, left: str, right: str) -> "SelectEq":
        return SelectEq(self, left, right)

    def where_const(self, attr: str, value: object) -> "SelectConst":
        return SelectConst(self, attr, value)

    def rename(self, old: str, new: str) -> "RenameAttr":
        return RenameAttr(self, old, new)


class Rel(Expr):
    """Reference to a database relation by name."""

    def __init__(self, name: str):
        self.name = name

    def schema(self, db: RelationalDatabase) -> tuple[str, ...]:
        return db.relation(self.name).schema

    def evaluate(self, db: RelationalDatabase) -> Relation:
        return db.relation(self.name)

    def __repr__(self) -> str:
        return self.name


class _Binary(Expr):
    symbol = "?"

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


def _require_union_compatible(left: Relation, right: Relation) -> None:
    if left.schema != right.schema:
        raise SchemaError(
            f"union-incompatible schemas {left.schema} vs {right.schema}"
        )


class Union(_Binary):
    """Set union of union-compatible relations."""

    symbol = "∪"

    def schema(self, db: RelationalDatabase) -> tuple[str, ...]:
        left = self.left.schema(db)
        if left != self.right.schema(db):
            raise SchemaError("union-incompatible schemas")
        return left

    def evaluate(self, db: RelationalDatabase) -> Relation:
        left = self.left.evaluate(db)
        right = self.right.evaluate(db)
        _require_union_compatible(left, right)
        return Relation("", left.schema, left.tuples | right.tuples)


class Difference(_Binary):
    """Set difference of union-compatible relations."""

    symbol = "\\"

    def schema(self, db: RelationalDatabase) -> tuple[str, ...]:
        left = self.left.schema(db)
        if left != self.right.schema(db):
            raise SchemaError("union-incompatible schemas")
        return left

    def evaluate(self, db: RelationalDatabase) -> Relation:
        left = self.left.evaluate(db)
        right = self.right.evaluate(db)
        _require_union_compatible(left, right)
        return Relation("", left.schema, left.tuples - right.tuples)


class Intersection(_Binary):
    """Set intersection (derived: ``L \\ (L \\ R)``)."""

    symbol = "∩"

    def schema(self, db: RelationalDatabase) -> tuple[str, ...]:
        return Difference(self.left, self.right).schema(db)

    def evaluate(self, db: RelationalDatabase) -> Relation:
        left = self.left.evaluate(db)
        right = self.right.evaluate(db)
        _require_union_compatible(left, right)
        return Relation("", left.schema, left.tuples & right.tuples)


class Product(_Binary):
    """Cartesian product; the operand schemas must be disjoint."""

    symbol = "×"

    def schema(self, db: RelationalDatabase) -> tuple[str, ...]:
        left = self.left.schema(db)
        right = self.right.schema(db)
        if set(left) & set(right):
            raise SchemaError(
                f"product schemas overlap on {sorted(set(left) & set(right))}"
            )
        return left + right

    def evaluate(self, db: RelationalDatabase) -> Relation:
        schema = self.schema(db)
        left = self.left.evaluate(db)
        right = self.right.evaluate(db)
        return Relation(
            "", schema, (l + r for l in left.tuples for r in right.tuples)
        )


class Project(Expr):
    """Projection onto a list of attributes (duplicates removed)."""

    def __init__(self, inner: Expr, attrs: Iterable[str]):
        self.inner = inner
        self.attrs = tuple(attrs)
        if len(set(self.attrs)) != len(self.attrs):
            raise SchemaError(f"duplicate projection attributes {self.attrs}")

    def schema(self, db: RelationalDatabase) -> tuple[str, ...]:
        inner = self.inner.schema(db)
        missing = [a for a in self.attrs if a not in inner]
        if missing:
            raise SchemaError(f"projection onto unknown attributes {missing}")
        return self.attrs

    def evaluate(self, db: RelationalDatabase) -> Relation:
        inner = self.inner.evaluate(db)
        indices = [inner.attribute_index(a) for a in self.attrs]
        return Relation(
            "", self.attrs, (tuple(row[i] for i in indices) for row in inner.tuples)
        )

    def __repr__(self) -> str:
        return f"π[{', '.join(self.attrs)}]({self.inner!r})"


class SelectEq(Expr):
    """Selection σ_{A=B}."""

    def __init__(self, inner: Expr, left: str, right: str):
        self.inner = inner
        self.left = left
        self.right = right

    def schema(self, db: RelationalDatabase) -> tuple[str, ...]:
        inner = self.inner.schema(db)
        for attr in (self.left, self.right):
            if attr not in inner:
                raise SchemaError(f"selection on unknown attribute {attr!r}")
        return inner

    def evaluate(self, db: RelationalDatabase) -> Relation:
        inner = self.inner.evaluate(db)
        i = inner.attribute_index(self.left)
        j = inner.attribute_index(self.right)
        return Relation(
            "", inner.schema, (row for row in inner.tuples if row[i] == row[j])
        )

    def __repr__(self) -> str:
        return f"σ[{self.left}={self.right}]({self.inner!r})"


class SelectConst(Expr):
    """Selection σ_{A=c} for a constant c."""

    def __init__(self, inner: Expr, attr: str, value: object):
        self.inner = inner
        self.attr = attr
        self.value: Symbol = coerce_symbol(value)

    def schema(self, db: RelationalDatabase) -> tuple[str, ...]:
        inner = self.inner.schema(db)
        if self.attr not in inner:
            raise SchemaError(f"selection on unknown attribute {self.attr!r}")
        return inner

    def evaluate(self, db: RelationalDatabase) -> Relation:
        inner = self.inner.evaluate(db)
        i = inner.attribute_index(self.attr)
        return Relation(
            "", inner.schema, (row for row in inner.tuples if row[i] == self.value)
        )

    def __repr__(self) -> str:
        return f"σ[{self.attr}={self.value!s}]({self.inner!r})"


class RenameAttr(Expr):
    """Attribute renaming ρ_{B←A}."""

    def __init__(self, inner: Expr, old: str, new: str):
        self.inner = inner
        self.old = old
        self.new = new

    def schema(self, db: RelationalDatabase) -> tuple[str, ...]:
        inner = self.inner.schema(db)
        if self.old not in inner:
            raise SchemaError(f"renaming unknown attribute {self.old!r}")
        renamed = tuple(self.new if a == self.old else a for a in inner)
        if len(set(renamed)) != len(renamed):
            raise SchemaError(f"renaming to {self.new!r} collides with the schema")
        return renamed

    def evaluate(self, db: RelationalDatabase) -> Relation:
        inner = self.inner.evaluate(db)
        return Relation("", self.schema(db), inner.tuples)

    def __repr__(self) -> str:
        return f"ρ[{self.new}←{self.old}]({self.inner!r})"


class ConstColumn(Expr):
    """Extend every tuple with a constant under a new attribute.

    Not part of the classical algebra; it exists so that rule heads with
    explicit constants compile (the SchemaLog embedding), and it maps to
    the tabular algebra's derived ``CONSTCOLUMN`` operation.
    """

    def __init__(self, inner: Expr, attr: str, value: object):
        self.inner = inner
        self.attr = attr
        self.value: Symbol = coerce_symbol(value)

    def schema(self, db: RelationalDatabase) -> tuple[str, ...]:
        inner = self.inner.schema(db)
        if self.attr in inner:
            raise SchemaError(f"attribute {self.attr!r} already present")
        return inner + (self.attr,)

    def evaluate(self, db: RelationalDatabase) -> Relation:
        schema = self.schema(db)
        inner = self.inner.evaluate(db)
        return Relation("", schema, (row + (self.value,) for row in inner.tuples))

    def __repr__(self) -> str:
        return f"ε[{self.attr}={self.value!s}]({self.inner!r})"


class Join(Expr):
    """Natural join (derived from product, selection, and projection)."""

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def _plan(self, db: RelationalDatabase) -> tuple[Expr, tuple[str, ...]]:
        left_schema = self.left.schema(db)
        right_schema = self.right.schema(db)
        common = [a for a in left_schema if a in right_schema]
        renamed: Expr = self.right
        for attr in common:
            renamed = RenameAttr(renamed, attr, f"__join_{attr}")
        plan: Expr = Product(self.left, renamed)
        for attr in common:
            plan = SelectEq(plan, attr, f"__join_{attr}")
        output = left_schema + tuple(a for a in right_schema if a not in common)
        return Project(plan, output), output

    def schema(self, db: RelationalDatabase) -> tuple[str, ...]:
        return self._plan(db)[1]

    def evaluate(self, db: RelationalDatabase) -> Relation:
        return self._plan(db)[0].evaluate(db)

    def __repr__(self) -> str:
        return f"({self.left!r} ⋈ {self.right!r})"
