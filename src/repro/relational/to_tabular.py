"""The natural embedding of relations into the tabular model.

A relation's "obvious counterpart in the tabular model" (the paper's
phrase for Figure 4 top) is a table whose column attributes are the
relation's attribute names, whose row attributes are all ⊥, and whose data
rows are the tuples.  These converters realize that embedding and its
partial inverse.
"""

from __future__ import annotations

from ..core import (
    NULL,
    Name,
    SchemaError,
    Table,
    TabularDatabase,
)
from .relation import Relation, RelationalDatabase

__all__ = [
    "relation_to_table",
    "table_to_relation",
    "relational_to_tabular",
    "tabular_to_relational",
]


def relation_to_table(relation: Relation) -> Table:
    """The relation-style table representing ``relation``."""
    if not relation.name:
        raise SchemaError("only named relations embed into the tabular model")
    header = [Name(relation.name)] + [Name(a) for a in relation.schema]
    grid = [header]
    for row in relation:
        grid.append([NULL, *row])
    return Table(grid)


def table_to_relation(table: Table, schema: tuple[str, ...] | None = None) -> Relation:
    """Read a relation back out of a relation-style table.

    Requirements (raises :class:`~repro.core.SchemaError` otherwise): the
    table name and every column attribute are names, attributes are
    pairwise distinct, and every row attribute is ⊥.  Duplicate rows
    collapse (set semantics).

    Column order inside a table is semantically immaterial (the model
    identifies tables up to column permutations), so a caller expecting a
    specific attribute order passes ``schema`` and the columns are read in
    that order (they must be exactly the table's attributes).
    """
    if not isinstance(table.name, Name):
        raise SchemaError(f"table name {table.name!s} is not a relation name")
    attrs = table.column_attributes
    if not all(isinstance(a, Name) for a in attrs):
        raise SchemaError("every column attribute must be a name")
    texts = [a.text for a in attrs]  # type: ignore[union-attr]
    if len(set(texts)) != len(texts):
        raise SchemaError(f"attributes are not distinct: {texts}")
    if any(not a.is_null for a in table.row_attributes):
        raise SchemaError("relation-style tables have ⊥ row attributes")
    order = list(table.data_col_indices())
    if schema is not None:
        if sorted(schema) != sorted(texts):
            raise SchemaError(
                f"requested schema {schema} does not match attributes {texts}"
            )
        position = {text: j for text, j in zip(texts, order)}
        order = [position[a] for a in schema]
        texts = list(schema)
    return Relation(
        table.name.text,
        texts,
        (
            tuple(table.entry(i, j) for j in order)
            for i in table.data_row_indices()
        ),
    )


def relational_to_tabular(db: RelationalDatabase) -> TabularDatabase:
    """Embed a whole relational database."""
    return TabularDatabase(relation_to_table(r) for r in db)


def tabular_to_relational(db: TabularDatabase) -> RelationalDatabase:
    """Read a relational database out of relation-style tables.

    Every name must carry exactly one table (relational databases have one
    relation per name).
    """
    relations = []
    for name in sorted(db.table_names(), key=lambda s: s.sort_key()):
        tables = db.tables_named(name)
        if len(tables) != 1:
            raise SchemaError(f"{len(tables)} tables named {name!s}; expected one")
        relations.append(table_to_relation(tables[0]))
    return RelationalDatabase(relations)
