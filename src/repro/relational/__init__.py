"""Relational substrate: relations, relational algebra, FO + while + new,
the tabular embedding, and the Theorem 4.1 compiler into tabular algebra."""

from .algebra import (
    ConstColumn,
    Difference,
    Expr,
    Intersection,
    Join,
    Product,
    Project,
    Rel,
    RenameAttr,
    SelectConst,
    SelectEq,
    Union,
)
from .compile_ta import TEMP_PREFIX, compile_expression, compile_program
from .fo_while import Assign, AssignNew, AssignSetNew, FWProgram, FWStatement, WhileNotEmpty
from .relation import Relation, RelationalDatabase
from .to_tabular import (
    relation_to_table,
    relational_to_tabular,
    table_to_relation,
    tabular_to_relational,
)

__all__ = [
    "Relation",
    "RelationalDatabase",
    "Expr",
    "Rel",
    "Union",
    "Difference",
    "Intersection",
    "Product",
    "Project",
    "SelectEq",
    "SelectConst",
    "RenameAttr",
    "ConstColumn",
    "Join",
    "FWStatement",
    "Assign",
    "AssignNew",
    "AssignSetNew",
    "WhileNotEmpty",
    "FWProgram",
    "relation_to_table",
    "table_to_relation",
    "relational_to_tabular",
    "tabular_to_relational",
    "compile_program",
    "compile_expression",
    "TEMP_PREFIX",
]
