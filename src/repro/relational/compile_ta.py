"""Theorem 4.1 — simulating FO + while + new within the tabular algebra.

``compile_program`` translates an FO+while+new program into a tabular
algebra program such that running the translation on the tabular embedding
of a relational database yields the tabular embedding of the original
program's result (for every output relation name).

The translation is compositional:

=======================  =================================================
FO + while + new          tabular algebra
=======================  =================================================
``R``                     the table named R
``e1 ∪ e2``               ``CLASSICALUNION`` (tabular union + purge + clean-up)
``e1 \\ e2``               ``DIFFERENCE`` (mutual subsumption = tuple
                          equality on relation-style tables)
``e1 ∩ e2``               ``INTERSECTION``
``e1 × e2``               ``PRODUCT`` (schemas disjoint ⇒ classical)
``π_A``                   ``PROJECT`` + ``DEDUP`` (set semantics)
``σ_{A=B}``               ``SELECT`` (weak = classical on null-free tables)
``σ_{A=c}``               ``SELECTCONST``
``ρ_{B←A}``               ``RENAME``
``R := new(e)``           ``TUPLENEW``
``while R ≠ ∅``           ``while R``
=======================  =================================================

Natural join is compiled by static expansion into rename/product/select/
project, which requires the operand schemas; the compiler therefore tracks
schemas statically through the program (input schemas are given, and a
while body must be schema-stable, which one extra compilation pass checks).

Intermediate results live in reserved ``__fw<i>`` tables; ``outputs``
restricted comparison ignores them.
"""

from __future__ import annotations

from typing import Mapping

from ..core import EvaluationError, SchemaError, Value
from ..algebra.programs import Assignment, Program, Statement, While
from .algebra import (
    ConstColumn,
    Difference,
    Expr,
    Intersection,
    Join,
    Product,
    Project,
    Rel,
    RenameAttr,
    SelectConst,
    SelectEq,
    Union,
)
from .fo_while import Assign, AssignNew, AssignSetNew, FWProgram, FWStatement, WhileNotEmpty

__all__ = ["compile_program", "compile_expression", "TEMP_PREFIX"]

#: Prefix reserved for the compiler's intermediate tables.
TEMP_PREFIX = "__fw"

SchemaEnv = dict[str, tuple[str, ...]]


class _Compiler:
    def __init__(self, env: SchemaEnv):
        self.env: SchemaEnv = dict(env)
        self.counter = 0
        self.statements: list[Statement] = []

    # -- plumbing -------------------------------------------------------

    def fresh_temp(self) -> str:
        name = f"{TEMP_PREFIX}{self.counter}"
        self.counter += 1
        return name

    def emit(self, target: str, op: str, args: list[str], params: dict | None = None) -> str:
        self.statements.append(Assignment(target, op, args, params or {}))
        return target

    # -- expressions ------------------------------------------------------

    def schema_of(self, expr: Expr) -> tuple[str, ...]:
        """Static schema computation mirroring ``Expr.schema``."""
        if isinstance(expr, Rel):
            if expr.name not in self.env:
                raise SchemaError(f"unknown relation {expr.name!r} at compile time")
            return self.env[expr.name]
        if isinstance(expr, (Union, Difference, Intersection)):
            left = self.schema_of(expr.left)
            if left != self.schema_of(expr.right):
                raise SchemaError("union-incompatible schemas")
            return left
        if isinstance(expr, Product):
            left = self.schema_of(expr.left)
            right = self.schema_of(expr.right)
            if set(left) & set(right):
                raise SchemaError("product schemas overlap")
            return left + right
        if isinstance(expr, Project):
            inner = self.schema_of(expr.inner)
            missing = [a for a in expr.attrs if a not in inner]
            if missing:
                raise SchemaError(f"projection onto unknown attributes {missing}")
            return expr.attrs
        if isinstance(expr, (SelectEq, SelectConst)):
            return self.schema_of(expr.inner)
        if isinstance(expr, RenameAttr):
            inner = self.schema_of(expr.inner)
            if expr.old not in inner:
                raise SchemaError(f"renaming unknown attribute {expr.old!r}")
            return tuple(expr.new if a == expr.old else a for a in inner)
        if isinstance(expr, ConstColumn):
            inner = self.schema_of(expr.inner)
            if expr.attr in inner:
                raise SchemaError(f"attribute {expr.attr!r} already present")
            return inner + (expr.attr,)
        if isinstance(expr, Join):
            return self.schema_of(self.expand_join(expr))
        raise EvaluationError(f"cannot compile expression {expr!r}")

    def expand_join(self, join: Join) -> Expr:
        """Statically expand a natural join (needs both operand schemas)."""
        left_schema = self.schema_of(join.left)
        right_schema = self.schema_of(join.right)
        common = [a for a in left_schema if a in right_schema]
        renamed: Expr = join.right
        for attr in common:
            renamed = RenameAttr(renamed, attr, f"__join_{attr}")
        plan: Expr = Product(join.left, renamed)
        for attr in common:
            plan = SelectEq(plan, attr, f"__join_{attr}")
        output = left_schema + tuple(a for a in right_schema if a not in common)
        return Project(plan, output)

    def compile_expr(self, expr: Expr) -> str:
        """Emit statements computing ``expr``; return the holding table name."""
        if isinstance(expr, Rel):
            return expr.name
        if isinstance(expr, Union):
            left, right = self.compile_expr(expr.left), self.compile_expr(expr.right)
            return self.emit(self.fresh_temp(), "CLASSICALUNION", [left, right])
        if isinstance(expr, Difference):
            left, right = self.compile_expr(expr.left), self.compile_expr(expr.right)
            return self.emit(self.fresh_temp(), "DIFFERENCE", [left, right])
        if isinstance(expr, Intersection):
            left, right = self.compile_expr(expr.left), self.compile_expr(expr.right)
            return self.emit(self.fresh_temp(), "INTERSECTION", [left, right])
        if isinstance(expr, Product):
            self.schema_of(expr)  # validate disjointness
            left, right = self.compile_expr(expr.left), self.compile_expr(expr.right)
            return self.emit(self.fresh_temp(), "PRODUCT", [left, right])
        if isinstance(expr, Project):
            inner = self.compile_expr(expr.inner)
            projected = self.emit(
                self.fresh_temp(), "PROJECT", [inner], {"attrs": list(expr.attrs)}
            )
            return self.emit(self.fresh_temp(), "DEDUP", [projected])
        if isinstance(expr, SelectEq):
            inner = self.compile_expr(expr.inner)
            # Selecting a compiler temporary overwrites it in place: the
            # temp has exactly one reader (this select), and emitting
            # ``T <- SELECT (T)`` right after ``T <- PRODUCT`` gives the
            # vector engine's planner the adjacent same-target pair it
            # fuses into a PRODUCTSELECT hash join (expand_join produces
            # precisely this shape for every join condition).
            target = inner if inner.startswith(TEMP_PREFIX) else self.fresh_temp()
            return self.emit(
                target, "SELECT", [inner], {"left": expr.left, "right": expr.right}
            )
        if isinstance(expr, SelectConst):
            inner = self.compile_expr(expr.inner)
            return self.emit(
                self.fresh_temp(),
                "SELECTCONST",
                [inner],
                {"attr": expr.attr, "value": expr.value},
            )
        if isinstance(expr, RenameAttr):
            inner = self.compile_expr(expr.inner)
            return self.emit(
                self.fresh_temp(), "RENAME", [inner], {"old": expr.old, "new": expr.new}
            )
        if isinstance(expr, ConstColumn):
            self.schema_of(expr)  # validate attribute freshness
            inner = self.compile_expr(expr.inner)
            return self.emit(
                self.fresh_temp(),
                "CONSTCOLUMN",
                [inner],
                {"attr": expr.attr, "value": expr.value},
            )
        if isinstance(expr, Join):
            return self.compile_expr(self.expand_join(expr))
        raise EvaluationError(f"cannot compile expression {expr!r}")

    # -- statements -------------------------------------------------------

    def compile_statement(self, statement: FWStatement) -> None:
        if isinstance(statement, Assign):
            schema = self.schema_of(statement.expr)
            holder = self.compile_expr(statement.expr)
            self.emit(statement.name, "DEDUP", [holder])
            self.env[statement.name] = schema
        elif isinstance(statement, AssignNew):
            schema = self.schema_of(statement.expr)
            if statement.id_attr in schema:
                raise SchemaError(
                    f"new: attribute {statement.id_attr!r} already in {schema}"
                )
            holder = self.compile_expr(statement.expr)
            self.emit(
                statement.name, "TUPLENEW", [holder], {"attr": statement.id_attr}
            )
            self.env[statement.name] = schema + (statement.id_attr,)
        elif isinstance(statement, AssignSetNew):
            schema = self.schema_of(statement.expr)
            if statement.set_attr in schema:
                raise SchemaError(
                    f"setnew: attribute {statement.set_attr!r} already in {schema}"
                )
            holder = self.compile_expr(statement.expr)
            self.emit(
                statement.name, "SETNEW", [holder], {"attr": statement.set_attr}
            )
            self.env[statement.name] = schema + (statement.set_attr,)
        elif isinstance(statement, WhileNotEmpty):
            inner = _Compiler(self.env)
            inner.counter = self.counter
            for body_statement in statement.body.statements:
                inner.compile_statement(body_statement)
            # schema stability: a second pass from the post-body environment
            # must reproduce it, otherwise iteration is not well-typed
            check = _Compiler(inner.env)
            check.counter = inner.counter
            for body_statement in statement.body.statements:
                check.compile_statement(body_statement)
            if check.env != inner.env:
                raise SchemaError("while body is not schema-stable")
            self.counter = inner.counter
            self.env = inner.env
            self.statements.append(While(statement.name, Program(inner.statements)))
        else:
            raise EvaluationError(f"cannot compile statement {statement!r}")


def compile_expression(expr: Expr, schemas: Mapping[str, tuple[str, ...]], target: str) -> Program:
    """Compile a single expression into a TA program binding ``target``."""
    compiler = _Compiler(dict(schemas))
    holder = compiler.compile_expr(expr)
    compiler.emit(target, "DEDUP", [holder])
    return Program(compiler.statements)


def compile_program(
    program: FWProgram, schemas: Mapping[str, tuple[str, ...]]
) -> Program:
    """Compile an FO+while+new program into a tabular algebra program.

    ``schemas`` gives the input relations' schemas (the compile-time
    environment Theorem 4.1's simulation needs).
    """
    from ..obs.runtime import OBS as _OBS, span as _span
    from ..obs.trace import NULL_SPAN as _NULL_SPAN
    from ..runtime.governor import GOV as _GOV

    if _GOV.active and _GOV.governor is not None:
        _GOV.governor.check(op="compile.fo_while")
    with (
        _span("compile.fo_while", statements=len(program))
        if _OBS.active
        else _NULL_SPAN
    ) as sp:
        compiler = _Compiler(dict(schemas))
        for statement in program.statements:
            compiler.compile_statement(statement)
        sp.set(compiled_statements=len(compiler.statements))
        return Program(compiler.statements)
