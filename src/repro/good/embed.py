"""Embedding object graphs into the tabular model (paper, contribution 4).

A GOOD object base encodes as two relation-style tables::

    Nodes(Id, Label, Val)     Edges(Src, Lab, Dst)

— names in the label columns, ⊥ in ``Val`` for abstract objects.  The
encoding is lossless (``decode_graph(encode_graph(g)) == g``), and graph
isomorphism up to new-object identities reduces to tabular database
isomorphism of the encodings, which is how the simulation tests compare
GOOD runs with their tabular algebra counterparts.
"""

from __future__ import annotations

from ..core import NULL, Name, SchemaError, Symbol, TabularDatabase
from ..relational import Relation, RelationalDatabase, relational_to_tabular, tabular_to_relational
from ..transform import are_isomorphic
from .graph import GoodEdge, GoodNode, ObjectGraph

__all__ = [
    "NODES_SCHEMA",
    "EDGES_SCHEMA",
    "encode_graph",
    "decode_graph",
    "graphs_isomorphic",
]

NODES_SCHEMA = ("Id", "Label", "Val")
EDGES_SCHEMA = ("Src", "Lab", "Dst")


def encode_graph(graph: ObjectGraph) -> TabularDatabase:
    """The tabular encoding of an object graph."""
    nodes = Relation(
        "Nodes", NODES_SCHEMA, ((n.id, n.label, n.value) for n in graph.nodes)
    )
    edges = Relation(
        "Edges", EDGES_SCHEMA, ((e.src, e.label, e.dst) for e in graph.edges)
    )
    return relational_to_tabular(RelationalDatabase([nodes, edges]))


def decode_graph(db: TabularDatabase) -> ObjectGraph:
    """Rebuild an object graph from its tabular encoding."""
    reldb = tabular_to_relational(
        TabularDatabase(
            [t for t in db.tables if t.name in (Name("Nodes"), Name("Edges"))]
        )
    )
    nodes_rel = reldb.relation("Nodes")
    edges_rel = reldb.relation("Edges")
    if nodes_rel.schema != NODES_SCHEMA or edges_rel.schema != EDGES_SCHEMA:
        raise SchemaError("encoding tables do not carry the Nodes/Edges schemas")
    nodes = []
    for (node_id, label, value) in nodes_rel:
        if not isinstance(label, Name):
            raise SchemaError(f"node label {label!s} is not a name")
        nodes.append(GoodNode(node_id, label, value))
    edges = []
    for (src, label, dst) in edges_rel:
        if not isinstance(label, Name):
            raise SchemaError(f"edge label {label!s} is not a name")
        edges.append(GoodEdge(src, label, dst))
    return ObjectGraph(nodes, edges)


def graphs_isomorphic(
    left: ObjectGraph,
    right: ObjectGraph,
    fixed: frozenset[Symbol] | set[Symbol] = frozenset(),
    limit: int = 12,
) -> bool:
    """Graph isomorphism up to renaming of non-fixed (new) object ids.

    Reduces to tabular database isomorphism of the encodings, so the
    comparison discipline matches the transformation theory exactly.
    """
    return are_isomorphic(
        encode_graph(left), encode_graph(right), fixed=frozenset(fixed), limit=limit
    )
