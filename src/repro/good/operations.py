"""The five GOOD operations and GOOD programs.

GOOD transforms object bases with five pattern-parameterized operations:

* **node addition** — per distinct restriction of an embedding to the
  designated anchor variables, add one new node (label given) with edges
  to the anchors' images;
* **edge addition** — per embedding, add the designated edge;
* **node deletion** — delete the image of a variable (with incident
  edges) for every embedding;
* **edge deletion** — delete the designated edge per embedding;
* **abstraction** — partition the images of a variable by their
  ``edge_label``-neighbor sets and add one abstraction node per class,
  with a member edge to each class member.

A :class:`GoodProgram` is a sequence of operations, executed left to
right; node additions draw identities from a fresh-value source, making
programs deterministic up to the choice of new objects — the same
determinacy discipline as tabular tagging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core import EvaluationError, FreshValueSource, Name, SchemaError, Symbol
from .graph import GoodEdge, GoodNode, ObjectGraph
from .patterns import Embedding, Pattern

__all__ = [
    "GoodOperation",
    "NodeAddition",
    "EdgeAddition",
    "NodeDeletion",
    "EdgeDeletion",
    "Abstraction",
    "GoodProgram",
]


class GoodOperation:
    """Abstract base of GOOD operations."""

    def apply(self, graph: ObjectGraph, fresh: FreshValueSource) -> ObjectGraph:
        raise NotImplementedError


@dataclass(frozen=True)
class NodeAddition(GoodOperation):
    """Add one ``label`` node per distinct anchor-image tuple.

    ``edges`` maps an edge label to the anchor variable the new node
    points at; the set of anchor variables is the domain of the witness
    (two embeddings with equal anchor images share one new node).
    """

    pattern: Pattern
    label: str
    edges: tuple[tuple[str, str], ...]  # (edge label, anchor variable)

    def apply(self, graph: ObjectGraph, fresh: FreshValueSource) -> ObjectGraph:
        anchors = tuple(var for (_lbl, var) in self.edges)
        for var in anchors:
            if var not in self.pattern.variables():
                raise SchemaError(f"anchor {var!r} is not a pattern variable")
        witnesses: list[tuple[Symbol, ...]] = []
        seen: set[tuple[Symbol, ...]] = set()
        for embedding in self.pattern.match(graph):
            witness = tuple(embedding[var] for var in anchors)
            if witness not in seen:
                seen.add(witness)
                witnesses.append(witness)
        new_nodes = []
        new_edges = []
        for witness in witnesses:
            node = GoodNode(fresh.fresh(), Name(self.label))
            new_nodes.append(node)
            for (edge_label, _var), target in zip(self.edges, witness):
                new_edges.append(GoodEdge(node.id, Name(edge_label), target))
        return graph.add_nodes(new_nodes).add_edges(new_edges)


@dataclass(frozen=True)
class EdgeAddition(GoodOperation):
    """Add an edge ``src -label-> dst`` per embedding."""

    pattern: Pattern
    src: str
    label: str
    dst: str

    def apply(self, graph: ObjectGraph, fresh: FreshValueSource) -> ObjectGraph:
        edges = [
            GoodEdge(e[self.src], Name(self.label), e[self.dst])
            for e in self.pattern.match(graph)
        ]
        return graph.add_edges(edges)


@dataclass(frozen=True)
class NodeDeletion(GoodOperation):
    """Delete the image of ``var`` (and incident edges) per embedding."""

    pattern: Pattern
    var: str

    def apply(self, graph: ObjectGraph, fresh: FreshValueSource) -> ObjectGraph:
        doomed = {e[self.var] for e in self.pattern.match(graph)}
        return graph.remove_nodes(doomed)


@dataclass(frozen=True)
class EdgeDeletion(GoodOperation):
    """Delete the edge ``src -label-> dst`` per embedding."""

    pattern: Pattern
    src: str
    label: str
    dst: str

    def apply(self, graph: ObjectGraph, fresh: FreshValueSource) -> ObjectGraph:
        doomed = {
            GoodEdge(e[self.src], Name(self.label), e[self.dst])
            for e in self.pattern.match(graph)
        }
        return graph.remove_edges(doomed)


@dataclass(frozen=True)
class Abstraction(GoodOperation):
    """Abstract the images of ``var`` by their ``edge_label`` neighbor sets.

    For each distinct (possibly empty) set of ``edge_label``-neighbors
    among the matched nodes, one new ``abs_label`` node appears, carrying a
    ``member_label`` edge to every node of the class.
    """

    pattern: Pattern
    var: str
    edge_label: str
    abs_label: str
    member_label: str

    def apply(self, graph: ObjectGraph, fresh: FreshValueSource) -> ObjectGraph:
        members: dict[frozenset[Symbol], list[Symbol]] = {}
        seen: set[Symbol] = set()
        for embedding in self.pattern.match(graph):
            node = embedding[self.var]
            if node in seen:
                continue
            seen.add(node)
            key = graph.neighbors(node, self.edge_label)
            members.setdefault(key, []).append(node)
        new_nodes = []
        new_edges = []
        for key in sorted(members, key=lambda k: sorted(s.sort_key() for s in k)):
            abstraction = GoodNode(fresh.fresh(), Name(self.abs_label))
            new_nodes.append(abstraction)
            for member in members[key]:
                new_edges.append(
                    GoodEdge(abstraction.id, Name(self.member_label), member)
                )
        return graph.add_nodes(new_nodes).add_edges(new_edges)


@dataclass(frozen=True)
class GoodProgram:
    """A sequence of GOOD operations."""

    operations: tuple[GoodOperation, ...] = field(default_factory=tuple)

    def __post_init__(self):
        for operation in self.operations:
            if not isinstance(operation, GoodOperation):
                raise EvaluationError(f"not a GOOD operation: {operation!r}")

    def run(
        self, graph: ObjectGraph, fresh: FreshValueSource | None = None
    ) -> ObjectGraph:
        source = fresh if fresh is not None else FreshValueSource()
        source.advance_past(graph.symbols())
        for operation in self.operations:
            graph = operation.apply(graph, source)
        return graph

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)
