"""Simulating GOOD programs in the tabular algebra (paper, contribution 4).

The additive/deletive fragment — node addition, edge addition, node
deletion, edge deletion — compiles through FO + while + new over the
``Nodes``/``Edges`` encoding and then through the Theorem 4.1 compiler
into tabular algebra.  Pattern matching is a conjunctive query (one
renamed copy of ``Nodes`` per variable and of ``Edges`` per pattern edge);
node addition's one-object-per-witness semantics is exactly the *new*
construct over the deduplicated witness relation.

Abstraction — one object per *neighbor-set class* — needs the power-set
machinery, exactly what SETNEW (Section 3.5) exists for.  The compiled
construction: enumerate all non-empty subsets of the candidate-neighbor
domain with SETNEW (each subset tagged with a fresh value), keep the
(node, tag) pairs whose neighbor set equals the tag's subset (two
difference-based "no missing member / no extra neighbor" checks), give
the empty class its own fresh tag, and use the surviving tags as the new
abstraction objects.  Exponential by design (2^|domain| subsets), so the
simulation only runs on small neighbor domains — the tabular SETNEW
guard enforces that at runtime.
"""

from __future__ import annotations

from ..core import EvaluationError
from ..algebra.programs import Program
from ..relational import (
    Assign,
    AssignNew,
    AssignSetNew,
    ConstColumn,
    Difference,
    Expr,
    FWProgram,
    Join,
    Product,
    Project,
    Rel,
    RenameAttr,
    SelectConst,
    SelectEq,
    Union,
    compile_program as compile_fw_to_ta,
)
from .embed import EDGES_SCHEMA, NODES_SCHEMA
from .operations import (
    Abstraction,
    EdgeAddition,
    EdgeDeletion,
    GoodOperation,
    GoodProgram,
    NodeAddition,
    NodeDeletion,
)
from .patterns import Pattern

__all__ = ["pattern_to_expression", "compile_to_fw", "compile_to_ta", "GOOD_SCHEMAS"]

#: Compile-time schemas of the encoding.
GOOD_SCHEMAS = {"Nodes": NODES_SCHEMA, "Edges": EDGES_SCHEMA}


def _id_col(var: str) -> str:
    return f"I_{var}"


def pattern_to_expression(pattern: Pattern) -> Expr:
    """The conjunctive query computing all embeddings of ``pattern``.

    Output schema: one ``I_<var>`` column per pattern variable.
    """
    expr: Expr | None = None
    for node in pattern.nodes:
        copy: Expr = Rel("Nodes")
        copy = RenameAttr(copy, "Id", _id_col(node.var))
        copy = RenameAttr(copy, "Label", f"L_{node.var}")
        copy = RenameAttr(copy, "Val", f"V_{node.var}")
        copy = SelectConst(copy, f"L_{node.var}", node.label)
        if not node.value.is_null:
            copy = SelectConst(copy, f"V_{node.var}", node.value)
        expr = copy if expr is None else Product(expr, copy)
    assert expr is not None  # patterns have at least one node
    for index, edge in enumerate(pattern.edges):
        copy = Rel("Edges")
        copy = RenameAttr(copy, "Src", f"S_{index}")
        copy = RenameAttr(copy, "Lab", f"E_{index}")
        copy = RenameAttr(copy, "Dst", f"D_{index}")
        copy = SelectConst(copy, f"E_{index}", edge.label)
        expr = Product(expr, copy)
        expr = SelectEq(expr, f"S_{index}", _id_col(edge.src))
        expr = SelectEq(expr, f"D_{index}", _id_col(edge.dst))
    return Project(expr, [_id_col(v) for v in pattern.variables()])


def _pair_expr(pattern: Pattern, src: str, dst: str) -> Expr:
    """(src image, dst image) pairs as a (Src, Dst) relation."""
    embeddings = pattern_to_expression(pattern)
    if src == dst:
        # duplicate the column through a self-join
        renamed = RenameAttr(
            Project(embeddings, [_id_col(src)]), _id_col(src), "__dup"
        )
        paired = SelectEq(Product(embeddings, renamed), _id_col(src), "__dup")
        projected = Project(paired, [_id_col(src), "__dup"])
        return RenameAttr(RenameAttr(projected, _id_col(src), "Src"), "__dup", "Dst")
    projected = Project(embeddings, [_id_col(src), _id_col(dst)])
    return RenameAttr(RenameAttr(projected, _id_col(src), "Src"), _id_col(dst), "Dst")


def _edge_triple(pattern: Pattern, src: str, label: str, dst: str) -> Expr:
    """(Src, Lab, Dst) triples for an edge addition/deletion."""
    pairs = _pair_expr(pattern, src, dst)
    extended = ConstColumn(pairs, "Lab", _label_name(label))
    return Project(extended, EDGES_SCHEMA)


def _label_name(label: str):
    from ..core import Name

    return Name(label)


class _Emitter:
    def __init__(self):
        self.statements: list = []
        self.counter = 0

    def temp(self) -> str:
        self.counter += 1
        return f"__good{self.counter}"

    def compile_operation(self, operation: GoodOperation) -> None:
        if isinstance(operation, EdgeAddition):
            triples = _edge_triple(
                operation.pattern, operation.src, operation.label, operation.dst
            )
            self.statements.append(Assign("Edges", Union(Rel("Edges"), triples)))
        elif isinstance(operation, EdgeDeletion):
            triples = _edge_triple(
                operation.pattern, operation.src, operation.label, operation.dst
            )
            self.statements.append(Assign("Edges", Difference(Rel("Edges"), triples)))
        elif isinstance(operation, NodeDeletion):
            doomed = self.temp()
            ids = Project(
                pattern_to_expression(operation.pattern), [_id_col(operation.var)]
            )
            self.statements.append(
                Assign(doomed, RenameAttr(ids, _id_col(operation.var), "__gone"))
            )
            self.statements.append(
                Assign(
                    "Nodes",
                    Difference(
                        Rel("Nodes"),
                        Project(
                            Join(Rel("Nodes"), RenameAttr(Rel(doomed), "__gone", "Id")),
                            NODES_SCHEMA,
                        ),
                    ),
                )
            )
            for endpoint in ("Src", "Dst"):
                self.statements.append(
                    Assign(
                        "Edges",
                        Difference(
                            Rel("Edges"),
                            Project(
                                Join(
                                    Rel("Edges"),
                                    RenameAttr(Rel(doomed), "__gone", endpoint),
                                ),
                                EDGES_SCHEMA,
                            ),
                        ),
                    )
                )
        elif isinstance(operation, NodeAddition):
            anchors = [var for (_lbl, var) in operation.edges]
            embeddings = pattern_to_expression(operation.pattern)
            witnesses = self.temp()
            anchor_cols = []
            used: set[str] = set()
            witness_expr: Expr = embeddings
            for var in anchors:
                column = _id_col(var)
                if column in used:
                    # same anchor twice: duplicate through a self-join
                    dup = f"__a{len(anchor_cols)}"
                    copy = RenameAttr(Project(witness_expr, [column]), column, dup)
                    witness_expr = SelectEq(Product(witness_expr, copy), column, dup)
                    column = dup
                used.add(column)
                anchor_cols.append(column)
            witness_expr = Project(witness_expr, anchor_cols)
            self.statements.append(Assign(witnesses, witness_expr))
            tagged = self.temp()
            self.statements.append(AssignNew(tagged, Rel(witnesses), "__new"))
            new_nodes = ConstColumn(
                RenameAttr(Project(Rel(tagged), ["__new"]), "__new", "Id"),
                "Label",
                _label_name(operation.label),
            )
            new_nodes = ConstColumn(new_nodes, "Val", None)
            self.statements.append(
                Assign("Nodes", Union(Rel("Nodes"), Project(new_nodes, NODES_SCHEMA)))
            )
            for (edge_label, _var), column in zip(operation.edges, anchor_cols):
                pairs = Project(Rel(tagged), ["__new", column])
                pairs = RenameAttr(RenameAttr(pairs, "__new", "Src"), column, "Dst")
                triples = Project(
                    ConstColumn(pairs, "Lab", _label_name(edge_label)), EDGES_SCHEMA
                )
                self.statements.append(Assign("Edges", Union(Rel("Edges"), triples)))
        elif isinstance(operation, Abstraction):
            self._compile_abstraction(operation)
        else:
            raise EvaluationError(f"cannot compile GOOD operation {operation!r}")


    def _compile_abstraction(self, operation: Abstraction) -> None:
        """The SETNEW construction for abstraction (module docstring)."""
        label = _label_name(operation.edge_label)
        id_col = _id_col(operation.var)

        # X: matched node ids (one column, "N")
        matched = self.temp()
        self.statements.append(
            Assign(
                matched,
                RenameAttr(
                    Project(pattern_to_expression(operation.pattern), [id_col]),
                    id_col,
                    "N",
                ),
            )
        )
        # XE: (N, Dst) — matched node x its edge_label-neighbor
        alpha = Project(
            RenameAttr(SelectConst(Rel("Edges"), "Lab", label), "Src", "N"),
            ["N", "Dst"],
        )
        neighbor_pairs = self.temp()
        self.statements.append(
            Assign(neighbor_pairs, Project(Join(Rel(matched), alpha), ["N", "Dst"]))
        )
        # S: (Dst, Tag) — every non-empty subset of the neighbor domain
        subsets = self.temp()
        self.statements.append(
            AssignSetNew(subsets, Project(Rel(neighbor_pairs), ["Dst"]), "Tag")
        )
        tags = Project(Rel(subsets), ["Tag"])
        touched = Project(Rel(neighbor_pairs), ["N"])
        # triples with edge(N, Dst) and Dst in Tag — the compatible core
        compatible = Project(
            Join(Rel(neighbor_pairs), Rel(subsets)), ["N", "Dst", "Tag"]
        )
        # bad1: some member of Tag is not a neighbor of N
        bad1 = Project(
            Difference(
                Project(Product(touched, Rel(subsets)), ["N", "Dst", "Tag"]),
                compatible,
            ),
            ["N", "Tag"],
        )
        # bad2: some neighbor of N is not in Tag
        bad2 = Project(
            Difference(
                Project(Product(Rel(neighbor_pairs), tags), ["N", "Dst", "Tag"]),
                compatible,
            ),
            ["N", "Tag"],
        )
        good = self.temp()
        self.statements.append(
            Assign(
                good,
                Difference(
                    Difference(Project(Product(touched, tags), ["N", "Tag"]), bad1),
                    bad2,
                ),
            )
        )
        # nodes with an empty neighbor set share one fresh tag
        isolated = self.temp()
        self.statements.append(
            Assign(isolated, Difference(Rel(matched), touched))
        )
        empty_tag = self.temp()
        self.statements.append(
            AssignNew(empty_tag, Project(Rel(isolated), []), "Tag")
        )
        pairs = self.temp()
        self.statements.append(
            Assign(
                pairs,
                Union(
                    Rel(good),
                    Project(Product(Rel(isolated), Rel(empty_tag)), ["N", "Tag"]),
                ),
            )
        )
        # new abstraction objects and their member edges
        new_nodes = ConstColumn(
            RenameAttr(Project(Rel(pairs), ["Tag"]), "Tag", "Id"),
            "Label",
            _label_name(operation.abs_label),
        )
        new_nodes = ConstColumn(new_nodes, "Val", None)
        self.statements.append(
            Assign("Nodes", Union(Rel("Nodes"), Project(new_nodes, NODES_SCHEMA)))
        )
        member_edges = RenameAttr(
            RenameAttr(Project(Rel(pairs), ["Tag", "N"]), "Tag", "Src"), "N", "Dst"
        )
        member_edges = Project(
            ConstColumn(member_edges, "Lab", _label_name(operation.member_label)),
            EDGES_SCHEMA,
        )
        self.statements.append(Assign("Edges", Union(Rel("Edges"), member_edges)))


def compile_to_fw(program: GoodProgram) -> FWProgram:
    """Compile a GOOD program (sans abstraction) into FO + while + new."""
    from ..obs.runtime import OBS as _OBS, span as _span
    from ..obs.trace import NULL_SPAN as _NULL_SPAN
    from ..runtime.governor import GOV as _GOV

    if _GOV.active and _GOV.governor is not None:
        _GOV.governor.check(op="compile.good")
    with (
        _span("compile.good", operations=len(program.operations))
        if _OBS.active
        else _NULL_SPAN
    ) as sp:
        emitter = _Emitter()
        for operation in program:
            emitter.compile_operation(operation)
        sp.set(fw_statements=len(emitter.statements))
        return FWProgram(emitter.statements)


def compile_to_ta(program: GoodProgram) -> Program:
    """The tabular algebra simulation of a GOOD program.

    Run it on :func:`repro.good.embed.encode_graph`'s output; decode the
    resulting ``Nodes``/``Edges`` tables with
    :func:`repro.good.embed.decode_graph`.
    """
    return compile_fw_to_ta(compile_to_fw(program), GOOD_SCHEMAS)
