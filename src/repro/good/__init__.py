"""GOOD — the graph-oriented object database model and its tabular embedding."""

from .compile_ta import (
    GOOD_SCHEMAS,
    compile_to_fw,
    compile_to_ta,
    pattern_to_expression,
)
from .embed import (
    EDGES_SCHEMA,
    NODES_SCHEMA,
    decode_graph,
    encode_graph,
    graphs_isomorphic,
)
from .graph import GoodEdge, GoodNode, ObjectGraph
from .operations import (
    Abstraction,
    EdgeAddition,
    EdgeDeletion,
    GoodOperation,
    GoodProgram,
    NodeAddition,
    NodeDeletion,
)
from .patterns import Embedding, Pattern, PatternEdge, PatternNode

__all__ = [
    "GoodNode",
    "GoodEdge",
    "ObjectGraph",
    "Pattern",
    "PatternNode",
    "PatternEdge",
    "Embedding",
    "GoodOperation",
    "NodeAddition",
    "EdgeAddition",
    "NodeDeletion",
    "EdgeDeletion",
    "Abstraction",
    "GoodProgram",
    "encode_graph",
    "decode_graph",
    "graphs_isomorphic",
    "NODES_SCHEMA",
    "EDGES_SCHEMA",
    "GOOD_SCHEMAS",
    "compile_to_fw",
    "compile_to_ta",
    "pattern_to_expression",
]
