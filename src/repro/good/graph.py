"""Object graphs — the data model of GOOD [9].

GOOD (the Graph-Oriented Object Database model of Gyssens, Paredaens, and
Van Gucht) represents an object base as a directed labelled graph: nodes
are objects (carrying a label and, for *printable* objects, a value) and
edges are labelled object properties.  The paper (contribution 4) states
that GOOD embeds in the tabular model; this package realizes the model,
its five pattern-based operations, the tabular encoding, and the tabular
algebra simulation of the additive/deletive fragment.

Node identities are symbols; abstract objects typically use tagged values
(object ids), printable ones any value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..core import (
    NULL,
    FreshValueSource,
    Name,
    SchemaError,
    Symbol,
    coerce_symbol,
)

__all__ = ["GoodNode", "GoodEdge", "ObjectGraph"]


@dataclass(frozen=True)
class GoodNode:
    """A node: identity, label, and an optional printable value."""

    id: Symbol
    label: Name
    value: Symbol = NULL

    @staticmethod
    def make(id: object, label: str, value: object = None) -> "GoodNode":
        return GoodNode(coerce_symbol(id), Name(label), coerce_symbol(value))

    @property
    def printable(self) -> bool:
        return not self.value.is_null

    def __str__(self) -> str:
        suffix = f"={self.value!s}" if self.printable else ""
        return f"{self.id!s}:{self.label!s}{suffix}"


@dataclass(frozen=True)
class GoodEdge:
    """A directed labelled edge between node identities."""

    src: Symbol
    label: Name
    dst: Symbol

    @staticmethod
    def make(src: object, label: str, dst: object) -> "GoodEdge":
        return GoodEdge(coerce_symbol(src), Name(label), coerce_symbol(dst))

    def __str__(self) -> str:
        return f"{self.src!s} -{self.label!s}-> {self.dst!s}"


class ObjectGraph:
    """An immutable labelled object graph.

    Construction validates referential integrity (edges connect existing
    nodes) and identity uniqueness (one node per id).
    """

    __slots__ = ("nodes", "edges", "_by_id")

    def __init__(self, nodes: Iterable[GoodNode] = (), edges: Iterable[GoodEdge] = ()):
        node_set = frozenset(nodes)
        by_id: dict[Symbol, GoodNode] = {}
        for node in node_set:
            if node.id in by_id:
                raise SchemaError(f"duplicate node id {node.id!s}")
            by_id[node.id] = node
        edge_set = frozenset(edges)
        for edge in edge_set:
            if edge.src not in by_id or edge.dst not in by_id:
                raise SchemaError(f"dangling edge {edge}")
        object.__setattr__(self, "nodes", node_set)
        object.__setattr__(self, "edges", edge_set)
        object.__setattr__(self, "_by_id", by_id)

    def __setattr__(self, key, value):  # pragma: no cover - immutability guard
        raise AttributeError("ObjectGraph is immutable")

    # -- inspection -------------------------------------------------------

    def node(self, id: object) -> GoodNode:
        symbol = coerce_symbol(id)
        if symbol not in self._by_id:
            raise SchemaError(f"no node with id {symbol!s}")
        return self._by_id[symbol]

    def has_node(self, id: object) -> bool:
        return coerce_symbol(id) in self._by_id

    def nodes_labelled(self, label: str) -> frozenset[GoodNode]:
        wanted = Name(label)
        return frozenset(n for n in self.nodes if n.label == wanted)

    def edges_labelled(self, label: str) -> frozenset[GoodEdge]:
        wanted = Name(label)
        return frozenset(e for e in self.edges if e.label == wanted)

    def out_edges(self, id: object) -> frozenset[GoodEdge]:
        symbol = coerce_symbol(id)
        return frozenset(e for e in self.edges if e.src == symbol)

    def neighbors(self, id: object, label: str) -> frozenset[Symbol]:
        symbol = coerce_symbol(id)
        wanted = Name(label)
        return frozenset(
            e.dst for e in self.edges if e.src == symbol and e.label == wanted
        )

    def labels(self) -> frozenset[Name]:
        return frozenset(n.label for n in self.nodes)

    def symbols(self) -> frozenset[Symbol]:
        out: set[Symbol] = set()
        for node in self.nodes:
            out |= {node.id, node.label, node.value}
        for edge in self.edges:
            out |= {edge.src, edge.label, edge.dst}
        return frozenset(out - {NULL})

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[GoodNode]:
        return iter(sorted(self.nodes, key=lambda n: n.id.sort_key()))

    # -- construction -------------------------------------------------------

    def add_nodes(self, nodes: Iterable[GoodNode]) -> "ObjectGraph":
        return ObjectGraph(self.nodes | frozenset(nodes), self.edges)

    def add_edges(self, edges: Iterable[GoodEdge]) -> "ObjectGraph":
        return ObjectGraph(self.nodes, self.edges | frozenset(edges))

    def remove_nodes(self, ids: Iterable[object]) -> "ObjectGraph":
        """Remove nodes and every incident edge."""
        drop = {coerce_symbol(i) for i in ids}
        return ObjectGraph(
            (n for n in self.nodes if n.id not in drop),
            (e for e in self.edges if e.src not in drop and e.dst not in drop),
        )

    def remove_edges(self, edges: Iterable[GoodEdge]) -> "ObjectGraph":
        drop = frozenset(edges)
        return ObjectGraph(self.nodes, self.edges - drop)

    # -- equality -------------------------------------------------------

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ObjectGraph)
            and other.nodes == self.nodes
            and other.edges == self.edges
        )

    def __hash__(self) -> int:
        return hash((self.nodes, self.edges))

    def __repr__(self) -> str:
        return f"ObjectGraph({len(self.nodes)} nodes, {len(self.edges)} edges)"
