"""Patterns and embeddings — the matching machinery of GOOD operations.

Every GOOD operation is parameterized by a *pattern*: a small graph whose
nodes are variables constrained by label (and optionally by printable
value), and whose edges must be realized in the object base.  An
*embedding* maps pattern variables to graph nodes respecting all
constraints (a graph homomorphism — two variables may map to the same
node, as in GOOD).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..core import NULL, Name, SchemaError, Symbol, coerce_symbol
from .graph import GoodEdge, GoodNode, ObjectGraph

__all__ = ["PatternNode", "PatternEdge", "Pattern", "Embedding"]


@dataclass(frozen=True)
class PatternNode:
    """A pattern variable: name, required label, optional required value."""

    var: str
    label: Name
    value: Symbol = NULL

    @staticmethod
    def make(var: str, label: str, value: object = None) -> "PatternNode":
        return PatternNode(var, Name(label), coerce_symbol(value))


@dataclass(frozen=True)
class PatternEdge:
    """A required edge between two pattern variables."""

    src: str
    label: Name
    dst: str

    @staticmethod
    def make(src: str, label: str, dst: str) -> "PatternEdge":
        return PatternEdge(src, Name(label), dst)


#: An embedding: pattern variable → matched node id.
Embedding = dict[str, Symbol]


class Pattern:
    """A pattern graph over variables.

    ``match(graph)`` yields every embedding, deterministically ordered.
    """

    def __init__(self, nodes: Iterable[PatternNode], edges: Iterable[PatternEdge] = ()):
        self.nodes = tuple(nodes)
        self.edges = tuple(edges)
        seen = set()
        for node in self.nodes:
            if node.var in seen:
                raise SchemaError(f"duplicate pattern variable {node.var!r}")
            seen.add(node.var)
        for edge in self.edges:
            if edge.src not in seen or edge.dst not in seen:
                raise SchemaError(f"pattern edge uses undeclared variable: {edge}")
        if not self.nodes:
            raise SchemaError("a pattern requires at least one node")

    def variables(self) -> tuple[str, ...]:
        return tuple(n.var for n in self.nodes)

    def _candidates(self, node: PatternNode, graph: ObjectGraph) -> list[GoodNode]:
        out = [
            n
            for n in graph.nodes
            if n.label == node.label
            and (node.value.is_null or n.value == node.value)
        ]
        return sorted(out, key=lambda n: n.id.sort_key())

    def match(self, graph: ObjectGraph) -> Iterator[Embedding]:
        """All embeddings of the pattern into ``graph`` (homomorphisms)."""
        edge_set = graph.edges
        order = sorted(
            self.nodes, key=lambda n: -sum(1 for e in self.edges if n.var in (e.src, e.dst))
        )

        def consistent(binding: Embedding) -> bool:
            for edge in self.edges:
                if edge.src in binding and edge.dst in binding:
                    if GoodEdge(binding[edge.src], edge.label, binding[edge.dst]) not in edge_set:
                        return False
            return True

        def extend(idx: int, binding: Embedding) -> Iterator[Embedding]:
            if idx == len(order):
                yield dict(binding)
                return
            node = order[idx]
            for candidate in self._candidates(node, graph):
                binding[node.var] = candidate.id
                if consistent(binding):
                    yield from extend(idx + 1, binding)
                del binding[node.var]

        yield from extend(0, {})

    def __repr__(self) -> str:
        return f"Pattern({len(self.nodes)} vars, {len(self.edges)} edges)"
