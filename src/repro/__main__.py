"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``figures`` — print every Figure 1–5 artifact, regenerated live, with
  the exactness checks;
* ``check``   — a fast self-check of the headline reproductions (exit
  status 0 iff everything holds);
* ``demo``    — the quickstart walkthrough;
* ``trace [example] [--json]`` — run a bundled pipeline under the tracer
  and print its EXPLAIN report (nested span tree, per-op wall time and
  row flow, metrics tables); ``--json`` emits the same data as JSON;
* ``stats [--json]`` — run every bundled pipeline and print the
  aggregated per-operation metrics.
"""

from __future__ import annotations

import sys


def _figures() -> int:
    from .algebra import group, merge
    from .core import render_database, render_table
    from .data import (
        figure4_bottom,
        figure4_top,
        figure5_result,
        sales_info1,
        sales_info2,
        sales_info3,
        sales_info4,
    )

    print("=" * 72)
    print("Figure 1 — the four SalesInfo databases (bold parts)")
    print("=" * 72)
    for label, db in [
        ("SalesInfo1", sales_info1()),
        ("SalesInfo2", sales_info2()),
        ("SalesInfo3", sales_info3()),
        ("SalesInfo4", sales_info4()),
    ]:
        print()
        print(render_database(db, title=label))
    print()
    print("=" * 72)
    print("Figure 4 — Sales <- GROUP by Region on Sold (Sales)")
    print("=" * 72)
    grouped = group(figure4_top(), by="Region", on="Sold")
    print(render_table(grouped))
    print()
    print("reproduces the printed figure exactly:", grouped == figure4_bottom())
    print()
    print("=" * 72)
    print("Figure 5 — Sales <- MERGE on Sold by Region (Sales)")
    print("=" * 72)
    merged = merge(sales_info2().tables[0], on="Sold", by="Region")
    print(render_table(merged))
    print()
    print("reproduces the printed figure exactly:", merged == figure5_result())
    return 0


def _check() -> int:
    from .algebra import collapse_compact, group, group_compact, merge, merge_compact, split
    from .canonical import decode, encode
    from .data import (
        figure4_bottom,
        figure4_top,
        figure5_result,
        sales_info1,
        sales_info2,
        sales_info4,
    )

    checks = {
        "Figure 4 (GROUP, exact)": group(figure4_top(), by="Region", on="Sold")
        == figure4_bottom(),
        "Figure 5 (MERGE, exact)": merge(
            sales_info2().tables[0], on="Sold", by="Region"
        )
        == figure5_result(),
        "SalesInfo1 -> SalesInfo2": group_compact(
            figure4_top(), by="Region", on="Sold"
        ).equivalent(sales_info2().tables[0]),
        "SalesInfo2 -> SalesInfo1": merge_compact(
            sales_info2().tables[0], on="Sold", by="Region"
        ).equivalent(figure4_top()),
        "SalesInfo4 -> SalesInfo1": collapse_compact(
            sales_info4().tables, by="Region"
        ).equivalent(figure4_top()),
        "SalesInfo1 -> SalesInfo4": all(
            any(p.equivalent(t) for t in sales_info4().tables)
            for p in split(figure4_top(), on="Region")
        ),
        "canonical round trip": decode(encode(sales_info1())).equivalent(
            sales_info1()
        ),
    }
    failed = 0
    for label, ok in checks.items():
        print(f"{'ok  ' if ok else 'FAIL'}  {label}")
        failed += 0 if ok else 1
    print()
    print(f"{len(checks) - failed}/{len(checks)} reproductions hold")
    return 1 if failed else 0


def _demo() -> int:
    import runpy
    from pathlib import Path

    script = Path(__file__).resolve().parent.parent.parent / "examples" / "quickstart.py"
    if not script.exists():
        print("quickstart example not found (installed without examples/)")
        return 1
    runpy.run_path(str(script), run_name="__main__")
    return 0


def _trace(rest: list[str]) -> int:
    import json

    from .obs.examples import EXAMPLES, trace_example

    json_out = "--json" in rest
    names = [a for a in rest if not a.startswith("-")]
    name = names[0] if names else "fig4-group"
    if name not in EXAMPLES:
        print(f"unknown example {name!r}; bundled examples:")
        for example in EXAMPLES.values():
            print(f"  {example.name:12}  {example.description}")
        return 2
    obs, _result = trace_example(name)
    if json_out:
        print(json.dumps(obs.to_json(), indent=2))
    else:
        print(f"trace of {name} — {EXAMPLES[name].description}")
        print()
        print(obs.explain())
    return 0


def _stats(rest: list[str]) -> int:
    import json

    from .core import render_table
    from .obs import counters_table, metrics_table, observation
    from .obs.examples import EXAMPLES, run_example

    with observation(trace=False) as obs:
        for example in EXAMPLES.values():
            run_example(example.name)
    if "--json" in rest:
        print(json.dumps(obs.metrics.snapshot(), indent=2))
        return 0
    print(f"aggregated metrics over {len(EXAMPLES)} bundled pipelines")
    print()
    ops = metrics_table(obs.metrics)
    if ops is not None:
        print(render_table(ops, title="Operation metrics"))
        print()
    counters = counters_table(obs.metrics)
    if counters is not None:
        print(render_table(counters, title="Counters"))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    command = args[0] if args else "check"
    rest = args[1:]
    if command == "trace":
        return _trace(rest)
    if command == "stats":
        return _stats(rest)
    commands = {"figures": _figures, "check": _check, "demo": _demo}
    if command not in commands:
        print(__doc__)
        return 2
    return commands[command]()


if __name__ == "__main__":
    raise SystemExit(main())
