"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``figures`` — print every Figure 1–5 artifact, regenerated live, with
  the exactness checks;
* ``check``   — a fast self-check of the headline reproductions (exit
  status 0 iff everything holds);
* ``demo``    — the quickstart walkthrough;
* ``trace [example] [--json] [--analyze] [--stats PATH]`` — run a
  bundled pipeline under the tracer and print its EXPLAIN report
  (nested span tree, per-op wall time and row flow, metrics tables);
  ``--analyze`` adds the EXPLAIN ANALYZE comparison (estimated vs.
  actual rows/time with mis-estimation ratios); ``--stats PATH``
  installs a persisted ANALYZE snapshot so the plan's ``est_rows``
  come from measured statistics instead of shape heuristics (the
  ANALYZE report then carries a ``Src`` column attributing each
  estimate); ``--json`` emits the same data as JSON;
* ``profile [example] [--chrome-trace PATH] [--log-json PATH]`` — run a
  bundled pipeline under the profiler and print hotspots (top ops by
  self time), wall-time histograms, and per-span peak memory; the flags
  export a Chrome-trace JSON (loadable in ``chrome://tracing`` /
  Perfetto) and a JSON-lines structured log;
* ``lineage [example] [--cell T[r,c]] [--audit] [--dot PATH]
  [--graph-json PATH]`` — run a bundled pipeline with cell-level
  provenance on and answer a why-provenance query: which input cells
  produced output cell ``T[r,c]``?  Prints the witness set, the
  witness-replay verdict (re-executing on just the witness rows must
  regenerate the cell), and a provenance-annotated EXPLAIN.
  ``--audit`` replays *every* output cell (all lineage-capable examples
  when no example is named); ``--dot``/``--graph-json`` export the
  input-cell → output-cell provenance graph;
* ``stats [--json]`` — run every bundled pipeline and print the
  aggregated per-operation metrics;
* ``analyze [workload|example] [--engine naive|vector] [--top-k N]
  [--out PATH] [--json]`` — the ANALYZE pass: compute per-table row
  counts and per-column NDV / min / max / null fractions / top-K
  frequency sketches for a workload's database (``tc:N`` or any
  TA-program example), print the summary, and (``--out``) persist the
  snapshot as schema-versioned JSON for ``trace --stats`` /
  ``run --stats`` to consume;
* ``stats-audit [--seeds N] [--engine naive|vector] [--tc N]
  [--out PATH] [--json]`` — the estimator's accuracy audit: replay the
  example corpus plus ``--seeds`` differential-fuzzer cases with fresh
  ANALYZE stats installed, score every cardinality estimate against the
  actual rows, and report per-op p50/p95/max q-error plus workload
  fingerprint aggregates; exit 1 unless every dispatched op kind was
  scored (docs/OBSERVABILITY.md);
* ``optimize [workload|example] [--analyze] [--stats PATH]
  [--rules a,b,c] [--explain] [--verify] [--no-cache] [--json]`` — the
  cost-based plan optimizer (docs/OPTIMIZER.md): print the program
  before and after rewriting, every applied rule with its algebraic
  justification, and the join-ordering decisions (chosen order, cost
  model verdict, estimated rows); ``--analyze`` runs ANALYZE on the
  workload's database in-process so the join reorder is estimate-driven,
  ``--stats PATH`` installs a persisted snapshot instead, ``--rules``
  restricts the rewrite set to a comma-separated subset, ``--explain``
  executes the optimized plan under the tracer and prints its EXPLAIN
  (CHAINJOIN spans carry the chosen order and est rows), ``--verify``
  checks the optimized program's final database is byte-identical to
  the original's (exit 1 otherwise);
* ``metrics [--prom] [--estimates] [--stats PATH] [--supervisor]
  [--optimizer]`` —
  the same aggregated metrics as a JSON snapshot or (``--prom``) in the
  Prometheus text exposition format (per-op counters and wall-time
  histograms, ready to scrape); ``--estimates`` reruns the corpus under
  estimation and adds the estimator families (per-op q-error
  histograms, worst-q-error gauges, estimates-by-source counters);
  ``--stats PATH`` adds the stale-stats age/size gauges for a persisted
  snapshot; ``--supervisor`` runs a small deterministic supervised demo
  (a retried fault, a breaker-tripping poison workload, a quarantined
  submission) and adds the ``repro_retry_*`` / ``repro_breaker_*`` /
  ``repro_recovery_*`` fault-tolerance families; ``--optimizer`` runs a
  small deterministic plan-optimizer demo (cold plan, warm cache hit,
  stats-free plan) and adds the ``repro_optimizer_*`` plan-cache /
  rewrite / ordering counters;
* ``prom-lint [FILE]`` — validate a Prometheus text payload (stdin when
  no file): name grammars, TYPE declarations, histogram cumulativity;
  exit 1 on format problems;
* ``engine-report [workload...] [--json]`` — run a corpus (default:
  every TA-program example plus ``tc:8``) under the vector engine and
  print kernel/fallback attribution: every naive fallback tagged with a
  machine-readable reason (``no_kernel``, ``lineage_active``,
  ``kernel_declined``, ``needs_fresh``, ``multi_result``,
  ``aggregate``); exit 1 unless 100% of fallbacks are attributed;
* ``bench-compare <baseline> <current> [--tolerance X]`` — diff two
  benchmark trajectory files (``BENCH_trajectory.json``); exit 1 when a
  shared benchmark label regressed beyond the tolerance (default 1.5x),
  exit 3 when either trajectory file is missing, unreadable, or not a
  valid trajectory (so CI can tell a failed gate from one that never
  ran);
* ``run [workload] [--engine naive|vector] [--deadline MS] [--max-rows N]
  [--max-rows-per-op N] [--max-cells-per-op N] [--max-while N]
  [--checkpoint PATH] [--resume] [--retry N] [--verify] [--json]
  [--progress] [--events PATH] [--flight-dir DIR] [--stats PATH]
  [--optimize]`` —
  run a workload
  (``tc:N`` for the synthetic transitive-closure fixpoint, or any
  bundled TA example) under the resource governor with
  checkpoint/resume; ``--engine vector`` routes execution through the
  vectorized backend (docs/ENGINE.md), ``--retry`` auto-resumes a
  budget-killed run from its checkpoint, ``--verify`` compares the final
  database against an ungoverned naive run; ``--progress`` streams live
  while-iteration/budget lines from the event bus, ``--events PATH``
  streams every event as JSON lines, and ``--flight-dir DIR`` arms the
  flight recorder — a run that dies on a budget kill dumps a postmortem
  bundle (event tail, metrics, checkpoint pointer, and the ANALYZE
  snapshot behind any live cardinality estimates) into DIR
  (docs/OBSERVABILITY.md); ``--stats PATH`` installs a persisted
  ANALYZE snapshot so the run is scored by the cardinality estimator
  (``op_estimate`` events carry est/actual rows and q-error);
  ``--optimize`` rewrites the program through the cost-based plan
  optimizer first (stats-driven join reorder when ``--stats`` is also
  given; the ledger manifest and checkpoints fingerprint the optimized
  plan); with
  ``--retry N`` the run routes through the fault-tolerant supervisor
  (error classification, checkpoint resume, deterministic backoff,
  vector→naive degradation, circuit-breaker admission) — ``--retry``
  requires ``--checkpoint`` (exit 2 otherwise);
* ``supervise [workload] [--engine naive|vector] [--retry N]
  [--backoff MS] [--attempt-deadline MS] [--total-deadline MS]
  [--deadline MS] [--max-while N] [--checkpoint PATH] [--faults JSON]
  [--seed N] [--breaker-threshold N] [--cooldown S] [--ledger DIR]
  [--verify] [--json]`` — run one workload to a definitive outcome
  under the supervisor and print the attempt-by-attempt history;
  ``--faults`` injects a seeded chaos plan (docs/ROBUSTNESS.md JSON
  format) to exercise the retry/degradation paths; with ``--ledger``
  the admission stamp, breaker transitions, and closing manifest are
  journaled so the run is crash-recoverable; exit 0 on a verified
  result, 1 on terminal failure or quarantine;
* ``recover [--ledger DIR] [--retry N] [--verify] [--json]`` — crash
  recovery: scan the ledger for runs with an admission stamp but no
  outcome, resume each from its checkpoint under the supervisor, and
  stamp unrecoverable ones ``orphaned`` (missing/torn checkpoint,
  unreplayable spec); exit 0 when every open run was resumed or
  orphaned, 1 when a resumed run failed, 3 when the ledger is absent;
* ``chaos [example...] [--kinds raise,delay,corrupt] [--seed N]
  [--supervisor] [--json]`` — run the fault-injection matrix over the
  bundled pipelines; every injection point must surface as a typed
  error with no partial mutation (exit 1 otherwise); ``--supervisor``
  runs the supervisor decision matrix instead: every
  (error class × retry policy × engine) cell must end in the documented
  decision (retried/resumed/degraded/quarantined) with a final database
  byte-identical to an unfaulted run;
* ``history [run-id] [--ledger DIR] [--fingerprint F] [--workload W]
  [--outcome S] [--limit N] [--aggregates] [--json]`` — list the runs
  recorded in a ledger directory (``run --ledger`` / ``trace --ledger``
  write them), inspect one run's full manifest by id, or
  (``--aggregates``) print the per-fingerprint cross-run aggregates the
  cost-model feedback loop consumes;
* ``replay <run-id | bundle-dir> [--ledger DIR] [--engine naive|vector]
  [--inject-fault SEED] [--json]`` — re-execute a ledgered run and diff
  it against the recording: result-database digest (with structural
  drill-down to the first differing cell), ordered op/rows trace, and
  normalized program fingerprint; exit 0 iff byte-identical, 1 on any
  divergence.  A flight-recorder bundle directory resolves to its run
  via the manifest's run pointer.  ``--inject-fault`` /``--engine``
  deliberately inject divergence so CI can prove the detector fires;
* ``sentinel [--ledger DIR] [--window N] [--min-runs N]
  [--latency-factor X] [--qerror-factor X] [--fallback-jump X]
  [--json]`` — cross-run drift detection: compare the recent window of
  runs against the baseline window per program fingerprint over latency
  p50/p95, mean q-error, and vector-fallback rate; exit 0 clean, 4 on
  drift, 3 when no fingerprint has enough history.

``run`` and ``trace`` accept ``--ledger DIR`` to journal the run into a
persistent ledger (docs/OBSERVABILITY.md describes the on-disk format).

Exit codes, uniformly: 0 success; 1 failure (a check failed, a run was
killed or diverged, a gate tripped); 2 usage error; 3 missing input
(file, ledger, run, or bundle absent or unusable); 4 drift detected.
"""

from __future__ import annotations

import sys


def _figures(rest: list[str]) -> int:
    from .algebra import group, merge
    from .core import render_database, render_table
    from .data import (
        figure4_bottom,
        figure4_top,
        figure5_result,
        sales_info1,
        sales_info2,
        sales_info3,
        sales_info4,
    )

    print("=" * 72)
    print("Figure 1 — the four SalesInfo databases (bold parts)")
    print("=" * 72)
    for label, db in [
        ("SalesInfo1", sales_info1()),
        ("SalesInfo2", sales_info2()),
        ("SalesInfo3", sales_info3()),
        ("SalesInfo4", sales_info4()),
    ]:
        print()
        print(render_database(db, title=label))
    print()
    print("=" * 72)
    print("Figure 4 — Sales <- GROUP by Region on Sold (Sales)")
    print("=" * 72)
    grouped = group(figure4_top(), by="Region", on="Sold")
    print(render_table(grouped))
    print()
    print("reproduces the printed figure exactly:", grouped == figure4_bottom())
    print()
    print("=" * 72)
    print("Figure 5 — Sales <- MERGE on Sold by Region (Sales)")
    print("=" * 72)
    merged = merge(sales_info2().tables[0], on="Sold", by="Region")
    print(render_table(merged))
    print()
    print("reproduces the printed figure exactly:", merged == figure5_result())
    return 0


def _check(rest: list[str]) -> int:
    from .algebra import collapse_compact, group, group_compact, merge, merge_compact, split
    from .canonical import decode, encode
    from .data import (
        figure4_bottom,
        figure4_top,
        figure5_result,
        sales_info1,
        sales_info2,
        sales_info4,
    )

    checks = {
        "Figure 4 (GROUP, exact)": group(figure4_top(), by="Region", on="Sold")
        == figure4_bottom(),
        "Figure 5 (MERGE, exact)": merge(
            sales_info2().tables[0], on="Sold", by="Region"
        )
        == figure5_result(),
        "SalesInfo1 -> SalesInfo2": group_compact(
            figure4_top(), by="Region", on="Sold"
        ).equivalent(sales_info2().tables[0]),
        "SalesInfo2 -> SalesInfo1": merge_compact(
            sales_info2().tables[0], on="Sold", by="Region"
        ).equivalent(figure4_top()),
        "SalesInfo4 -> SalesInfo1": collapse_compact(
            sales_info4().tables, by="Region"
        ).equivalent(figure4_top()),
        "SalesInfo1 -> SalesInfo4": all(
            any(p.equivalent(t) for t in sales_info4().tables)
            for p in split(figure4_top(), on="Region")
        ),
        "canonical round trip": decode(encode(sales_info1())).equivalent(
            sales_info1()
        ),
    }
    failed = 0
    for label, ok in checks.items():
        print(f"{'ok  ' if ok else 'FAIL'}  {label}")
        failed += 0 if ok else 1
    print()
    print(f"{len(checks) - failed}/{len(checks)} reproductions hold")
    return 1 if failed else 0


def _demo(rest: list[str]) -> int:
    import runpy
    from pathlib import Path

    script = Path(__file__).resolve().parent.parent.parent / "examples" / "quickstart.py"
    if not script.exists():
        print("quickstart example not found (installed without examples/)")
        return 1
    runpy.run_path(str(script), run_name="__main__")
    return 0


def _list_examples() -> None:
    from .obs.examples import EXAMPLES

    for example in EXAMPLES.values():
        print(f"  {example.name:12}  {example.description}")


def _resolve_or_fail(raw: str) -> str | None:
    """Resolve an example name; on failure print the diagnosis and listing.

    The diagnosis distinguishes unknown names (with "did you mean"
    suggestions) from ambiguous prefixes (listing every match); callers
    turn None into exit status 2.
    """
    from .obs.examples import ExampleLookupError, resolve_example_strict

    try:
        return resolve_example_strict(raw)
    except ExampleLookupError as err:
        print(f"error: {err.args[0]}")
        print("bundled examples:")
        _list_examples()
        return None


def _trace(rest: list[str]) -> int:
    import json
    from contextlib import ExitStack

    from .obs.examples import EXAMPLES, trace_example

    json_out = "--json" in rest
    analyze = "--analyze" in rest
    stats_path = _flag_value(rest, "--stats")
    ledger_dir = _flag_value(rest, "--ledger")
    names = [
        a
        for a in rest
        if not a.startswith("-") and a not in (stats_path, ledger_dir)
    ]
    name = _resolve_or_fail(names[0] if names else "fig4-group")
    if name is None:
        return 2
    recorder = None
    with ExitStack() as stack:
        if ledger_dir is not None:
            from .core.errors import LedgerError
            from .obs.events import event_stream
            from .obs.ledger import RunLedger, RunRecorder

            bus = stack.enter_context(event_stream())
            try:
                ledger = RunLedger(ledger_dir)
            except LedgerError as err:
                print(f"error: {err}")
                return 3
            recorder = RunRecorder(bus, ledger)
        if stats_path is not None:
            from .core.errors import StatsError
            from .obs.estimator import estimation
            from .obs.stats import load_stats

            try:
                stats = load_stats(stats_path)
            except StatsError as err:
                print(f"error: {err}")
                return 2
            stack.enter_context(estimation(stats))
        obs, _result = trace_example(name)
        if recorder is not None:
            # Traces are journaled for history/sentinel but marked
            # non-replayable: the tracer drives the example's own
            # pipeline, not the hardened runtime replay re-executes.
            program = None
            example = EXAMPLES[name]
            if example.setup is not None:
                _db, bound_run = example.setup()
                candidate = getattr(bound_run, "__self__", None)
                if candidate is not None and hasattr(candidate, "statements"):
                    program = candidate
            recorder.finish(workload=name, program=program)
            if not json_out:
                print(f"run {recorder.run_id} recorded in ledger {ledger_dir}")
                print()
    if json_out:
        data = obs.to_json()
        if analyze:
            from .obs.cost import analyze_records

            data["analyze"] = [
                {
                    k: (round(v, 6) if isinstance(v, float) else v)
                    for k, v in record.items()
                }
                for record in analyze_records(obs)
            ]
        print(json.dumps(data, indent=2))
        return 0
    print(f"trace of {name} — {EXAMPLES[name].description}")
    print()
    if analyze:
        from .obs.cost import explain_analyze_text

        print(explain_analyze_text(obs))
    else:
        print(obs.explain())
    return 0


def _flag_value(rest: list[str], flag: str) -> str | None:
    if flag in rest:
        index = rest.index(flag)
        if index + 1 < len(rest):
            return rest[index + 1]
    return None


def _profile(rest: list[str]) -> int:
    import json

    from .obs.examples import EXAMPLES, profile_example
    from .obs.export import write_chrome_trace, write_jsonl

    chrome_path = _flag_value(rest, "--chrome-trace")
    jsonl_path = _flag_value(rest, "--log-json")
    flag_values = {v for v in (chrome_path, jsonl_path) if v is not None}
    json_out = "--json" in rest
    memory = "--no-memory" not in rest
    names = [a for a in rest if not a.startswith("-") and a not in flag_values]
    name = _resolve_or_fail(names[0] if names else "fig4-group")
    if name is None:
        return 2
    prof, _result = profile_example(name, memory=memory)
    if json_out:
        print(json.dumps(prof.to_json(), indent=2))
    else:
        print(f"profile of {name} — {EXAMPLES[name].description}")
        print()
        print(prof.report())
    if chrome_path:
        written = write_chrome_trace(prof.observation, chrome_path)
        print(f"chrome trace written to {written} (load in chrome://tracing or Perfetto)")
    if jsonl_path:
        written = write_jsonl(prof.observation, jsonl_path)
        print(f"JSON-lines log written to {written}")
    return 0


def _parse_cell(text: str) -> tuple[str, int, int] | None:
    """Parse ``T[r,c]`` (table label, row, column); None when malformed."""
    import re

    match = re.fullmatch(r"\s*(.+?)\s*\[\s*(\d+)\s*,\s*(\d+)\s*\]\s*", text)
    if match is None:
        return None
    return match.group(1), int(match.group(2)), int(match.group(3))


def _lineage_capable(audit_all: bool = True):
    from .obs.examples import EXAMPLES

    return {name: ex for name, ex in EXAMPLES.items() if ex.setup is not None}


def _lineage_graph(name: str) -> dict:
    """One example's provenance graph (its own lineage run)."""
    from .obs.examples import EXAMPLES
    from .obs.lineage import lineage as lineage_scope, provenance_graph

    db, run = EXAMPLES[name].setup()
    with lineage_scope() as lin:
        tagged = lin.tag_database(db)
        out = run(tagged)
        return provenance_graph(lin, out, name=name)


def _lineage(rest: list[str]) -> int:
    from .obs import observation
    from .obs.examples import EXAMPLES
    from .obs.export import write_provenance_dot, write_provenance_json
    from .obs.lineage import audit_run, lineage as lineage_scope, provenance_graph

    cell_text = _flag_value(rest, "--cell")
    dot_path = _flag_value(rest, "--dot")
    graph_json_path = _flag_value(rest, "--graph-json")
    audit = "--audit" in rest
    flag_values = {v for v in (cell_text, dot_path, graph_json_path) if v is not None}
    names = [a for a in rest if not a.startswith("-") and a not in flag_values]

    capable = _lineage_capable()
    if audit and not names:
        # Audit (and optionally graph-export) every lineage-capable example.
        failures = 0
        graphs = []
        for name in capable:
            db, run = capable[name].setup()
            result = audit_run(run, db, name=name)
            verdict = "ok  " if result.ok else "FAIL"
            print(
                f"{verdict}  {name:12} {result.queried} cells queried, "
                f"{result.regenerated} regenerated "
                f"({result.constants} constants, {result.replays} replays)"
            )
            if not result.ok:
                failures += 1
                for label, row, col in result.failures[:5]:
                    print(f"        not regenerated: {label}[{row},{col}]")
            if dot_path or graph_json_path:
                graphs.append(_lineage_graph(name))
        print()
        print(f"{len(capable) - failures}/{len(capable)} examples fully constructive")
        if dot_path:
            print(f"provenance graph written to {write_provenance_dot(graphs, dot_path)}")
        if graph_json_path:
            print(
                "provenance graph JSON written to "
                f"{write_provenance_json(graphs, graph_json_path)}"
            )
        return 1 if failures else 0

    name = _resolve_or_fail(names[0] if names else "fig4-group")
    if name is None:
        return 2
    example = EXAMPLES[name]
    if example.setup is None:
        print(
            f"error: example {name!r} is not lineage-capable "
            "(its pipeline is not a TA program over a tabular database)"
        )
        others = ", ".join(capable)
        print(f"lineage-capable examples: {others}")
        return 2

    if audit:
        db, run = example.setup()
        result = audit_run(run, db, name=name)
        print(
            f"audit of {name}: {result.queried} cells queried, "
            f"{result.regenerated} regenerated "
            f"({result.constants} constants, {result.replays} replays)"
        )
        for label, row, col in result.failures:
            print(f"  not regenerated: {label}[{row},{col}]")
        if dot_path:
            print(
                "provenance graph written to "
                f"{write_provenance_dot(_lineage_graph(name), dot_path)}"
            )
        if graph_json_path:
            print(
                "provenance graph JSON written to "
                f"{write_provenance_json(_lineage_graph(name), graph_json_path)}"
            )
        return 0 if result.ok else 1

    db, run = example.setup()
    with observation() as obs, lineage_scope() as lin:
        tagged = lin.tag_database(db)
        out = run(tagged)

    # Label output tables the way tag_database labels inputs (Name#k on
    # name collisions) so --cell can address any of them.
    out_names = [str(t.name) for t in out.tables]
    seen: dict[str, int] = {}
    labels = []
    for table_name in out_names:
        if out_names.count(table_name) > 1:
            labels.append(f"{table_name}#{seen.get(table_name, 0)}")
            seen[table_name] = seen.get(table_name, 0) + 1
        else:
            labels.append(table_name)
    by_label = dict(zip(labels, out.tables))

    if cell_text is not None:
        parsed = _parse_cell(cell_text)
        if parsed is None:
            print(f"error: malformed --cell {cell_text!r}; expected T[r,c], e.g. Sales[2,3]")
            return 2
        label, row, col = parsed
        table = by_label.get(label)
        if table is None:
            print(f"error: no output table {label!r}; output tables: {', '.join(labels)}")
            return 2
        if not (0 <= row < table.nrows and 0 <= col < table.ncols):
            print(
                f"error: cell [{row},{col}] outside {label!r} "
                f"({table.nrows} rows x {table.ncols} cols)"
            )
            return 2
    else:
        # Default: the first output cell that carries provenance,
        # preferring data cells over attribute cells.
        label, table, row, col = labels[0], out.tables[0], 0, 0
        found = False
        for lbl, t in by_label.items():
            for i in list(t.data_row_indices()) + [0]:
                for j in range(t.ncols):
                    if t.entry(i, j).prov:
                        label, table, row, col = lbl, t, i, j
                        found = True
                        break
                if found:
                    break
            if found:
                break

    witness = lin.witness(table, row, col, label=label)
    print(f"lineage of {name} — {example.description}")
    print()
    print(lin.describe_witness(witness))
    check = lin.replay_check(run, witness)
    print()
    if witness.origins:
        verdict = "regenerated" if check.regenerated else "NOT regenerated"
        print(
            f"witness replay: {verdict} "
            f"({check.matches} matching cell(s) from {witness.cells} witness rows)"
        )
    else:
        print("witness replay: trivial (constant cell, no input dependency)")
    print()
    print("provenance-annotated EXPLAIN:")
    print(obs.explain())
    return 0 if check.regenerated else 1


def _int_flag(rest: list[str], flag: str) -> tuple[int | None, str | None]:
    """``(value, error)`` for an integer-valued flag."""
    text = _flag_value(rest, flag)
    if text is None:
        return None, None
    try:
        return int(text), None
    except ValueError:
        return None, f"invalid {flag} {text!r}; expected an integer"


def _run(rest: list[str]) -> int:
    import json
    from contextlib import ExitStack

    from .core.errors import BudgetExceededError, CancelledError, ReproError
    from .runtime import Limits, ResourceGovernor, run_hardened
    from .runtime.workloads import parse_workload

    flag_values = set()
    deadline_ms, err = _int_flag(rest, "--deadline")
    errors = [err]
    for flag in ("--max-rows", "--max-rows-per-op", "--max-cells-per-op",
                 "--max-while", "--retry"):
        _value, err = _int_flag(rest, flag)
        errors.append(err)
    for message in errors:
        if message is not None:
            print(f"error: {message}")
            return 2
    max_rows, _ = _int_flag(rest, "--max-rows")
    max_rows_per_op, _ = _int_flag(rest, "--max-rows-per-op")
    max_cells_per_op, _ = _int_flag(rest, "--max-cells-per-op")
    max_while, _ = _int_flag(rest, "--max-while")
    retry, _ = _int_flag(rest, "--retry")
    checkpoint = _flag_value(rest, "--checkpoint")
    engine = _flag_value(rest, "--engine") or "naive"
    events_path = _flag_value(rest, "--events")
    flight_dir = _flag_value(rest, "--flight-dir")
    stats_path = _flag_value(rest, "--stats")
    ledger_dir = _flag_value(rest, "--ledger")
    if engine not in ("naive", "vector"):
        print(f"error: invalid --engine {engine!r}; expected naive or vector")
        return 2
    for flag in ("--deadline", "--max-rows", "--max-rows-per-op",
                 "--max-cells-per-op", "--max-while", "--retry", "--checkpoint",
                 "--engine", "--events", "--flight-dir", "--stats", "--ledger"):
        value = _flag_value(rest, flag)
        if value is not None:
            flag_values.add(value)
    resume = "--resume" in rest
    verify = "--verify" in rest
    json_out = "--json" in rest
    progress = "--progress" in rest
    optimize = "--optimize" in rest

    names = [a for a in rest if not a.startswith("-") and a not in flag_values]
    spec = names[0] if names else "tc"
    try:
        workload = parse_workload(spec)
    except ReproError as err:
        print(f"error: {err}")
        return 2
    if workload is not None:
        label, program, db = workload
    else:
        name = _resolve_or_fail(spec)
        if name is None:
            return 2
        from .obs.examples import EXAMPLES

        example = EXAMPLES[name]
        if example.setup is None:
            print(
                f"error: example {name!r} is not a TA program over a tabular "
                "database; it cannot run under the hardened runtime"
            )
            return 2
        db, bound_run = example.setup()
        program = getattr(bound_run, "__self__", None)
        if program is None or not hasattr(program, "statements"):
            print(f"error: example {name!r} does not expose a TA program")
            return 2
        label = name

    limits = Limits(
        deadline_s=deadline_ms / 1000.0 if deadline_ms is not None else None,
        max_total_rows=max_rows,
        max_rows_per_op=max_rows_per_op,
        max_cells_per_op=max_cells_per_op,
        max_while_iterations=max_while,
    )
    if resume and checkpoint is None:
        print("error: --resume requires --checkpoint PATH")
        return 2
    if retry is not None and checkpoint is None:
        print("error: --retry requires --checkpoint PATH (resume needs a file)")
        return 2
    if retry is not None and retry < 0:
        print(f"error: --retry must be >= 0, got {retry}")
        return 2

    stats = None
    if stats_path is not None:
        from .core.errors import StatsError
        from .obs.stats import load_stats

        try:
            stats = load_stats(stats_path)
        except StatsError as err:
            print(f"error: {err}")
            return 2

    optimizer_manifest = None
    if optimize:
        # The optimized program replaces the original for every path
        # below — hardened driver, supervisor, verify, and the ledger
        # manifest all see (and fingerprint) the optimized plan.  The
        # manifest also records the rules and the stats snapshot the
        # plan was chosen from, so `repro replay` can re-derive the
        # identical plan instead of diverging on the fingerprint.
        from .engine.optimizer import optimize_program

        optimized = optimize_program(program, stats)
        program = optimized.program
        optimizer_manifest = {
            "rules": list(optimized.rules),
            "applied": [rewrite.rule for rewrite in optimized.applied],
            "stats": None if stats is None else stats.to_json(),
        }

    limits_info = {
        "deadline_ms": deadline_ms,
        "max_rows": max_rows,
        "max_rows_per_op": max_rows_per_op,
        "max_cells_per_op": max_cells_per_op,
        "max_while": max_while,
    }
    kills: list[str] = []
    attempts = 0
    result = None
    governor = None
    bundle_path = None
    run_recorder = None
    with ExitStack() as stack:
        # The event feed is on whenever anything consumes it: the live
        # ticker, the JSONL stream, the flight recorder's postmortem
        # ring, or the run-ledger recorder.  With none of the four,
        # `run` keeps the zero-overhead disabled path.
        recorder = None
        if (progress or events_path is not None or flight_dir is not None
                or ledger_dir is not None):
            from .obs.events import JsonlEventWriter, event_stream
            from .obs.flight import FlightRecorder
            from .obs.progress import ProgressTicker

            bus = stack.enter_context(event_stream())
            if progress:
                bus.attach(ProgressTicker())
            if events_path is not None:
                writer = JsonlEventWriter(events_path)
                bus.attach(writer)
                stack.callback(writer.close)
            if ledger_dir is not None:
                from .core.errors import LedgerError
                from .obs.ledger import RunLedger, RunRecorder

                try:
                    run_ledger = RunLedger(ledger_dir)
                except LedgerError as err:
                    print(f"error: {err}")
                    return 3
                run_recorder = RunRecorder(bus, run_ledger)
            if flight_dir is not None:
                recorder = FlightRecorder(bus, directory=flight_dir)
                recorder.note_program(repr(program))
                if stats is not None:
                    recorder.note_stats(stats)
                if run_recorder is not None:
                    recorder.note_run(run_recorder.run_id, ledger_dir)
        if stats is not None:
            from .obs.estimator import estimation

            stack.enter_context(estimation(stats))
        if retry is not None:
            # --retry routes through the fault-tolerant supervisor:
            # error classification, checkpoint resume, deterministic
            # backoff, vector->naive degradation, breaker admission.
            from .core.errors import QuarantinedError, VerificationError
            from .runtime.policy import RetryPolicy
            from .runtime.supervisor import Supervisor

            supervisor = Supervisor(
                policy=RetryPolicy(max_attempts=retry + 1, base_backoff_s=0.01),
                ledger=run_recorder.ledger if run_recorder is not None else None,
            )
            try:
                srun = supervisor.submit(
                    program,
                    db,
                    workload=label,
                    spec=label,
                    limits=limits,
                    checkpoint_path=checkpoint,
                    resume=resume,
                    engine=engine,
                    verify=verify,
                    recorder=run_recorder,
                    optimizer=optimizer_manifest,
                )
            except QuarantinedError as err:
                print(f"quarantined: {err}")
                return 1
            attempts = len(srun.attempts)
            kills = [a.error for a in srun.attempts if a.error is not None]
            summary = {
                "workload": label,
                "engine": srun.engine,
                "attempts": attempts,
                "kills": kills,
                "finished": srun.ok,
                "supervisor": srun.history(),
            }
            if run_recorder is not None:
                summary["run_id"] = srun.run_id
                summary["ledger"] = ledger_dir
            if not srun.ok:
                if recorder is not None:
                    recorder.note_supervisor(srun.history())
                    try:
                        bundle_path = str(recorder.dump(error=srun.error))
                    except OSError:
                        bundle_path = None
                    if bundle_path is not None:
                        summary["postmortem"] = bundle_path
                if json_out:
                    print(json.dumps(summary, indent=2))
                else:
                    print(
                        f"failed after {attempts} attempt(s): {srun.error}"
                    )
                    if isinstance(srun.error, VerificationError):
                        print("verify: MISMATCH against ungoverned run")
                    if bundle_path is not None:
                        print(f"postmortem bundle written to {bundle_path}")
                    if run_recorder is not None:
                        print(
                            f"run {srun.run_id} recorded in ledger {ledger_dir}"
                        )
                return 1
            result = srun.result
            summary["tables"] = len(result.tables)
            if verify:
                summary["identical_to_ungoverned_run"] = srun.verified
            if json_out:
                print(json.dumps(summary, indent=2))
            else:
                print(
                    f"{label}: finished after {attempts} attempt(s) "
                    f"({len(kills)} budget kill(s)); "
                    f"{summary['tables']} output table(s)"
                )
                if srun.degraded or srun.shed:
                    print(
                        f"supervisor: degraded to engine={srun.engine}"
                        + (f", shed {', '.join(srun.shed)}" if srun.shed else "")
                    )
                if run_recorder is not None:
                    print(f"run {srun.run_id} recorded in ledger {ledger_dir}")
                if verify:
                    print("verify: identical to ungoverned run")
            return 0
        while True:
            attempts += 1
            governor = ResourceGovernor(limits)
            try:
                result = run_hardened(
                    program,
                    db,
                    governor=governor,
                    checkpoint_path=checkpoint,
                    resume=resume or attempts > 1,
                    engine=engine,
                )
                break
            except (BudgetExceededError, CancelledError) as err:
                kills.append(str(err))
                if not json_out:
                    print(f"killed (attempt {attempts}): {err}")
                if recorder is not None:
                    # The run is over and it died contextually: dump the
                    # postmortem bundle (event tail, metrics, checkpoint
                    # pointer) before reporting the failure.
                    try:
                        bundle_path = str(recorder.dump(error=err))
                    except OSError:
                        bundle_path = None
                    if bundle_path is not None and not json_out:
                        print(f"postmortem bundle written to {bundle_path}")
                if run_recorder is not None:
                    run_recorder.finish(
                        workload=label, program=program, engine=engine,
                        error=err, limits=limits_info, attempts=attempts,
                        kills=kills, stats=stats, replay_spec=label,
                        optimizer=optimizer_manifest,
                    )
                    if not json_out:
                        print(
                            f"run {run_recorder.run_id} recorded in "
                            f"ledger {ledger_dir}"
                        )
                if json_out:
                    summary = {"workload": label, "attempts": attempts,
                               "kills": kills, "finished": False}
                    if bundle_path is not None:
                        summary["postmortem"] = bundle_path
                    if run_recorder is not None:
                        summary["run_id"] = run_recorder.run_id
                        summary["ledger"] = ledger_dir
                    print(json.dumps(summary, indent=2))
                return 1

    if run_recorder is not None:
        run_recorder.finish(
            workload=label, program=program, engine=engine,
            result_db=result, limits=limits_info, attempts=attempts,
            kills=kills, stats=stats, replay_spec=label,
            optimizer=optimizer_manifest,
        )
    identical = None
    if verify:
        identical = result == program.run(db)
    summary = {
        "workload": label,
        "engine": engine,
        "attempts": attempts,
        "kills": kills,
        "finished": True,
        "tables": len(result.tables),
        "governor": governor.snapshot(),
    }
    if identical is not None:
        summary["identical_to_ungoverned_run"] = identical
    if run_recorder is not None:
        summary["run_id"] = run_recorder.run_id
        summary["ledger"] = ledger_dir
    if json_out:
        print(json.dumps(summary, indent=2))
    else:
        print(
            f"{label}: finished after {attempts} attempt(s) "
            f"({len(kills)} budget kill(s)); {summary['tables']} output table(s)"
        )
        gov = summary["governor"]
        print(
            f"governor (final attempt): "
            f"{gov['ops_dispatched']} ops, {gov['rows_emitted']} rows, "
            f"{gov['cells_emitted']} cells in {gov['elapsed_s'] * 1000:.0f}ms"
        )
        if run_recorder is not None:
            print(f"run {run_recorder.run_id} recorded in ledger {ledger_dir}")
        if identical is not None:
            print(
                "verify: identical to ungoverned run"
                if identical
                else "verify: MISMATCH against ungoverned run"
            )
    return 0 if identical in (None, True) else 1


def _supervise(rest: list[str]) -> int:
    import json

    from .core.errors import QuarantinedError, ReproError
    from .runtime import Limits
    from .runtime.policy import BreakerPolicy, RetryPolicy
    from .runtime.supervisor import Supervisor
    from .runtime.workloads import parse_workload

    int_flags = {}
    for flag in ("--retry", "--seed", "--breaker-threshold", "--deadline",
                 "--backoff", "--attempt-deadline", "--total-deadline",
                 "--max-while"):
        value, err = _int_flag(rest, flag)
        if err is not None:
            print(f"error: {err}")
            return 2
        int_flags[flag] = value
    cooldown, err = _float_flag(rest, "--cooldown")
    if err is not None:
        print(f"error: {err}")
        return 2
    checkpoint = _flag_value(rest, "--checkpoint")
    engine = _flag_value(rest, "--engine") or "naive"
    faults_text = _flag_value(rest, "--faults")
    ledger_dir = _flag_value(rest, "--ledger")
    if engine not in ("naive", "vector"):
        print(f"error: invalid --engine {engine!r}; expected naive or vector")
        return 2
    retry = int_flags["--retry"]
    if retry is not None and retry < 0:
        print(f"error: --retry must be >= 0, got {retry}")
        return 2
    verify = "--verify" in rest
    json_out = "--json" in rest
    flag_values = set()
    for flag in ("--retry", "--seed", "--breaker-threshold", "--deadline",
                 "--backoff", "--attempt-deadline", "--total-deadline",
                 "--max-while", "--cooldown", "--checkpoint", "--engine",
                 "--faults", "--ledger"):
        value = _flag_value(rest, flag)
        if value is not None:
            flag_values.add(value)
    names = [a for a in rest if not a.startswith("-") and a not in flag_values]
    spec = names[0] if names else "tc"

    try:
        workload = parse_workload(spec)
    except ReproError as err:
        print(f"error: {err}")
        return 2
    if workload is None:
        name = _resolve_or_fail(spec)
        if name is None:
            return 2
        from .obs.examples import EXAMPLES

        example = EXAMPLES[name]
        if example.setup is None:
            print(
                f"error: example {name!r} is not a TA program over a tabular "
                "database; it cannot run under the hardened runtime"
            )
            return 2
        db, bound_run = example.setup()
        program = getattr(bound_run, "__self__", None)
        if program is None or not hasattr(program, "statements"):
            print(f"error: example {name!r} does not expose a TA program")
            return 2
        workload = (name, program, db)
    label, program, db = workload

    faults = None
    if faults_text is not None:
        from .runtime.faults import FaultPlan

        try:
            faults = FaultPlan.from_json(json.loads(faults_text))
        except (ValueError, ReproError) as err:
            print(f"error: invalid --faults payload: {err}")
            return 2

    deadline_ms = int_flags["--deadline"]
    limits = Limits(
        deadline_s=deadline_ms / 1000.0 if deadline_ms is not None else None,
        max_while_iterations=int_flags["--max-while"],
    )
    try:
        policy = RetryPolicy(
            max_attempts=(retry + 1) if retry is not None else 3,
            base_backoff_s=(
                int_flags["--backoff"] / 1000.0
                if int_flags["--backoff"] is not None
                else 0.01
            ),
            seed=int_flags["--seed"] or 0,
            attempt_deadline_s=(
                int_flags["--attempt-deadline"] / 1000.0
                if int_flags["--attempt-deadline"] is not None
                else None
            ),
            total_deadline_s=(
                int_flags["--total-deadline"] / 1000.0
                if int_flags["--total-deadline"] is not None
                else None
            ),
        )
        breaker_policy = BreakerPolicy(
            failure_threshold=int_flags["--breaker-threshold"] or 3,
            cooldown_s=cooldown if cooldown is not None else 30.0,
        )
    except ReproError as err:
        print(f"error: {err}")
        return 2

    ledger = None
    if ledger_dir is not None:
        from .core.errors import LedgerError
        from .obs.ledger import RunLedger

        try:
            ledger = RunLedger(ledger_dir)
        except LedgerError as err:
            print(f"error: {err}")
            return 3

    supervisor = Supervisor(
        policy=policy, breaker_policy=breaker_policy, ledger=ledger
    )
    try:
        srun = supervisor.submit(
            program,
            db,
            workload=label,
            spec=label,
            limits=limits,
            faults=faults,
            checkpoint_path=checkpoint,
            engine=engine,
            verify=verify,
        )
    except QuarantinedError as err:
        if json_out:
            print(json.dumps(
                {"workload": label, "outcome": "quarantined", "error": str(err)},
                indent=2,
            ))
        else:
            print(f"quarantined: {err}")
        return 1
    if json_out:
        print(json.dumps(srun.history(), indent=2))
    else:
        print(
            f"{label}: {srun.outcome} after {len(srun.attempts)} attempt(s) "
            f"on engine {srun.engine}"
            + (" [degraded]" if srun.degraded else "")
            + (f" [shed {', '.join(srun.shed)}]" if srun.shed else "")
        )
        for record in srun.attempts:
            verdict = record.decision or "ok"
            detail = f" {record.error_type}: {record.error}" if record.error else ""
            print(
                f"  attempt {record.attempt} [{record.engine}"
                + (", resumed" if record.resumed else "")
                + f"] -> {verdict}{detail}"
            )
        if srun.error is not None:
            print(f"terminal error: {srun.error}")
        if verify and srun.ok:
            print("verify: identical to ungoverned run")
        if ledger is not None:
            print(f"run {srun.run_id} recorded in ledger {ledger_dir}")
    return 0 if srun.ok else 1


def _recover(rest: list[str]) -> int:
    import json

    from .runtime.policy import RetryPolicy
    from .runtime.supervisor import Supervisor

    retry, err = _int_flag(rest, "--retry")
    if err is not None:
        print(f"error: {err}")
        return 2
    ledger_dir = _flag_value(rest, "--ledger") or "ledger"
    verify = "--verify" in rest
    json_out = "--json" in rest
    ledger = _open_ledger(ledger_dir)
    if ledger is None:
        return 3
    supervisor = Supervisor(
        policy=RetryPolicy(
            max_attempts=(retry + 1) if retry is not None else 3,
            base_backoff_s=0.01,
        ),
        ledger=ledger,
    )
    report = supervisor.recover(verify=verify)
    if json_out:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _chaos(rest: list[str]) -> int:
    import json

    from .core.errors import ReproError
    from .obs.examples import ExampleLookupError
    from .runtime.chaos import run_chaos_matrix, render_chaos_report

    seed, err = _int_flag(rest, "--seed")
    if err is not None:
        print(f"error: {err}")
        return 2
    if "--supervisor" in rest:
        from .runtime.chaos import (
            render_supervisor_report,
            run_supervisor_matrix,
        )

        report = run_supervisor_matrix(seed=seed if seed is not None else 0)
        if "--json" in rest:
            print(json.dumps(
                {
                    "seed": report.seed,
                    "ok": report.ok,
                    "points": [
                        {
                            "cell": p.cell,
                            "error_class": p.error_class,
                            "policy": p.policy,
                            "engine": p.engine,
                            "expected": p.expected,
                            "observed": p.observed,
                            "error_type": p.error_type,
                            "identical": p.identical,
                            "ok": p.ok,
                        }
                        for p in report.points
                    ],
                },
                indent=2,
            ))
        else:
            print(render_supervisor_report(report))
        return 0 if report.ok else 1
    kinds_text = _flag_value(rest, "--kinds")
    kinds = None
    if kinds_text is not None:
        kinds = tuple(k.strip() for k in kinds_text.split(",") if k.strip())
        unknown = [k for k in kinds if k not in ("raise", "delay", "corrupt")]
        if unknown:
            print(f"error: unknown fault kind(s) {unknown}; expected raise/delay/corrupt")
            return 2
    json_out = "--json" in rest
    flag_values = {v for v in (_flag_value(rest, "--seed"), kinds_text) if v is not None}
    names = [a for a in rest if not a.startswith("-") and a not in flag_values]
    try:
        report = run_chaos_matrix(
            names or None, kinds=kinds, seed=seed if seed is not None else 0
        )
    except (ExampleLookupError, ReproError) as err:
        print(f"error: {err.args[0] if err.args else err}")
        _list_examples()
        return 2
    if json_out:
        print(json.dumps(
            {
                "seed": report.seed,
                "ok": report.ok,
                "points": [
                    {
                        "example": p.example,
                        "op": p.op,
                        "kind": p.kind,
                        "error_type": p.error_type,
                        "typed": p.typed,
                        "context_ok": p.context_ok,
                        "atomic": p.atomic,
                        "ok": p.ok,
                    }
                    for p in report.points
                ],
            },
            indent=2,
        ))
    else:
        print(render_chaos_report(report))
    return 0 if report.ok else 1


def _bench_compare(rest: list[str]) -> int:
    import json
    from pathlib import Path

    from .obs.regress import compare_trajectories, render_comparison

    tolerance_text = _flag_value(rest, "--tolerance")
    paths = [
        a
        for a in rest
        if not a.startswith("-") and a != tolerance_text
    ]
    if len(paths) != 2:
        print("usage: repro bench-compare <baseline.json> <current.json> [--tolerance X]")
        return 2
    try:
        tolerance = float(tolerance_text) if tolerance_text else 1.5
    except ValueError:
        print(f"invalid tolerance {tolerance_text!r}")
        return 2
    # A missing or unparseable trajectory must not silently compare as
    # empty (the gate would pass with nothing checked): exit status 3,
    # distinct from 1 (regression found) and 2 (usage error), so CI can
    # tell "the perf gate failed" from "the perf gate never ran".
    for role, path in zip(("baseline", "current"), paths):
        try:
            data = json.loads(Path(path).read_text())
        except OSError as err:
            print(f"error: cannot read {role} trajectory {path}: {err}")
            return 3
        except ValueError as err:
            print(f"error: {role} trajectory {path} is not valid JSON: {err}")
            return 3
        if not isinstance(data, dict) or not isinstance(data.get("benchmarks"), dict):
            print(
                f"error: {role} trajectory {path} is malformed "
                '(expected {"format": ..., "benchmarks": {...}})'
            )
            return 3
    comparison = compare_trajectories(paths[0], paths[1], tolerance=tolerance)
    print(render_comparison(comparison))
    return 0 if comparison.ok else 1


def _stats(rest: list[str]) -> int:
    import json

    from .core import render_table
    from .obs import counters_table, metrics_table, observation
    from .obs.examples import EXAMPLES, run_example

    with observation(trace=False) as obs:
        for example in EXAMPLES.values():
            run_example(example.name)
    if "--json" in rest:
        print(json.dumps(obs.metrics.snapshot(), indent=2))
        return 0
    print(f"aggregated metrics over {len(EXAMPLES)} bundled pipelines")
    print()
    ops = metrics_table(obs.metrics)
    if ops is not None:
        print(render_table(ops, title="Operation metrics"))
        print()
    counters = counters_table(obs.metrics)
    if counters is not None:
        print(render_table(counters, title="Counters"))
    return 0


def _analyze_target(rest: list[str], flag_values: set) -> tuple[str, object] | None:
    """``(label, database)`` for the workload/example named in ``rest``."""
    from .core.errors import ReproError
    from .runtime.workloads import parse_workload

    names = [a for a in rest if not a.startswith("-") and a not in flag_values]
    spec = names[0] if names else "tc:8"
    try:
        workload = parse_workload(spec)
    except ReproError as err:
        print(f"error: {err}")
        return None
    if workload is not None:
        label, _program, db = workload
        return label, db
    name = _resolve_or_fail(spec)
    if name is None:
        return None
    from .obs.examples import EXAMPLES

    example = EXAMPLES[name]
    if example.setup is None:
        print(
            f"error: example {name!r} has no tabular database to ANALYZE "
            "(its pipeline is not a TA program)"
        )
        return None
    db, _run = example.setup()
    return name, db


def _analyze(rest: list[str]) -> int:
    import json

    from .core.errors import StatsError
    from .obs.stats import DEFAULT_TOP_K, analyze_database

    engine = _flag_value(rest, "--engine") or "vector"
    if engine not in ("naive", "vector"):
        print(f"error: invalid --engine {engine!r}; expected naive or vector")
        return 2
    top_k, err = _int_flag(rest, "--top-k")
    if err is not None:
        print(f"error: {err}")
        return 2
    out_path = _flag_value(rest, "--out")
    json_out = "--json" in rest
    flag_values = {
        v
        for v in (_flag_value(rest, "--engine"), _flag_value(rest, "--top-k"), out_path)
        if v is not None
    }
    target = _analyze_target(rest, flag_values)
    if target is None:
        return 2
    label, db = target
    try:
        stats = analyze_database(
            db, engine=engine, top_k=top_k if top_k is not None else DEFAULT_TOP_K
        )
    except StatsError as err:
        print(f"error: {err}")
        return 2
    written = None
    if out_path is not None:
        written = stats.save(out_path)
    if json_out:
        print(json.dumps(stats.to_json(), indent=2))
        return 0
    print(
        f"ANALYZE of {label} ({stats.engine} engine, top-{stats.top_k} sketches)"
    )
    print(
        f"fingerprint {stats.fingerprint}  "
        f"{len(stats.tables)} table(s), {stats.total_rows} data row(s)"
    )
    for table in stats.tables:
        print(
            f"  {table.name}: {table.height} rows x {table.width} cols, "
            f"{table.distinct_rows} distinct"
        )
        for column in table.columns:
            top = ", ".join(f"{s}:{c}" for s, c in column.top[:3])
            print(
                f"    {column.attribute}: ndv {column.ndv}, "
                f"nulls {column.nulls}, min {column.min}, max {column.max}"
                + (f", top [{top}]" if top else "")
            )
    if written is not None:
        print(f"snapshot written to {written}")
    return 0


def _stats_audit(rest: list[str]) -> int:
    import json
    from pathlib import Path

    from .obs.workload import DEFAULT_AUDIT_SEEDS, stats_audit

    seeds, err = _int_flag(rest, "--seeds")
    errors = [err]
    tc_size, err = _int_flag(rest, "--tc")
    errors.append(err)
    for message in errors:
        if message is not None:
            print(f"error: {message}")
            return 2
    engine = _flag_value(rest, "--engine") or "vector"
    if engine not in ("naive", "vector"):
        print(f"error: invalid --engine {engine!r}; expected naive or vector")
        return 2
    out_path = _flag_value(rest, "--out")
    json_out = "--json" in rest

    report = stats_audit(
        seeds=seeds if seeds is not None else DEFAULT_AUDIT_SEEDS,
        engine=engine,
        tc_size=tc_size if tc_size is not None else 6,
    )
    if out_path is not None:
        target = Path(out_path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(report, indent=2) + "\n")
    if json_out:
        print(json.dumps(report, indent=2))
    else:
        corpus = report["corpus"]
        print(
            f"stats audit: {corpus['cases']} case(s) "
            f"({corpus['fuzz_seeds']} fuzz seed(s), {corpus['errors']} "
            f"raised), {report['overall']['estimates']} estimate(s) scored "
            f"in {corpus['elapsed_s']}s on the {report['engine']} engine"
        )
        print()
        width = max((len(op) for op in report["ops"]), default=2)
        print(f"{'op':{width}}  {'n':>5}  {'p50':>6}  {'p95':>6}  {'max':>8}  sources")
        for op, record in report["ops"].items():
            sources = " ".join(
                f"{source}={count}" for source, count in sorted(record["sources"].items())
            )
            print(
                f"{op:{width}}  {record['count']:>5}  {record['p50']:>6}  "
                f"{record['p95']:>6}  {record['max']:>8}  {sources}"
            )
        overall = report["overall"]
        print()
        print(
            f"overall q-error: p50 {overall['p50']}, p95 {overall['p95']}, "
            f"max {overall['max']}"
        )
        coverage = report["coverage"]
        if coverage["complete"]:
            print(
                f"coverage: complete — every dispatched op kind "
                f"({len(coverage['dispatched_ops'])}) was scored"
            )
        else:
            print(f"coverage: INCOMPLETE — never scored: {coverage['missing']}")
        optimizer = report["optimizer"]
        print(
            f"optimizer pass: {optimizer['cases']} case(s) rescored "
            f"post-rewrite ({optimizer['rewrites']} rewrite(s)), "
            f"{optimizer['estimates']} estimate(s): p50 {optimizer['p50']}, "
            f"p95 {optimizer['p95']}, max {optimizer['max']}"
        )
        if optimizer["regressed"]:
            print(
                f"optimizer REGRESSION: post-rewrite p95 {optimizer['p95']} "
                f"> baseline {optimizer['baseline_p95']} x "
                f"{optimizer['tolerance']}"
            )
        if out_path is not None:
            print(f"report written to {out_path}")
    if report["optimizer"]["regressed"]:
        return 1
    return 0 if report["coverage"]["complete"] else 1


def _optimize_target(rest: list[str], flag_values: set) -> tuple | None:
    """Resolve the optimize command's target to ``(label, program, db)``."""
    from .core.errors import ReproError
    from .runtime.workloads import parse_workload

    names = [a for a in rest if not a.startswith("-") and a not in flag_values]
    spec = names[0] if names else "chain"
    try:
        workload = parse_workload(spec)
    except ReproError as err:
        print(f"error: {err}")
        return None
    if workload is not None:
        return workload
    name = _resolve_or_fail(spec)
    if name is None:
        return None
    from .obs.examples import EXAMPLES

    example = EXAMPLES[name]
    if example.setup is None:
        print(
            f"error: example {name!r} is not a TA program over a tabular "
            "database; it cannot be optimized"
        )
        return None
    db, bound_run = example.setup()
    program = getattr(bound_run, "__self__", None)
    if program is None or not hasattr(program, "statements"):
        print(f"error: example {name!r} does not expose a TA program")
        return None
    return name, program, db


def _optimize(rest: list[str]) -> int:
    import json

    from .core.errors import StatsError
    from .engine.optimizer import PLAN_CACHE, RULE_ORDER, RULES, optimize_program

    json_out = "--json" in rest
    analyze = "--analyze" in rest
    explain = "--explain" in rest
    verify = "--verify" in rest
    no_cache = "--no-cache" in rest
    stats_path = _flag_value(rest, "--stats")
    rules_text = _flag_value(rest, "--rules")
    flag_values = {v for v in (stats_path, rules_text) if v is not None}
    target = _optimize_target(rest, flag_values)
    if target is None:
        return 2
    label, program, db = target

    rules = None
    if rules_text is not None:
        rules = [r.strip() for r in rules_text.split(",") if r.strip()]
        unknown = sorted(set(rules) - set(RULES))
        if unknown:
            print(
                f"error: unknown rule(s) {', '.join(unknown)}; "
                f"known: {', '.join(RULE_ORDER)}"
            )
            return 2
    stats = None
    if stats_path is not None:
        from .obs.stats import load_stats

        try:
            stats = load_stats(stats_path)
        except StatsError as err:
            print(f"error: {err}")
            return 2
    elif analyze:
        from .obs.stats import analyze_database

        stats = analyze_database(db)

    result = optimize_program(
        program, stats, rules=rules, cache=None if no_cache else PLAN_CACHE
    )

    identical = None
    if verify:
        identical = program.run(db) == result.program.run(db)

    explain_text = None
    if explain:
        from .obs import observation
        from .obs.estimator import estimation

        with observation() as obs:
            if stats is not None:
                with estimation(stats):
                    result.program.run(db)
            else:
                result.program.run(db)
        explain_text = obs.explain()

    if json_out:
        data = result.to_json()
        data["workload"] = label
        data["stats"] = "analyze" if analyze else (stats_path or None)
        if identical is not None:
            data["identical"] = identical
        print(json.dumps(data, indent=2))
        return 0 if identical in (None, True) else 1

    stats_note = (
        f"stats {result.stats_fingerprint}" if stats is not None else "no stats"
    )
    print(f"plan for {label}  (fingerprint {result.fingerprint}, {stats_note})")
    if result.cache_hit:
        print("plan cache: hit (planning skipped)")
    print()
    print("before:")
    for i, statement in enumerate(result.source.statements, start=1):
        print(f"  {i:>2}. {statement!r}")
    print("after:")
    for i, statement in enumerate(result.program.statements, start=1):
        print(f"  {i:>2}. {statement!r}")
    print()
    if result.applied:
        print(f"applied rewrites ({len(result.applied)}):")
        for rewrite in result.applied:
            print(f"  - {rewrite.rule}: {rewrite.detail}")
            print(f"      justified by: {rewrite.justification}")
    else:
        print("applied rewrites: none (program already normal)")
    if result.decisions:
        print("ordering decisions:")
        for decision in result.decisions:
            order = ", ".join(decision.leaves[i] for i in decision.order)
            extra = (
                f"  est_rows={decision.est_rows}"
                if decision.est_rows is not None
                else ""
            )
            print(
                f"  - {decision.target}: {decision.outcome} "
                f"[{order}] — {decision.reason}{extra}"
            )
    if explain_text is not None:
        print()
        print(explain_text)
    if identical is not None:
        print()
        print(
            "verify: optimized plan produced the identical database"
            if identical
            else "verify: MISMATCH between original and optimized plan"
        )
    return 0 if identical in (None, True) else 1


def _metrics(rest: list[str]) -> int:
    import json

    from .obs import observation, prometheus_text

    stats_path = _flag_value(rest, "--stats")
    estimates = "--estimates" in rest
    stats = None
    if stats_path is not None:
        from .core.errors import StatsError
        from .obs.stats import load_stats

        try:
            stats = load_stats(stats_path)
        except StatsError as err:
            print(f"error: {err}")
            return 2
    accuracy = None
    from .obs.events import event_stream

    # The corpus runs under a live bus with one small ring attached, so
    # the export carries real publish/receive/drop counts — a scrape can
    # alert on ring truncation instead of discovering it in a postmortem.
    with event_stream() as bus, observation(trace=False) as obs:
        bus.ring(capacity=256)
        from .obs.examples import EXAMPLES, run_example

        if estimates:
            # Rerun the corpus under estimation: each example's database
            # is ANALYZEd first so the estimator families carry real
            # stats-sourced q-errors, not just shape fallbacks.
            from .obs.estimator import EstimateAccuracy, estimation
            from .obs.stats import analyze_database

            accuracy = EstimateAccuracy()
            for example in EXAMPLES.values():
                if example.setup is None:
                    run_example(example.name)
                    continue
                db, run = example.setup()
                with estimation(analyze_database(db), accuracy=accuracy):
                    run(db)
        else:
            for example in EXAMPLES.values():
                run_example(example.name)
    supervisor = None
    if "--supervisor" in rest:
        # A small deterministic supervised demo so the fault-tolerance
        # families export non-zero: one retried fault, one poison
        # workload tripping the breaker, one quarantined submission.
        from .core.errors import QuarantinedError
        from .runtime.faults import FaultPlan, FaultRule
        from .runtime.policy import BreakerPolicy, RetryPolicy
        from .runtime.supervisor import Supervisor
        from .runtime.workloads import transitive_closure_workload

        program, db = transitive_closure_workload(6)
        supervisor = Supervisor(
            policy=RetryPolicy(max_attempts=2, base_backoff_s=0.001),
            breaker_policy=BreakerPolicy(failure_threshold=2, cooldown_s=3600.0),
        )
        supervisor.submit(
            program, db, workload="tc:6",
            faults=FaultPlan([FaultRule(op="DIFFERENCE", kind="raise")]),
        )
        for _ in range(2):
            # Poison: one rule per attempt, so every attempt dies at its
            # first op and the submission fails terminally.
            supervisor.submit(
                program, db, workload="tc:6",
                faults=FaultPlan([
                    FaultRule(op="*", kind="raise", occurrence=1),
                    FaultRule(op="*", kind="raise", occurrence=2),
                ]),
            )
        try:
            supervisor.submit(program, db, workload="tc:6")
        except QuarantinedError:
            pass
    optimizer = None
    if "--optimizer" in rest:
        # A small deterministic optimizer demo so the plan-optimizer
        # families export non-zero: one cold plan (miss + rewrites +
        # a stats-driven reorder), one warm repeat (hit), and one
        # stats-free plan (a stats-missing ordering outcome).
        from .engine.optimizer import OPTIMIZER_STATS, PlanCache, optimize_program
        from .obs.stats import analyze_database
        from .runtime.workloads import chain_join_workload

        OPTIMIZER_STATS.reset()
        program, db = chain_join_workload(4)
        chain_stats = analyze_database(db)
        cache = PlanCache()
        optimize_program(program, chain_stats, cache=cache)
        optimize_program(program, chain_stats, cache=cache)
        optimize_program(program, None, cache=cache)
        optimizer = OPTIMIZER_STATS
    if "--prom" in rest:
        sys.stdout.write(
            prometheus_text(
                obs.metrics, accuracy=accuracy, stats=stats, bus=bus,
                supervisor=supervisor, optimizer=optimizer,
            )
        )
        return 0
    snapshot = obs.metrics.snapshot()
    snapshot["events"] = {
        "published": bus.published,
        "callback_errors": bus.callback_errors,
        **bus.ring_totals(),
    }
    if optimizer is not None:
        snapshot["optimizer"] = optimizer.snapshot()
    print(json.dumps(snapshot, indent=2))
    return 0


def _prom_lint(rest: list[str]) -> int:
    from pathlib import Path

    from .obs import lint_prometheus_text

    paths = [a for a in rest if not a.startswith("-")]
    if paths:
        try:
            text = Path(paths[0]).read_text()
        except OSError as err:
            print(f"error: cannot read {paths[0]}: {err}")
            return 2
    else:
        text = sys.stdin.read()
    errors = lint_prometheus_text(text)
    if errors:
        for message in errors:
            print(f"prom-lint: {message}")
        print(f"{len(errors)} problem(s) in the exposition payload")
        return 1
    samples = sum(
        1 for line in text.splitlines() if line.strip() and not line.startswith("#")
    )
    print(f"ok: {samples} sample(s), no format problems")
    return 0


def _engine_report(rest: list[str]) -> int:
    import json

    from .core.errors import ReproError
    from .engine.report import fallback_report, report_text
    from .engine.runtime import VectorEngine, engine_scope
    from .obs.examples import EXAMPLES
    from .runtime.workloads import parse_workload

    json_out = "--json" in rest
    specs = [a for a in rest if not a.startswith("-")] or None

    backend = VectorEngine()
    corpus: list[str] = []
    if specs is None:
        # Default corpus: every TA-program example plus the synthetic
        # transitive-closure fixpoint (while loop + kernel-heavy body).
        for name, example in EXAMPLES.items():
            if example.setup is None:
                continue
            db, run = example.setup()
            with engine_scope(backend):
                run(db)
            corpus.append(name)
        _label, program, db = parse_workload("tc:8")
        with engine_scope(backend):
            program.run(db)
        corpus.append("tc:8")
    else:
        for spec in specs:
            try:
                workload = parse_workload(spec)
            except ReproError as err:
                print(f"error: {err}")
                return 2
            if workload is not None:
                label, program, db = workload
                with engine_scope(backend):
                    program.run(db)
                corpus.append(label)
                continue
            name = _resolve_or_fail(spec)
            if name is None:
                return 2
            example = EXAMPLES[name]
            if example.setup is None:
                print(f"error: example {name!r} is not a TA program; cannot report")
                return 2
            db, run = example.setup()
            with engine_scope(backend):
                run(db)
            corpus.append(name)

    report = fallback_report(backend.stats)
    report["corpus"] = corpus
    if json_out:
        print(json.dumps(report, indent=2))
    else:
        print(f"corpus: {', '.join(corpus)}")
        print()
        print(report_text(report))
    # Full attribution is the contract: every naive fallback must carry a
    # machine-readable reason.
    return 0 if report["coverage"] == 1.0 else 1


def _float_flag(rest: list[str], flag: str) -> tuple[float | None, str | None]:
    """``(value, error)`` for a float-valued flag."""
    text = _flag_value(rest, flag)
    if text is None:
        return None, None
    try:
        return float(text), None
    except ValueError:
        return None, f"invalid {flag} {text!r}; expected a number"


def _open_ledger(path: str):
    """An existing ledger directory opened read-side, or None (exit 3).

    ``history``/``replay``/``sentinel`` read ledgers; a directory that
    was never written is a missing input, not an empty result set, so
    the caller must distinguish it from "no runs matched".
    """
    from pathlib import Path

    from .core.errors import LedgerError
    from .obs.ledger import RunLedger

    if not (Path(path) / "LEDGER.json").exists():
        print(
            f"error: no ledger at {path} "
            f"(record one with: repro run tc:6 --ledger {path})"
        )
        return None
    try:
        return RunLedger(path)
    except LedgerError as err:
        print(f"error: {err}")
        return None


def _history(rest: list[str]) -> int:
    import json

    from .core.errors import LedgerError

    ledger_dir = _flag_value(rest, "--ledger") or "ledger"
    fingerprint = _flag_value(rest, "--fingerprint")
    workload = _flag_value(rest, "--workload")
    outcome = _flag_value(rest, "--outcome")
    limit, err = _int_flag(rest, "--limit")
    if err is not None:
        print(f"error: {err}")
        return 2
    json_out = "--json" in rest
    aggregates = "--aggregates" in rest
    flag_values = {
        v
        for v in (
            _flag_value(rest, "--ledger"), fingerprint, workload, outcome,
            _flag_value(rest, "--limit"),
        )
        if v is not None
    }
    names = [a for a in rest if not a.startswith("-") and a not in flag_values]
    ledger = _open_ledger(ledger_dir)
    if ledger is None:
        return 3

    if names:
        # Inspect one run: the full manifest, always as JSON (it *is*
        # the on-disk record).
        try:
            manifest = ledger.get(names[0])
        except LedgerError as err:
            print(f"error: {err}")
            return 3
        print(json.dumps(manifest, indent=2))
        return 0

    if aggregates:
        data = ledger.aggregates()
        if json_out:
            print(json.dumps(data, indent=2))
            return 0
        print(f"ledger {ledger_dir}: {len(ledger)} run(s), "
              f"{len(data)} fingerprint(s)")
        for record in data:
            latency = record["latency_ms"]
            q = record["q_error_mean"]
            print(
                f"  {record['fingerprint']}  {record['runs']:>4} run(s)  "
                f"p50 {latency['p50']}ms p95 {latency['p95']}ms  "
                f"q-mean {q if q is not None else '-'}  "
                f"fallback {record['fallback_rate']}  "
                f"[{','.join(record['workloads'][:3])}]"
            )
        return 0

    rows = ledger.runs(
        fingerprint=fingerprint, workload=workload, outcome=outcome, limit=limit
    )
    if json_out:
        print(json.dumps(rows, indent=2))
        return 0
    print(f"ledger {ledger_dir}: {len(rows)} run(s) listed, {len(ledger)} total")
    if ledger.warnings:
        for message in ledger.warnings:
            print(f"  recovery: {message}")
    for row in rows:
        q_max = row.get("q_max")
        dropped = row.get("dropped_events") or 0
        print(
            f"  {row['run_id']}  {row.get('workload'):>12}  "
            f"{row.get('engine') or '-':>6}  {row.get('outcome'):>6}  "
            f"{row.get('elapsed_ms')}ms  {row.get('ops')} op(s)  "
            f"{row.get('fallbacks')} fallback(s)"
            + (f"  q-max {q_max}" if q_max is not None else "")
            + (f"  {dropped} dropped event(s)" if dropped else "")
        )
    return 0


def _replay(rest: list[str]) -> int:
    import json
    from pathlib import Path

    from .core.errors import LedgerError

    ledger_flag = _flag_value(rest, "--ledger")
    engine = _flag_value(rest, "--engine")
    if engine is not None and engine not in ("naive", "vector"):
        print(f"error: invalid --engine {engine!r}; expected naive or vector")
        return 2
    inject_seed, err = _int_flag(rest, "--inject-fault")
    if err is not None:
        print(f"error: {err}")
        return 2
    json_out = "--json" in rest
    flag_values = {
        v
        for v in (ledger_flag, engine, _flag_value(rest, "--inject-fault"))
        if v is not None
    }
    names = [a for a in rest if not a.startswith("-") and a not in flag_values]
    if not names:
        print("usage: repro replay <run-id | bundle-dir> [--ledger DIR] "
              "[--engine naive|vector] [--inject-fault SEED] [--json]")
        return 2

    from .obs.replay import bundle_run_pointer, replay_from_ledger

    target = names[0]
    run_id = target
    ledger_dir = ledger_flag or "ledger"
    if Path(target).is_dir() and (Path(target) / "MANIFEST.json").exists():
        # A flight-recorder bundle: follow its run pointer back to the
        # ledger the run was journaled in.
        try:
            run_id, pointed = bundle_run_pointer(target)
        except LedgerError as err:
            print(f"error: {err}")
            return 3
        if ledger_flag is None:
            ledger_dir = pointed
    ledger = _open_ledger(ledger_dir)
    if ledger is None:
        return 3

    faults = None
    if inject_seed is not None:
        # Deliberate divergence: a seeded corrupt fault makes the replay
        # raise a typed error where the recording finished, proving the
        # detector (and its nonzero exit) live.
        from .runtime.faults import FaultPlan, FaultRule

        faults = FaultPlan([FaultRule(op="*", kind="corrupt")], seed=inject_seed)
    try:
        report = replay_from_ledger(ledger, run_id, faults=faults, engine=engine)
    except LedgerError as err:
        print(f"error: {err}")
        return 3
    if json_out:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _sentinel(rest: list[str]) -> int:
    import json

    from .obs.sentinel import DEFAULT_MIN_RUNS, DEFAULT_WINDOW, sentinel_report

    ledger_dir = _flag_value(rest, "--ledger") or "ledger"
    window, err = _int_flag(rest, "--window")
    errors = [err]
    min_runs, err = _int_flag(rest, "--min-runs")
    errors.append(err)
    latency_factor, err = _float_flag(rest, "--latency-factor")
    errors.append(err)
    qerror_factor, err = _float_flag(rest, "--qerror-factor")
    errors.append(err)
    fallback_jump, err = _float_flag(rest, "--fallback-jump")
    errors.append(err)
    for message in errors:
        if message is not None:
            print(f"error: {message}")
            return 2
    json_out = "--json" in rest
    ledger = _open_ledger(ledger_dir)
    if ledger is None:
        return 3
    report = sentinel_report(
        ledger,
        window=window if window is not None else DEFAULT_WINDOW,
        min_runs=min_runs if min_runs is not None else DEFAULT_MIN_RUNS,
        latency_factor=latency_factor if latency_factor is not None else 2.0,
        qerror_factor=qerror_factor if qerror_factor is not None else 2.0,
        fallback_jump=fallback_jump if fallback_jump is not None else 0.25,
    )
    if json_out:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render())
    if not report.ok:
        return 4
    if report.judged == 0:
        # "Never measured" must not read as "healthy" in CI.
        return 3
    return 0


#: Declarative dispatch: command name -> (handler, one-line help).
#: Every handler takes the argument list after the command name and
#: returns the process exit status.
COMMANDS: dict = {
    "check": (_check, "fast self-check of the headline reproductions"),
    "figures": (_figures, "print every Figure 1-5 artifact with exactness checks"),
    "demo": (_demo, "the quickstart walkthrough"),
    "trace": (_trace, "run a bundled pipeline under the tracer; print EXPLAIN"),
    "profile": (_profile, "hotspots, wall-time histograms, per-span peak memory"),
    "lineage": (_lineage, "cell-level why-provenance queries and witness replay"),
    "stats": (_stats, "aggregated per-operation metrics over every example"),
    "analyze": (_analyze, "per-table/column statistics; persist an ANALYZE snapshot"),
    "stats-audit": (_stats_audit, "score every cardinality estimate (q-error audit)"),
    "optimize": (_optimize, "cost-based plan optimizer: dump before/after plans"),
    "metrics": (_metrics, "metrics snapshot as JSON or Prometheus text"),
    "prom-lint": (_prom_lint, "validate a Prometheus text payload"),
    "engine-report": (_engine_report, "vector-engine kernel/fallback attribution"),
    "bench-compare": (_bench_compare, "diff two benchmark trajectories (perf gate)"),
    "run": (_run, "run a workload under the governor with checkpoint/resume"),
    "supervise": (_supervise, "run a workload under the fault-tolerant supervisor"),
    "recover": (_recover, "resume or orphan crashed runs found in the ledger"),
    "chaos": (_chaos, "fault-injection matrix over the bundled pipelines"),
    "history": (_history, "list/inspect ledgered runs and per-shape aggregates"),
    "replay": (_replay, "re-execute a ledgered run and diff it bit for bit"),
    "sentinel": (_sentinel, "cross-run drift detection over the ledger"),
}

#: Exit-status vocabulary shared by every subcommand.
EXIT_CODES = (
    (0, "success: checks hold / replay identical / no drift"),
    (1, "failure: a check failed, a run died or diverged, a gate tripped"),
    (2, "usage: unknown command, bad flag, unknown example or workload"),
    (3, "missing input: file, ledger, run, or bundle absent or unusable"),
    (4, "drift: the sentinel flagged a cross-run regression"),
)


def _usage() -> str:
    lines = ["usage: python -m repro <command> [options]", "", "commands:"]
    width = max(len(name) for name in COMMANDS)
    for name, (_handler, help_text) in COMMANDS.items():
        lines.append(f"  {name:{width}}  {help_text}")
    lines.append("")
    lines.append("exit codes:")
    for code, meaning in EXIT_CODES:
        lines.append(f"  {code}  {meaning}")
    lines.append("")
    lines.append(
        "per-command flags are documented in the module docstring "
        "(python -m pydoc repro.__main__) and under docs/."
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("--help", "-h", "help"):
        print(_usage())
        return 0
    command, rest = args[0], args[1:]
    entry = COMMANDS.get(command)
    if entry is None:
        print(f"error: unknown command {command!r}")
        print()
        print(_usage())
        return 2
    return entry[0](rest)


if __name__ == "__main__":
    raise SystemExit(main())
