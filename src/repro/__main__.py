"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``figures`` — print every Figure 1–5 artifact, regenerated live, with
  the exactness checks;
* ``check``   — a fast self-check of the headline reproductions (exit
  status 0 iff everything holds);
* ``demo``    — the quickstart walkthrough;
* ``trace [example] [--json] [--analyze]`` — run a bundled pipeline
  under the tracer and print its EXPLAIN report (nested span tree,
  per-op wall time and row flow, metrics tables); ``--analyze`` adds
  the EXPLAIN ANALYZE comparison (estimated vs. actual rows/time with
  mis-estimation ratios); ``--json`` emits the same data as JSON;
* ``profile [example] [--chrome-trace PATH] [--log-json PATH]`` — run a
  bundled pipeline under the profiler and print hotspots (top ops by
  self time), wall-time histograms, and per-span peak memory; the flags
  export a Chrome-trace JSON (loadable in ``chrome://tracing`` /
  Perfetto) and a JSON-lines structured log;
* ``stats [--json]`` — run every bundled pipeline and print the
  aggregated per-operation metrics;
* ``bench-compare <baseline> <current> [--tolerance X]`` — diff two
  benchmark trajectory files (``BENCH_trajectory.json``); exit 1 when a
  shared benchmark label regressed beyond the tolerance (default 1.5x).
"""

from __future__ import annotations

import sys


def _figures() -> int:
    from .algebra import group, merge
    from .core import render_database, render_table
    from .data import (
        figure4_bottom,
        figure4_top,
        figure5_result,
        sales_info1,
        sales_info2,
        sales_info3,
        sales_info4,
    )

    print("=" * 72)
    print("Figure 1 — the four SalesInfo databases (bold parts)")
    print("=" * 72)
    for label, db in [
        ("SalesInfo1", sales_info1()),
        ("SalesInfo2", sales_info2()),
        ("SalesInfo3", sales_info3()),
        ("SalesInfo4", sales_info4()),
    ]:
        print()
        print(render_database(db, title=label))
    print()
    print("=" * 72)
    print("Figure 4 — Sales <- GROUP by Region on Sold (Sales)")
    print("=" * 72)
    grouped = group(figure4_top(), by="Region", on="Sold")
    print(render_table(grouped))
    print()
    print("reproduces the printed figure exactly:", grouped == figure4_bottom())
    print()
    print("=" * 72)
    print("Figure 5 — Sales <- MERGE on Sold by Region (Sales)")
    print("=" * 72)
    merged = merge(sales_info2().tables[0], on="Sold", by="Region")
    print(render_table(merged))
    print()
    print("reproduces the printed figure exactly:", merged == figure5_result())
    return 0


def _check() -> int:
    from .algebra import collapse_compact, group, group_compact, merge, merge_compact, split
    from .canonical import decode, encode
    from .data import (
        figure4_bottom,
        figure4_top,
        figure5_result,
        sales_info1,
        sales_info2,
        sales_info4,
    )

    checks = {
        "Figure 4 (GROUP, exact)": group(figure4_top(), by="Region", on="Sold")
        == figure4_bottom(),
        "Figure 5 (MERGE, exact)": merge(
            sales_info2().tables[0], on="Sold", by="Region"
        )
        == figure5_result(),
        "SalesInfo1 -> SalesInfo2": group_compact(
            figure4_top(), by="Region", on="Sold"
        ).equivalent(sales_info2().tables[0]),
        "SalesInfo2 -> SalesInfo1": merge_compact(
            sales_info2().tables[0], on="Sold", by="Region"
        ).equivalent(figure4_top()),
        "SalesInfo4 -> SalesInfo1": collapse_compact(
            sales_info4().tables, by="Region"
        ).equivalent(figure4_top()),
        "SalesInfo1 -> SalesInfo4": all(
            any(p.equivalent(t) for t in sales_info4().tables)
            for p in split(figure4_top(), on="Region")
        ),
        "canonical round trip": decode(encode(sales_info1())).equivalent(
            sales_info1()
        ),
    }
    failed = 0
    for label, ok in checks.items():
        print(f"{'ok  ' if ok else 'FAIL'}  {label}")
        failed += 0 if ok else 1
    print()
    print(f"{len(checks) - failed}/{len(checks)} reproductions hold")
    return 1 if failed else 0


def _demo() -> int:
    import runpy
    from pathlib import Path

    script = Path(__file__).resolve().parent.parent.parent / "examples" / "quickstart.py"
    if not script.exists():
        print("quickstart example not found (installed without examples/)")
        return 1
    runpy.run_path(str(script), run_name="__main__")
    return 0


def _list_examples() -> None:
    from .obs.examples import EXAMPLES

    for example in EXAMPLES.values():
        print(f"  {example.name:12}  {example.description}")


def _trace(rest: list[str]) -> int:
    import json

    from .obs.examples import EXAMPLES, resolve_example, trace_example

    json_out = "--json" in rest
    analyze = "--analyze" in rest
    names = [a for a in rest if not a.startswith("-")]
    name = resolve_example(names[0] if names else "fig4-group")
    if name is None:
        print(f"unknown example {names[0]!r}; bundled examples:")
        _list_examples()
        return 2
    obs, _result = trace_example(name)
    if json_out:
        data = obs.to_json()
        if analyze:
            from .obs.cost import analyze_records

            data["analyze"] = [
                {
                    k: (round(v, 6) if isinstance(v, float) else v)
                    for k, v in record.items()
                }
                for record in analyze_records(obs)
            ]
        print(json.dumps(data, indent=2))
        return 0
    print(f"trace of {name} — {EXAMPLES[name].description}")
    print()
    if analyze:
        from .obs.cost import explain_analyze_text

        print(explain_analyze_text(obs))
    else:
        print(obs.explain())
    return 0


def _flag_value(rest: list[str], flag: str) -> str | None:
    if flag in rest:
        index = rest.index(flag)
        if index + 1 < len(rest):
            return rest[index + 1]
    return None


def _profile(rest: list[str]) -> int:
    import json

    from .obs.examples import EXAMPLES, profile_example, resolve_example
    from .obs.export import write_chrome_trace, write_jsonl

    chrome_path = _flag_value(rest, "--chrome-trace")
    jsonl_path = _flag_value(rest, "--log-json")
    flag_values = {v for v in (chrome_path, jsonl_path) if v is not None}
    json_out = "--json" in rest
    memory = "--no-memory" not in rest
    names = [a for a in rest if not a.startswith("-") and a not in flag_values]
    name = resolve_example(names[0] if names else "fig4-group")
    if name is None:
        print(f"unknown example {names[0]!r}; bundled examples:")
        _list_examples()
        return 2
    prof, _result = profile_example(name, memory=memory)
    if json_out:
        print(json.dumps(prof.to_json(), indent=2))
    else:
        print(f"profile of {name} — {EXAMPLES[name].description}")
        print()
        print(prof.report())
    if chrome_path:
        written = write_chrome_trace(prof.observation, chrome_path)
        print(f"chrome trace written to {written} (load in chrome://tracing or Perfetto)")
    if jsonl_path:
        written = write_jsonl(prof.observation, jsonl_path)
        print(f"JSON-lines log written to {written}")
    return 0


def _bench_compare(rest: list[str]) -> int:
    from .obs.regress import compare_trajectories, render_comparison

    tolerance_text = _flag_value(rest, "--tolerance")
    paths = [
        a
        for a in rest
        if not a.startswith("-") and a != tolerance_text
    ]
    if len(paths) != 2:
        print("usage: repro bench-compare <baseline.json> <current.json> [--tolerance X]")
        return 2
    try:
        tolerance = float(tolerance_text) if tolerance_text else 1.5
    except ValueError:
        print(f"invalid tolerance {tolerance_text!r}")
        return 2
    comparison = compare_trajectories(paths[0], paths[1], tolerance=tolerance)
    print(render_comparison(comparison))
    return 0 if comparison.ok else 1


def _stats(rest: list[str]) -> int:
    import json

    from .core import render_table
    from .obs import counters_table, metrics_table, observation
    from .obs.examples import EXAMPLES, run_example

    with observation(trace=False) as obs:
        for example in EXAMPLES.values():
            run_example(example.name)
    if "--json" in rest:
        print(json.dumps(obs.metrics.snapshot(), indent=2))
        return 0
    print(f"aggregated metrics over {len(EXAMPLES)} bundled pipelines")
    print()
    ops = metrics_table(obs.metrics)
    if ops is not None:
        print(render_table(ops, title="Operation metrics"))
        print()
    counters = counters_table(obs.metrics)
    if counters is not None:
        print(render_table(counters, title="Counters"))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    command = args[0] if args else "check"
    rest = args[1:]
    if command == "trace":
        return _trace(rest)
    if command == "profile":
        return _profile(rest)
    if command == "stats":
        return _stats(rest)
    if command == "bench-compare":
        return _bench_compare(rest)
    commands = {"figures": _figures, "check": _check, "demo": _demo}
    if command not in commands:
        print(__doc__)
        return 2
    return commands[command]()


if __name__ == "__main__":
    raise SystemExit(main())
