"""A textual syntax for SchemaLog_d programs.

Grammar (EBNF)::

    program = { rule } ;
    rule    = atom [ ":-" atom { "," atom } ] "." ;
    atom    = schema_atom | builtin ;
    schema_atom = term "[" term ":" term "->" term "]" ;
    builtin = term op term ;            op ∈ { =, !=, <, <=, >, >= }
    term    = VARIABLE | NAME | STRING | NUMBER ;

Conventions follow logic programming: identifiers starting with an upper
case letter (or ``_``) are variables; lower-case identifiers are *name*
constants; quoted strings and numbers are *value* constants.  ``%`` and
``#`` start comments.

Example — restructure per-region sales tables into one relation, in the
multidatabase spirit SchemaLog was designed for::

    sales[T: part -> P]   :- east[T: part -> P].
    sales[T: region -> 'east'] :- east[T: part -> P].
"""

from __future__ import annotations

import re

from ..core import Name, ParseError, Value
from .terms import (
    Builtin,
    Const,
    NegatedAtom,
    Rule,
    SchemaAtom,
    SchemaLogProgram,
    Term,
    Var,
)

__all__ = ["parse_schemalog", "parse_rule"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>[%#][^\n]*)
  | (?P<implies>:-)
  | (?P<arrow>->)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<number>-?[0-9]+(?:\.[0-9]+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<sym>[\[\]:,.])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    line = 1
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", line)
        kind = match.lastgroup or ""
        chunk = match.group()
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, chunk, line))
        line += chunk.count("\n")
        pos = match.end()
    tokens.append(_Token("eof", "", line))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            raise ParseError(
                f"expected {text or kind!r}, found {token.text or 'end of input'!r}",
                token.line,
            )
        return self.advance()

    def parse_term(self) -> Term:
        token = self.peek()
        if token.kind == "ident":
            self.advance()
            if token.text[0].isupper() or token.text[0] == "_":
                return Var(token.text)
            return Const(Name(token.text))
        if token.kind == "string":
            self.advance()
            return Const(Value(token.text[1:-1]))
        if token.kind == "number":
            self.advance()
            number = float(token.text) if "." in token.text else int(token.text)
            return Const(Value(number))
        raise ParseError(f"expected a term, found {token.text!r}", token.line)

    def parse_atom(self):
        token = self.peek()
        if token.kind == "ident" and token.text == "not":
            self.advance()
            inner = self.parse_atom()
            if not isinstance(inner, SchemaAtom):
                raise ParseError("'not' applies to schema atoms only", token.line)
            try:
                return NegatedAtom(inner)
            except ValueError as exc:
                raise ParseError(str(exc), token.line) from exc
        first = self.parse_term()
        token = self.peek()
        if token.kind == "sym" and token.text == "[":
            self.advance()
            tid = self.parse_term()
            self.expect("sym", ":")
            attr = self.parse_term()
            self.expect("arrow")
            value = self.parse_term()
            self.expect("sym", "]")
            return SchemaAtom(first, tid, attr, value)
        if token.kind == "op":
            op = self.advance().text
            right = self.parse_term()
            return Builtin(op, first, right)
        raise ParseError(
            f"expected '[' or a comparison after a term, found {token.text!r}",
            token.line,
        )

    def parse_rule(self) -> Rule:
        head = self.parse_atom()
        if not isinstance(head, SchemaAtom):
            token = self.peek()
            raise ParseError("a rule head must be a schema atom", token.line)
        body: list = []
        token = self.peek()
        if token.kind == "implies":
            self.advance()
            body.append(self.parse_atom())
            while self.peek().kind == "sym" and self.peek().text == ",":
                self.advance()
                body.append(self.parse_atom())
        self.expect("sym", ".")
        try:
            return Rule(head, tuple(body))
        except ValueError as exc:
            raise ParseError(str(exc), token.line) from exc

    def parse_program(self) -> SchemaLogProgram:
        rules = []
        while self.peek().kind != "eof":
            rules.append(self.parse_rule())
        return SchemaLogProgram(tuple(rules))


def parse_schemalog(text: str) -> SchemaLogProgram:
    """Parse a full SchemaLog_d program."""
    return _Parser(text).parse_program()


def parse_rule(text: str) -> Rule:
    """Parse a single rule (must consume the whole input)."""
    parser = _Parser(text)
    rule = parser.parse_rule()
    token = parser.peek()
    if token.kind != "eof":
        raise ParseError(f"trailing input {token.text!r}", token.line)
    return rule
