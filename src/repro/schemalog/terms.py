"""Terms, atoms, and rules of SchemaLog_d (paper, Section 4.2).

SchemaLog_d is the stripped-down, single-database version of SchemaLog
[11, 12] the paper compares against.  Its atomic formulas are

    ``Rel[Tid : Attr → Value]``

with each of the four components a constant or a variable — relation and
attribute names are *first-class citizens* (a variable may range over
relation names: that is the syntactically higher-order feature), and tuple
ids are explicit.  Standard built-in comparison predicates round out the
atom language; function symbols are excluded (the fragment of
Theorem 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union as TypingUnion

from ..core import Symbol, coerce_symbol

__all__ = [
    "Var",
    "Const",
    "Term",
    "SchemaAtom",
    "NegatedAtom",
    "Builtin",
    "Atom",
    "Rule",
    "SchemaLogProgram",
]


@dataclass(frozen=True)
class Var:
    """A logical variable (conventionally capitalized)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant term holding a symbol."""

    symbol: Symbol

    def __str__(self) -> str:
        return str(self.symbol)


Term = TypingUnion[Var, Const]


def as_term(obj: object) -> Term:
    """Coerce: Var/Const pass, Symbols and plain values become constants."""
    if isinstance(obj, (Var, Const)):
        return obj
    return Const(coerce_symbol(obj))


@dataclass(frozen=True)
class SchemaAtom:
    """``rel[tid : attr → value]``."""

    rel: Term
    tid: Term
    attr: Term
    value: Term

    def terms(self) -> tuple[Term, Term, Term, Term]:
        return (self.rel, self.tid, self.attr, self.value)

    def variables(self) -> frozenset[Var]:
        return frozenset(t for t in self.terms() if isinstance(t, Var))

    def __str__(self) -> str:
        return f"{self.rel}[{self.tid}: {self.attr} -> {self.value}]"


@dataclass(frozen=True)
class NegatedAtom:
    """``not rel[tid : attr → value]`` — stratified negation.

    SchemaLog proper includes negation; the stratified discipline makes it
    well-defined bottom-up.  For stratification to be computable in the
    presence of relation-name *variables*, the relation component of a
    negated atom must be a constant (a variable there would make the atom
    depend on every derivable relation at once).
    """

    atom: SchemaAtom

    def __post_init__(self):
        if not isinstance(self.atom.rel, Const):
            raise ValueError(
                "the relation of a negated atom must be a constant "
                "(stratification over relation-name variables is undefined)"
            )

    def variables(self) -> frozenset[Var]:
        return self.atom.variables()

    def __str__(self) -> str:
        return f"not {self.atom}"


#: Builtin comparison operators.  ``=`` and ``!=`` are generic (and hence
#: compilable into tabular algebra); the order comparisons distinguish
#: individual values and are supported by the native evaluator only.
COMPARISONS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Builtin:
    """A builtin comparison ``left op right``."""

    op: str
    left: Term
    right: Term

    def __post_init__(self):
        if self.op not in COMPARISONS:
            raise ValueError(f"unknown builtin operator {self.op!r}")

    def variables(self) -> frozenset[Var]:
        return frozenset(t for t in (self.left, self.right) if isinstance(t, Var))

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


Atom = TypingUnion[SchemaAtom, NegatedAtom, Builtin]


@dataclass(frozen=True)
class Rule:
    """``head :- body``.  An empty body makes the rule a ground fact."""

    head: SchemaAtom
    body: tuple[Atom, ...] = ()

    def __post_init__(self):
        body_vars: set[Var] = set()
        for atom in self.body:
            if isinstance(atom, SchemaAtom):
                body_vars |= atom.variables()
        # builtins may only use variables bound by positive schema atoms
        # (safety); variables local to a negated atom are existential
        # within the negation ("no U such that …") and need no binding
        for atom in self.body:
            if isinstance(atom, Builtin):
                unbound = atom.variables() - body_vars
                if unbound:
                    raise ValueError(
                        f"unsafe {atom}: unbound variable(s) "
                        f"{sorted(v.name for v in unbound)}"
                    )
        unbound_head = self.head.variables() - body_vars
        if unbound_head:
            raise ValueError(
                f"unsafe rule: head variable(s) "
                f"{sorted(v.name for v in unbound_head)} not bound in the body"
            )

    def positive_atoms(self) -> tuple[SchemaAtom, ...]:
        return tuple(a for a in self.body if isinstance(a, SchemaAtom))

    def negated_atoms(self) -> tuple[NegatedAtom, ...]:
        return tuple(a for a in self.body if isinstance(a, NegatedAtom))

    def builtins(self) -> tuple[Builtin, ...]:
        return tuple(a for a in self.body if isinstance(a, Builtin))

    @property
    def is_fact(self) -> bool:
        return not self.body

    def __str__(self) -> str:
        if self.is_fact:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(str(a) for a in self.body)}."


@dataclass(frozen=True)
class SchemaLogProgram:
    """A finite set of rules (kept in source order)."""

    rules: tuple[Rule, ...]

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def facts(self) -> tuple[Rule, ...]:
        return tuple(r for r in self.rules if r.is_fact)

    def proper_rules(self) -> tuple[Rule, ...]:
        return tuple(r for r in self.rules if not r.is_fact)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.rules)
