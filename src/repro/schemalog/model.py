"""The SchemaLog_d data model: a store of ``rel[tid : attr → val]`` facts.

"The SchemaLog data model is essentially the relational model, with the
following differences: (i) tuple ids and relation and attribute names are
first-class citizens …; and (ii) variable-width relations are possible."
(Section 4.2.)  A database is therefore just a set of quadruples of
symbols; this module provides that store plus the conversions the
embedding theorems rely on:

* relational databases and relation-style tables flatten into facts (tuple
  ids are synthesized deterministically);
* a fact store re-materializes into (possibly variable-width) tables, one
  per relation name, rows keyed by tuple id and columns by attribute, with
  ⊥ where a tuple lacks an attribute;
* :meth:`SchemaLogDatabase.facts_table` gives the single fixed-width
  ``Facts(Rel, Tid, Attr, Val)`` table that the Theorem 4.5 compiler
  operates on.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..core import (
    NULL,
    Name,
    SchemaError,
    Symbol,
    Table,
    TabularDatabase,
    Value,
    coerce_symbol,
)
from ..relational import Relation, RelationalDatabase

__all__ = ["Fact", "SchemaLogDatabase", "FACTS_SCHEMA"]

#: A ground fact: (rel, tid, attr, val).
Fact = tuple[Symbol, Symbol, Symbol, Symbol]

#: Schema of the flattened facts relation.
FACTS_SCHEMA = ("Rel", "Tid", "Attr", "Val")


def _coerce_fact(fact: Iterable[object]) -> Fact:
    entries = tuple(coerce_symbol(x) for x in fact)
    if len(entries) != 4:
        raise SchemaError(f"a fact is a quadruple, got {len(entries)} components")
    return entries  # type: ignore[return-value]


class SchemaLogDatabase:
    """An immutable set of SchemaLog_d facts."""

    __slots__ = ("facts",)

    def __init__(self, facts: Iterable[Iterable[object]] = ()):
        object.__setattr__(self, "facts", frozenset(_coerce_fact(f) for f in facts))

    def __setattr__(self, key, value):  # pragma: no cover - immutability guard
        raise AttributeError("SchemaLogDatabase is immutable")

    def __len__(self) -> int:
        return len(self.facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(
            sorted(self.facts, key=lambda f: tuple(s.sort_key() for s in f))
        )

    def __contains__(self, fact: object) -> bool:
        if isinstance(fact, tuple) and len(fact) == 4:
            return _coerce_fact(fact) in self.facts
        return False

    def __eq__(self, other) -> bool:
        return isinstance(other, SchemaLogDatabase) and other.facts == self.facts

    def __hash__(self) -> int:
        return hash(self.facts)

    def __or__(self, other: "SchemaLogDatabase") -> "SchemaLogDatabase":
        if not isinstance(other, SchemaLogDatabase):
            return NotImplemented
        return SchemaLogDatabase(self.facts | other.facts)

    def add(self, facts: Iterable[Iterable[object]]) -> "SchemaLogDatabase":
        return SchemaLogDatabase(self.facts | {_coerce_fact(f) for f in facts})

    def relations(self) -> tuple[Symbol, ...]:
        """The relation-name symbols with at least one fact."""
        return tuple(
            sorted({f[0] for f in self.facts}, key=lambda s: s.sort_key())
        )

    def symbols(self) -> frozenset[Symbol]:
        return frozenset(s for f in self.facts for s in f)

    def __repr__(self) -> str:
        return f"SchemaLogDatabase({len(self.facts)} facts)"

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    @staticmethod
    def tid_symbol(rel: str, index: int) -> Value:
        """The deterministic tuple-id symbol used by the converters."""
        return Value(f"{rel}#{index}")

    @classmethod
    def from_relational(cls, db: RelationalDatabase) -> "SchemaLogDatabase":
        """Flatten a relational database into facts (one tid per tuple)."""
        facts: list[Fact] = []
        for relation in db:
            for index, row in enumerate(relation):
                tid = cls.tid_symbol(relation.name, index)
                for attr, entry in zip(relation.schema, row):
                    facts.append((Name(relation.name), tid, Name(attr), entry))
        return cls(facts)

    @classmethod
    def from_table(cls, table: Table) -> "SchemaLogDatabase":
        """Flatten one relation-style table (⊥ entries yield no fact —
        SchemaLog relations are variable-width, absence is the null)."""
        if not isinstance(table.name, Name):
            raise SchemaError("only name-named tables flatten into SchemaLog")
        facts: list[Fact] = []
        for index, i in enumerate(table.data_row_indices()):
            tid = cls.tid_symbol(table.name.text, index)
            for j in table.data_col_indices():
                entry = table.entry(i, j)
                if not entry.is_null:
                    facts.append((table.name, tid, table.entry(0, j), entry))
        return cls(facts)

    @classmethod
    def from_tabular(cls, db: TabularDatabase) -> "SchemaLogDatabase":
        """Flatten every table of a tabular database."""
        out = cls()
        for table in db.tables:
            out = out | cls.from_table(table)
        return out

    def to_tabular(self) -> TabularDatabase:
        """Materialize one (possibly variable-width) table per relation.

        Columns are the relation's attribute symbols in sorted order, rows
        its tuple ids in sorted order, with ⊥ for missing attributes —
        exactly the variable-width relations of the SchemaLog data model.
        """
        tables = []
        for rel in self.relations():
            rel_facts = [f for f in self.facts if f[0] == rel]
            attrs = sorted({f[2] for f in rel_facts}, key=lambda s: s.sort_key())
            tids = sorted({f[1] for f in rel_facts}, key=lambda s: s.sort_key())
            lookup = {(f[1], f[2]): f[3] for f in rel_facts}
            grid: list[list[Symbol]] = [[rel, *attrs]]
            for tid in tids:
                grid.append([NULL] + [lookup.get((tid, a), NULL) for a in attrs])
            tables.append(Table(grid))
        return TabularDatabase(tables)

    def facts_relation(self) -> Relation:
        """The flattened ``Facts(Rel, Tid, Attr, Val)`` relation."""
        return Relation("Facts", FACTS_SCHEMA, self.facts)

    def facts_table(self) -> Table:
        """The flattened facts as a relation-style table."""
        from ..relational import relation_to_table

        return relation_to_table(self.facts_relation())

    @classmethod
    def from_facts_relation(cls, relation: Relation) -> "SchemaLogDatabase":
        """Rebuild a fact store from a ``Facts``-shaped relation."""
        if relation.schema != FACTS_SCHEMA:
            raise SchemaError(
                f"expected schema {FACTS_SCHEMA}, got {relation.schema}"
            )
        return cls(relation.tuples)
