"""SchemaLog_d: syntax, data model, evaluation, and the Theorem 4.5
embedding into the tabular algebra."""

from .compile_ta import (
    DERIVED,
    FACTS,
    compile_to_fw,
    compile_to_ta,
    rule_to_expression,
)
from .evaluate import derive_once, evaluate, match_atom, satisfies_builtin
from .model import FACTS_SCHEMA, Fact, SchemaLogDatabase
from .parser import parse_rule, parse_schemalog
from .stratify import stratify
from .terms import (
    Builtin,
    Const,
    NegatedAtom,
    Rule,
    SchemaAtom,
    SchemaLogProgram,
    Term,
    Var,
)

__all__ = [
    "Var",
    "Const",
    "Term",
    "SchemaAtom",
    "NegatedAtom",
    "Builtin",
    "Rule",
    "stratify",
    "SchemaLogProgram",
    "SchemaLogDatabase",
    "Fact",
    "FACTS_SCHEMA",
    "evaluate",
    "derive_once",
    "match_atom",
    "satisfies_builtin",
    "parse_schemalog",
    "parse_rule",
    "compile_to_fw",
    "compile_to_ta",
    "rule_to_expression",
    "DERIVED",
    "FACTS",
]
