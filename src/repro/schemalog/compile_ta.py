"""Theorem 4.5 — embedding SchemaLog_d into the tabular algebra.

The compilation factors through FO + while + new over the flattened
``Facts(Rel, Tid, Attr, Val)`` relation and then reuses the Theorem 4.1
compiler, mirroring how the paper's results stack: the fact space of
SchemaLog_d is fixed-width (exactly like the canonical representation), so
rule evaluation is relational, and relational iteration is simulable in
the tabular algebra.

Per rule with body schema-atoms ``a_1 … a_n`` and builtins:

1. take the product of n copies of the current fact relation, the i-th
   renamed to ``(R_i, T_i, A_i, V_i)``;
2. apply a constant selection per constant component and an equality
   selection per repeated variable;
3. compile ``=``/``!=`` builtins into (difference over) equality
   selections — order comparisons are rejected, since they distinguish
   individual values and are therefore not *generic* (condition (i)):
   they lie outside the transformations the tabular algebra computes;
4. project/rename onto the head components (constants become
   ``ConstColumn`` extensions; a head variable used more often than the
   body binds it is duplicated through a self-join).

The whole program becomes the usual fixpoint loop::

    Derived := Facts;  Delta := Facts
    while Delta ≠ ∅:
        New     := ∪ rules (rule body over Derived)
        Delta   := New \\ Derived
        Derived := Derived ∪ Delta

Ground facts inside a program are *not* compilable (no tabular algebra
expression conjures a specific value out of an empty database); put them
in the database, where they belong, or use the native evaluator.
"""

from __future__ import annotations

from ..core import EvaluationError, Symbol
from ..algebra.programs import Program
from ..relational import (
    Assign,
    ConstColumn,
    Difference,
    Expr,
    FWProgram,
    Product,
    Project,
    Rel,
    RenameAttr,
    SelectConst,
    SelectEq,
    Union,
    WhileNotEmpty,
    compile_program as compile_fw_to_ta,
)
from .model import FACTS_SCHEMA
from .stratify import stratify
from .terms import Builtin, Const, NegatedAtom, Rule, SchemaAtom, SchemaLogProgram, Var

__all__ = ["rule_to_expression", "compile_to_fw", "compile_to_ta", "DERIVED", "FACTS"]

#: Relation names used by the compiled fixpoint loop.
FACTS = "Facts"
DERIVED = "Derived"
_POSITION_PREFIXES = ("R", "T", "A", "V")


def _copy_expr(source: str, index: int) -> Expr:
    """The ``index``-th fact copy, renamed to R{i}, T{i}, A{i}, V{i}."""
    expr: Expr = Rel(source)
    for attr, prefix in zip(FACTS_SCHEMA, _POSITION_PREFIXES):
        expr = RenameAttr(expr, attr, f"{prefix}{index}")
    return expr


def rule_to_expression(rule: Rule, source: str = DERIVED) -> Expr:
    """The relational expression deriving one rule's head instances.

    The output schema is exactly ``FACTS_SCHEMA``.
    """
    if rule.is_fact:
        raise EvaluationError(
            "ground facts are not compilable into the tabular algebra; "
            "load them into the database or use the native evaluator"
        )
    schema_atoms = list(rule.positive_atoms())
    builtins = list(rule.builtins())
    negated_atoms = list(rule.negated_atoms())

    # 1. product of renamed copies
    expr = _copy_expr(source, 0)
    for index in range(1, len(schema_atoms)):
        expr = Product(expr, _copy_expr(source, index))

    # 2. constants and repeated variables
    var_columns: dict[Var, list[str]] = {}
    for index, atom in enumerate(schema_atoms):
        for term, prefix in zip(atom.terms(), _POSITION_PREFIXES):
            column = f"{prefix}{index}"
            if isinstance(term, Const):
                expr = SelectConst(expr, column, term.symbol)
            else:
                var_columns.setdefault(term, []).append(column)
    for columns in var_columns.values():
        for other in columns[1:]:
            expr = SelectEq(expr, columns[0], other)

    # 3. builtins (= and != only; order comparisons are not generic)
    def equality(e: Expr, builtin: Builtin) -> Expr:
        left, right = builtin.left, builtin.right
        if isinstance(left, Const) and isinstance(right, Const):
            if left.symbol == right.symbol:
                return e
            return Difference(e, e)
        if isinstance(left, Const):
            left, right = right, left
        assert isinstance(left, Var)
        column = var_columns[left][0]
        if isinstance(right, Const):
            return SelectConst(e, column, right.symbol)
        return SelectEq(e, column, var_columns[right][0])

    for builtin in builtins:
        if builtin.op == "=":
            expr = equality(expr, builtin)
        elif builtin.op == "!=":
            expr = Difference(expr, equality(expr, builtin))
        else:
            raise EvaluationError(
                f"builtin {builtin} is not generic and cannot be compiled "
                "into the tabular algebra (native evaluation supports it)"
            )

    # 3b. stratified negation: subtract the bindings a matching fact kills.
    # The positive expression's schema is the concatenated copy columns.
    positive_columns = [
        f"{prefix}{index}"
        for index in range(len(schema_atoms))
        for prefix in _POSITION_PREFIXES
    ]
    for offset, negated in enumerate(negated_atoms):
        copy_index = len(schema_atoms) + offset
        copy: Expr = Rel(source)
        copy_columns = []
        for attr, prefix in zip(FACTS_SCHEMA, _POSITION_PREFIXES):
            column = f"{prefix}{copy_index}"
            copy = RenameAttr(copy, attr, column)
            copy_columns.append(column)
        matching: Expr = Product(expr, copy)
        local_columns: dict[Var, str] = {}
        for term, column in zip(negated.atom.terms(), copy_columns):
            if isinstance(term, Const):
                matching = SelectConst(matching, column, term.symbol)
            elif term in var_columns:
                matching = SelectEq(matching, var_columns[term][0], column)
            elif term in local_columns:
                # a variable local to the negation, repeated: equate copies
                matching = SelectEq(matching, local_columns[term], column)
            else:
                local_columns[term] = column  # existential: unconstrained
        expr = Difference(expr, Project(matching, positive_columns))

    # 4. head: assign a distinct source column per head slot
    used: list[str] = []
    const_slots: list[tuple[str, Symbol]] = []
    slot_sources: list[tuple[str, str]] = []  # (target, source column)
    duplicates = 0
    for target, term in zip(FACTS_SCHEMA, rule.head.terms()):
        if isinstance(term, Const):
            const_slots.append((target, term.symbol))
            continue
        pool = [c for c in var_columns[term] if c not in used]
        if pool:
            source_col = pool[0]
        else:
            # duplicate the variable's first column through a self-join
            original = var_columns[term][0]
            source_col = f"D{duplicates}"
            duplicates += 1
            copy = RenameAttr(Project(expr, [original]), original, source_col)
            expr = SelectEq(Product(expr, copy), original, source_col)
            var_columns[term].append(source_col)
        used.append(source_col)
        slot_sources.append((target, source_col))

    expr = Project(expr, [source_col for (_t, source_col) in slot_sources])
    for target, source_col in slot_sources:
        expr = RenameAttr(expr, source_col, target)
    for target, symbol in const_slots:
        expr = ConstColumn(expr, target, symbol)
    return Project(expr, FACTS_SCHEMA)


def compile_to_fw(program: SchemaLogProgram) -> FWProgram:
    """Compile a SchemaLog_d program to FO + while + new over ``Facts``.

    The result binds ``Derived`` to the (stratified) least fixpoint,
    which includes the input facts.  Each stratum gets its own fixpoint
    loop, in stratification order, so negated atoms always read a
    completed lower stratum.
    """
    if program.facts():
        raise EvaluationError(
            "ground facts are not compilable; add them to the Facts relation"
        )
    from ..obs.runtime import OBS as _OBS, span as _span
    from ..obs.trace import NULL_SPAN as _NULL_SPAN
    from ..runtime.governor import GOV as _GOV

    if _GOV.active and _GOV.governor is not None:
        _GOV.governor.check(op="compile.schemalog")
    strata = stratify(program)
    with (
        _span("compile.schemalog", rules=len(program), strata=len(strata))
        if _OBS.active
        else _NULL_SPAN
    ):
        return _compile_strata_to_fw(strata)


def _compile_strata_to_fw(strata) -> FWProgram:
    statements = [Assign(DERIVED, Rel(FACTS))]
    for level, stratum_rules in enumerate(strata):
        union: Expr = rule_to_expression(stratum_rules[0])
        for rule in stratum_rules[1:]:
            union = Union(union, rule_to_expression(rule))
        delta = f"Delta{level}"
        statements.append(Assign(delta, Rel(DERIVED)))
        statements.append(
            WhileNotEmpty(
                delta,
                [
                    Assign("New", union),
                    Assign(delta, Difference(Rel("New"), Rel(DERIVED))),
                    Assign(DERIVED, Union(Rel(DERIVED), Rel(delta))),
                ],
            )
        )
    return FWProgram(statements)


def compile_to_ta(program: SchemaLogProgram) -> Program:
    """Theorem 4.5: the equivalent tabular algebra program.

    Run it on a database holding the ``Facts`` table
    (:meth:`SchemaLogDatabase.facts_table`); the fixpoint lands in the
    ``Derived`` table.
    """
    return compile_fw_to_ta(compile_to_fw(program), {FACTS: FACTS_SCHEMA})
