"""Bottom-up semi-naive evaluation of SchemaLog_d programs.

The standard Datalog fixpoint machinery, lifted to the quadruple fact
space: a rule fires for every substitution that matches all its body
schema-atoms against known facts and satisfies its builtins; the head
instance is derived.  Semi-naive evaluation requires at least one body
atom to match a *new* fact from the previous round, so each fact is
derived once.

Built-in comparisons: ``=`` and ``!=`` compare symbols; the order
comparisons compare value payloads and are defined only between
values of mutually orderable payloads (a practical superset of the
paper's "standard built-in predicates").
"""

from __future__ import annotations

from typing import Iterator

from ..core import EvaluationError, Symbol, Value
from .model import Fact, SchemaLogDatabase
from .stratify import stratify
from .terms import (
    Atom,
    Builtin,
    Const,
    NegatedAtom,
    Rule,
    SchemaAtom,
    SchemaLogProgram,
    Var,
)

__all__ = ["evaluate", "derive_once", "match_atom", "satisfies_builtin"]

Substitution = dict[Var, Symbol]


def match_atom(
    atom: SchemaAtom, fact: Fact, binding: Substitution
) -> Substitution | None:
    """Extend ``binding`` so that ``atom`` matches ``fact``, or None."""
    extended = dict(binding)
    for term, symbol in zip(atom.terms(), fact):
        if isinstance(term, Const):
            if term.symbol != symbol:
                return None
        else:
            bound = extended.get(term)
            if bound is None:
                extended[term] = symbol
            elif bound != symbol:
                return None
    return extended


def _term_value(term, binding: Substitution) -> Symbol:
    if isinstance(term, Const):
        return term.symbol
    if term not in binding:
        raise EvaluationError(f"unbound variable {term} in builtin")
    return binding[term]


def satisfies_builtin(builtin: Builtin, binding: Substitution) -> bool:
    """Evaluate a ground builtin under ``binding``."""
    left = _term_value(builtin.left, binding)
    right = _term_value(builtin.right, binding)
    if builtin.op == "=":
        return left == right
    if builtin.op == "!=":
        return left != right
    if not (isinstance(left, Value) and isinstance(right, Value)):
        raise EvaluationError(
            f"order comparison {builtin} requires value operands, "
            f"got {left!s} and {right!s}"
        )
    try:
        if builtin.op == "<":
            return left.payload < right.payload
        if builtin.op == "<=":
            return left.payload <= right.payload
        if builtin.op == ">":
            return left.payload > right.payload
        return left.payload >= right.payload
    except TypeError as exc:
        raise EvaluationError(f"incomparable payloads in {builtin}: {exc}") from exc


def _instantiate_head(head: SchemaAtom, binding: Substitution) -> Fact:
    components = []
    for term in head.terms():
        if isinstance(term, Const):
            components.append(term.symbol)
        else:
            components.append(binding[term])
    return tuple(components)  # type: ignore[return-value]


def _negation_holds(
    negated: NegatedAtom, binding: Substitution, all_facts: frozenset[Fact]
) -> bool:
    """True iff no fact matches the (safely bound) negated atom."""
    for fact in all_facts:
        if match_atom(negated.atom, fact, binding) is not None:
            return False
    return True


def _rule_matches(
    rule: Rule,
    all_facts: frozenset[Fact],
    delta: frozenset[Fact],
) -> Iterator[Fact]:
    """Head instances derivable with at least one body atom in ``delta``."""
    schema_atoms = list(rule.positive_atoms())
    builtins = list(rule.builtins())
    negated = list(rule.negated_atoms())

    def extend(idx: int, binding: Substitution, used_delta: bool) -> Iterator[Substitution]:
        if idx == len(schema_atoms):
            if used_delta or not schema_atoms:
                yield binding
            return
        atom = schema_atoms[idx]
        # the last undecided atom must hit delta if nothing has yet
        for fact in all_facts:
            extended = match_atom(atom, fact, binding)
            if extended is None:
                continue
            yield from extend(idx + 1, extended, used_delta or fact in delta)

    for binding in extend(0, {}, False):
        if not all(satisfies_builtin(b, binding) for b in builtins):
            continue
        if all(_negation_holds(n, binding, all_facts) for n in negated):
            yield _instantiate_head(rule.head, binding)


def derive_once(
    program: SchemaLogProgram, db: SchemaLogDatabase
) -> SchemaLogDatabase:
    """One naive application of every rule (facts included)."""
    derived: set[Fact] = set(db.facts)
    for rule in program:
        if rule.is_fact:
            derived.add(_instantiate_head(rule.head, {}))
        else:
            derived.update(_rule_matches(rule, db.facts, db.facts))
    return SchemaLogDatabase(derived)


def evaluate(
    program: SchemaLogProgram,
    db: SchemaLogDatabase,
    max_rounds: int = 10_000,
) -> SchemaLogDatabase:
    """The (stratified) least fixpoint of ``program`` over ``db``.

    Purely positive programs evaluate semi-naive as one stratum; programs
    with negation evaluate stratum by stratum (the perfect model), with
    each negated atom read against the completed lower strata.
    """
    facts: set[Fact] = set(db.facts)
    for rule in program.facts():
        facts.add(_instantiate_head(rule.head, {}))
    for stratum_rules in stratify(program):
        delta = frozenset(facts)
        rounds = 0
        while delta:
            rounds += 1
            if rounds > max_rounds:
                raise EvaluationError(
                    f"fixpoint not reached within {max_rounds} rounds"
                )
            new: set[Fact] = set()
            known = frozenset(facts)
            for rule in stratum_rules:
                for fact in _rule_matches(rule, known, delta):
                    if fact not in facts:
                        new.add(fact)
            facts |= new
            delta = frozenset(new)
    return SchemaLogDatabase(facts)
