"""Stratification of SchemaLog_d programs with negation.

The classical discipline, adapted to the higher-order setting:

* the dependency nodes are the *constant* relation names occurring in
  heads or bodies;
* a rule whose head names relation h contributes, per positive body atom
  over b, the constraint ``stratum(b) ≤ stratum(h)``; per negated atom
  over b, ``stratum(b) < stratum(h)``;
* a positive body atom whose relation is a *variable* reads every
  derivable relation, so it contributes the constraint for every head
  name at once;
* a rule whose *head* relation is a variable derives into data-dependent
  relations; this is fine in a purely positive program (one stratum) but
  makes stratification undefined in the presence of negation — rejected.

``stratify`` returns the rules grouped in evaluation order and raises
:class:`~repro.core.EvaluationError` for non-stratifiable programs.
"""

from __future__ import annotations

from ..core import EvaluationError, Symbol
from .terms import Const, NegatedAtom, Rule, SchemaAtom, SchemaLogProgram

__all__ = ["stratify"]


def _head_name(rule: Rule) -> Symbol | None:
    if isinstance(rule.head.rel, Const):
        return rule.head.rel.symbol
    return None


def stratify(program: SchemaLogProgram) -> list[tuple[Rule, ...]]:
    """Group the proper rules into strata (facts are stratum 0 input)."""
    rules = program.proper_rules()
    has_negation = any(rule.negated_atoms() for rule in rules)
    if not has_negation:
        return [rules] if rules else []

    head_names: set[Symbol] = set()
    for rule in rules:
        name = _head_name(rule)
        if name is None:
            raise EvaluationError(
                "a rule with a variable head relation cannot be stratified "
                "alongside negation"
            )
        head_names.add(name)

    # collect every constant relation name as a node
    nodes: set[Symbol] = set(head_names)
    for rule in rules:
        for atom in rule.body:
            target = atom.atom if isinstance(atom, NegatedAtom) else atom
            if isinstance(target, SchemaAtom) and isinstance(target.rel, Const):
                nodes.add(target.rel.symbol)

    stratum: dict[Symbol, int] = {node: 0 for node in nodes}
    changed = True
    rounds = 0
    ceiling = len(nodes) + 1
    while changed:
        changed = False
        rounds += 1
        if rounds > ceiling * ceiling:
            raise EvaluationError("program is not stratifiable (negative cycle)")
        for rule in rules:
            head = _head_name(rule)
            assert head is not None
            for atom in rule.positive_atoms():
                if isinstance(atom.rel, Const):
                    required = stratum[atom.rel.symbol]
                else:
                    required = max(
                        (stratum[name] for name in head_names), default=0
                    )
                if stratum[head] < required:
                    stratum[head] = required
                    changed = True
            for negated in rule.negated_atoms():
                required = stratum[negated.atom.rel.symbol] + 1
                if stratum[head] < required:
                    if required > ceiling:
                        raise EvaluationError(
                            "program is not stratifiable (negative cycle)"
                        )
                    stratum[head] = required
                    changed = True

    grouped: dict[int, list[Rule]] = {}
    for rule in rules:
        head = _head_name(rule)
        assert head is not None
        grouped.setdefault(stratum[head], []).append(rule)
    return [tuple(grouped[level]) for level in sorted(grouped)]
