"""Bundled traceable pipelines for ``python -m repro trace`` / ``stats``.

Each example is a self-contained end-to-end pipeline over the paper's
running data — a tabular algebra program, a compiled embedding, or an
OLAP bridge round trip — chosen so the trace shows something meaningful:
nested statement spans, while-loop fixpoints, compiler phases, bridge
conversions.

This module imports the engine (algebra, schemalog, relational, olap), so
it is deliberately *not* imported from :mod:`repro.obs`'s ``__init__`` —
the operation registry imports the observability runtime, and loading the
engine from the package root would close that cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .profile import Profile, profile
from .runtime import Observation, observation

__all__ = [
    "Example",
    "EXAMPLES",
    "resolve_example",
    "run_example",
    "trace_example",
    "profile_example",
]


@dataclass(frozen=True)
class Example:
    """One named, runnable pipeline."""

    name: str
    description: str
    runner: Callable[[], object]


def _fig4_group() -> object:
    from ..algebra.programs import parse_program
    from ..core import database
    from ..data import figure4_top

    program = parse_program("Sales <- GROUP by {Region} on {Sold} (Sales)")
    return program.run(database(figure4_top()))


def _fig5_merge() -> object:
    from ..algebra.programs import parse_program
    from ..data import sales_info2

    program = parse_program("Sales <- MERGE on {Sold} by {Region} (Sales)")
    return program.run(sales_info2())


def _pivot() -> object:
    from ..algebra.programs import parse_program
    from ..data import sales_info1

    program = parse_program(
        """
        Grouped <- GROUP by {Region} on {Sold} (Sales)
        Cleaned <- CLEANUP by {Part} on {null} (Grouped)
        Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
        """
    )
    return program.run(sales_info1())


def _schemalog() -> object:
    from ..core import database
    from ..relational import Relation, RelationalDatabase
    from ..schemalog import SchemaLogDatabase, compile_to_ta, parse_schemalog

    program = parse_schemalog(
        """
        sales[T: part -> P]        :- east[T: part -> P].
        sales[T: sold -> S]        :- east[T: sold -> S].
        sales[T: region -> 'east'] :- east[T: part -> P].
        sales[T: part -> P]        :- west[T: part -> P].
        sales[T: sold -> S]        :- west[T: sold -> S].
        sales[T: region -> 'west'] :- west[T: part -> P].
        """
    )
    db = SchemaLogDatabase.from_relational(
        RelationalDatabase(
            [
                Relation("east", ["part", "sold"], [("nuts", 50), ("bolts", 70)]),
                Relation("west", ["part", "sold"], [("nuts", 60), ("screws", 50)]),
            ]
        )
    )
    return compile_to_ta(program).run(database(db.facts_table()))


def _fo_while() -> object:
    from ..relational import (
        Assign,
        Difference,
        FWProgram,
        Join,
        Project,
        Rel,
        Relation,
        RelationalDatabase,
        RenameAttr,
        Union,
        WhileNotEmpty,
        compile_program,
        relational_to_tabular,
    )

    # Transitive closure of a 5-node chain: the while loop iterates until
    # the Delta relation drains, showing the fixpoint in the trace.
    step = Project(
        Join(RenameAttr(Rel("TC"), "Dst", "Mid"), RenameAttr(Rel("E"), "Src", "Mid")),
        ["Src", "Dst"],
    )
    fw = FWProgram(
        [
            Assign("TC", Rel("E")),
            Assign("Delta", Rel("E")),
            WhileNotEmpty(
                "Delta",
                [
                    Assign("New", step),
                    Assign("Delta", Difference(Rel("New"), Rel("TC"))),
                    Assign("TC", Union(Rel("TC"), Rel("Delta"))),
                ],
            ),
        ]
    )
    edges = Relation("E", ["Src", "Dst"], [(i, i + 1) for i in range(1, 5)])
    db = RelationalDatabase([edges])
    ta_program = compile_program(fw, {"E": ("Src", "Dst")})
    return ta_program.run(relational_to_tabular(db))


def _olap_bridges() -> object:
    from ..data import figure4_top
    from ..ndim import cube_to_ndtable, ndtable_to_cube
    from ..olap import cube_to_database, cube_to_grouped_table, relation_table_to_cube

    cube = relation_table_to_cube(figure4_top(), ["Part", "Region"], "Sold")
    grouped = cube_to_grouped_table(cube, "Part", "Region")
    per_region = cube_to_database(cube, "Region")
    round_trip = ndtable_to_cube(cube_to_ndtable(cube), cube.dims)
    return (grouped, per_region, round_trip)


#: All bundled examples, keyed by CLI name.
EXAMPLES: dict[str, Example] = {
    example.name: example
    for example in (
        Example("fig4-group", "Figure 4: GROUP by Region on Sold, as a TA program", _fig4_group),
        Example("fig5-merge", "Figure 5: MERGE on Sold by Region, as a TA program", _fig5_merge),
        Example("pivot", "the 3-statement compact pivot (GROUP + CLEANUP + PURGE)", _pivot),
        Example("schemalog", "Theorem 4.5: a SchemaLog_d federation program, TA-compiled", _schemalog),
        Example("fo-while", "Theorem 4.1: transitive closure in FO+while, TA-compiled", _fo_while),
        Example("olap", "Section 4.3: cube ↔ table bridges (pivot, split, n-dim)", _olap_bridges),
    )
}


def resolve_example(name: str) -> str | None:
    """The full example name for ``name``, accepting unique prefixes.

    ``fig5`` resolves to ``fig5-merge``; an ambiguous or unknown prefix
    resolves to None (the CLI then lists the bundled examples).
    """
    if name in EXAMPLES:
        return name
    matches = [known for known in sorted(EXAMPLES) if known.startswith(name)]
    return matches[0] if len(matches) == 1 else None


def run_example(name: str) -> object:
    """Run one bundled example (under whatever observation is active)."""
    resolved = resolve_example(name)
    if resolved is None:
        raise KeyError(f"unknown example {name!r}; known: {', '.join(sorted(EXAMPLES))}")
    return EXAMPLES[resolved].runner()


def trace_example(name: str) -> tuple[Observation, object]:
    """Run one bundled example inside a fresh observation scope."""
    with observation() as obs:
        result = run_example(name)
    return obs, result


def profile_example(name: str, memory: bool = True) -> tuple[Profile, object]:
    """Run one bundled example inside a fresh profiling scope."""
    with profile(memory=memory) as prof:
        result = run_example(name)
    return prof, result
