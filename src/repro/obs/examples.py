"""Bundled traceable pipelines for ``python -m repro trace`` / ``stats``.

Each example is a self-contained end-to-end pipeline over the paper's
running data — a tabular algebra program, a compiled embedding, or an
OLAP bridge round trip — chosen so the trace shows something meaningful:
nested statement spans, while-loop fixpoints, compiler phases, bridge
conversions.

Examples whose pipeline is "a TA program over a tabular database" also
expose a ``setup`` hook returning ``(db, run)`` separately, so the
lineage CLI can tag the input cells before running — that is what makes
``python -m repro lineage <example>`` and the witness-replay audit work.
The OLAP example stays lineage-incapable: its bridges build cube objects
rather than running a TA program.

This module imports the engine (algebra, schemalog, relational, olap), so
it is deliberately *not* imported from :mod:`repro.obs`'s ``__init__`` —
the operation registry imports the observability runtime, and loading the
engine from the package root would close that cycle.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Callable

from .profile import Profile, profile
from .runtime import Observation, observation

__all__ = [
    "Example",
    "EXAMPLES",
    "ExampleLookupError",
    "resolve_example",
    "resolve_example_strict",
    "run_example",
    "trace_example",
    "profile_example",
]


class ExampleLookupError(KeyError):
    """An example name that resolves to nothing (or to several things).

    Subclasses :class:`KeyError` for backward compatibility; the
    human-readable diagnosis is ``args[0]`` (``str()`` of a KeyError
    wraps it in quotes).
    """


@dataclass(frozen=True)
class Example:
    """One named, runnable pipeline.

    ``setup``, when present, returns ``(db, run)`` — the input
    :class:`~repro.core.database.TabularDatabase` and a callable mapping
    a database to the output database — so callers (the lineage layer)
    can interpose on the input before running.  ``runner`` remains the
    one-shot entry point used by trace/profile.
    """

    name: str
    description: str
    runner: Callable[[], object]
    setup: Callable[[], tuple[object, Callable]] | None = None


def _run_setup(setup: Callable[[], tuple[object, Callable]]) -> Callable[[], object]:
    def runner() -> object:
        db, run = setup()
        return run(db)

    return runner


def _fig4_setup() -> tuple[object, Callable]:
    from ..algebra.programs import parse_program
    from ..core import database
    from ..data import figure4_top

    program = parse_program("Sales <- GROUP by {Region} on {Sold} (Sales)")
    return database(figure4_top()), program.run


def _fig5_setup() -> tuple[object, Callable]:
    from ..algebra.programs import parse_program
    from ..data import sales_info2

    program = parse_program("Sales <- MERGE on {Sold} by {Region} (Sales)")
    return sales_info2(), program.run


def _pivot_setup() -> tuple[object, Callable]:
    from ..algebra.programs import parse_program
    from ..data import sales_info1

    program = parse_program(
        """
        Grouped <- GROUP by {Region} on {Sold} (Sales)
        Cleaned <- CLEANUP by {Part} on {null} (Grouped)
        Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
        """
    )
    return sales_info1(), program.run


def _federation_facts() -> object:
    """The two-source federation the SchemaLog/SchemaSQL examples query."""
    from ..relational import Relation, RelationalDatabase
    from ..schemalog import SchemaLogDatabase

    return SchemaLogDatabase.from_relational(
        RelationalDatabase(
            [
                Relation("east", ["part", "sold"], [("nuts", 50), ("bolts", 70)]),
                Relation("west", ["part", "sold"], [("nuts", 60), ("screws", 50)]),
            ]
        )
    )


def _schemalog_setup() -> tuple[object, Callable]:
    from ..core import database
    from ..schemalog import compile_to_ta, parse_schemalog

    program = parse_schemalog(
        """
        sales[T: part -> P]        :- east[T: part -> P].
        sales[T: sold -> S]        :- east[T: sold -> S].
        sales[T: region -> 'east'] :- east[T: part -> P].
        sales[T: part -> P]        :- west[T: part -> P].
        sales[T: sold -> S]        :- west[T: sold -> S].
        sales[T: region -> 'west'] :- west[T: part -> P].
        """
    )
    return database(_federation_facts().facts_table()), compile_to_ta(program).run


def _schemasql_setup() -> tuple[object, Callable]:
    from ..core import database
    from ..schemasql import compile_to_ta, parse_schemasql

    # The relation-name wildcard ``-> R`` ranges over the federation's
    # source relations — restructuring data *and* metadata in one query.
    query = parse_schemasql(
        "SELECT T.part AS part, R AS region, T.sold AS sold "
        "INTO sales FROM -> R, R T"
    )
    return database(_federation_facts().facts_table()), compile_to_ta(query).run


def _good_setup() -> tuple[object, Callable]:
    from ..good import (
        EdgeAddition,
        GoodEdge,
        GoodNode,
        GoodProgram,
        ObjectGraph,
        Pattern,
        PatternEdge,
        PatternNode,
        compile_to_ta,
        encode_graph,
    )

    graph = ObjectGraph(
        [
            GoodNode.make("p1", "Person", "ann"),
            GoodNode.make("p2", "Person", "bob"),
            GoodNode.make("p3", "Person", "cal"),
        ],
        [
            GoodEdge.make("p1", "parent", "p2"),
            GoodEdge.make("p2", "parent", "p3"),
        ],
    )
    grandparent = Pattern(
        [
            PatternNode.make("X", "Person"),
            PatternNode.make("Y", "Person"),
            PatternNode.make("Z", "Person"),
        ],
        [PatternEdge.make("X", "parent", "Y"), PatternEdge.make("Y", "parent", "Z")],
    )
    program = GoodProgram((EdgeAddition(grandparent, "X", "gp", "Z"),))
    return encode_graph(graph), compile_to_ta(program).run


def _fo_while_setup() -> tuple[object, Callable]:
    from ..relational import (
        Assign,
        Difference,
        FWProgram,
        Join,
        Project,
        Rel,
        Relation,
        RelationalDatabase,
        RenameAttr,
        Union,
        WhileNotEmpty,
        compile_program,
        relational_to_tabular,
    )

    # Transitive closure of a 5-node chain: the while loop iterates until
    # the Delta relation drains, showing the fixpoint in the trace.
    step = Project(
        Join(RenameAttr(Rel("TC"), "Dst", "Mid"), RenameAttr(Rel("E"), "Src", "Mid")),
        ["Src", "Dst"],
    )
    fw = FWProgram(
        [
            Assign("TC", Rel("E")),
            Assign("Delta", Rel("E")),
            WhileNotEmpty(
                "Delta",
                [
                    Assign("New", step),
                    Assign("Delta", Difference(Rel("New"), Rel("TC"))),
                    Assign("TC", Union(Rel("TC"), Rel("Delta"))),
                ],
            ),
        ]
    )
    edges = Relation("E", ["Src", "Dst"], [(i, i + 1) for i in range(1, 5)])
    db = RelationalDatabase([edges])
    ta_program = compile_program(fw, {"E": ("Src", "Dst")})
    return relational_to_tabular(db), ta_program.run


def _olap_bridges() -> object:
    from ..data import figure4_top
    from ..ndim import cube_to_ndtable, ndtable_to_cube
    from ..olap import cube_to_database, cube_to_grouped_table, relation_table_to_cube

    cube = relation_table_to_cube(figure4_top(), ["Part", "Region"], "Sold")
    grouped = cube_to_grouped_table(cube, "Part", "Region")
    per_region = cube_to_database(cube, "Region")
    round_trip = ndtable_to_cube(cube_to_ndtable(cube), cube.dims)
    return (grouped, per_region, round_trip)


def _example(name: str, description: str, setup) -> Example:
    return Example(name, description, _run_setup(setup), setup)


#: All bundled examples, keyed by CLI name.
EXAMPLES: dict[str, Example] = {
    example.name: example
    for example in (
        _example("fig4-group", "Figure 4: GROUP by Region on Sold, as a TA program", _fig4_setup),
        _example("fig5-merge", "Figure 5: MERGE on Sold by Region, as a TA program", _fig5_setup),
        _example("pivot", "the 3-statement compact pivot (GROUP + CLEANUP + PURGE)", _pivot_setup),
        _example("schemalog", "Theorem 4.5: a SchemaLog_d federation program, TA-compiled", _schemalog_setup),
        _example("schemasql", "Section 4.2: a SchemaSQL federation query, TA-compiled", _schemasql_setup),
        _example("good", "Section 4.4: a GOOD edge-addition program on an encoded graph", _good_setup),
        _example("fo-while", "Theorem 4.1: transitive closure in FO+while, TA-compiled", _fo_while_setup),
        Example("olap", "Section 4.3: cube ↔ table bridges (pivot, split, n-dim)", _olap_bridges),
    )
}


def resolve_example(name: str) -> str | None:
    """The full example name for ``name``, accepting unique prefixes.

    ``fig5`` resolves to ``fig5-merge``; an ambiguous or unknown prefix
    resolves to None (use :func:`resolve_example_strict` for the
    diagnosis).
    """
    if name in EXAMPLES:
        return name
    matches = [known for known in sorted(EXAMPLES) if known.startswith(name)]
    return matches[0] if len(matches) == 1 else None


def resolve_example_strict(name: str) -> str:
    """Like :func:`resolve_example`, but failures raise with a diagnosis.

    An ambiguous prefix lists every match; an unknown name lists the
    closest known names ("did you mean").  The CLI turns the raised
    :class:`ExampleLookupError` into a clean non-zero exit.
    """
    if name in EXAMPLES:
        return name
    matches = [known for known in sorted(EXAMPLES) if known.startswith(name)]
    if len(matches) == 1:
        return matches[0]
    if matches:
        raise ExampleLookupError(
            f"ambiguous example name {name!r}: matches " + ", ".join(matches)
        )
    close = difflib.get_close_matches(name, sorted(EXAMPLES), n=3, cutoff=0.4)
    hint = ("; did you mean: " + ", ".join(close)) if close else ""
    raise ExampleLookupError(f"unknown example {name!r}{hint}")


def run_example(name: str) -> object:
    """Run one bundled example (under whatever observation is active)."""
    return EXAMPLES[resolve_example_strict(name)].runner()


def trace_example(name: str) -> tuple[Observation, object]:
    """Run one bundled example inside a fresh observation scope."""
    with observation() as obs:
        result = run_example(name)
    return obs, result


def profile_example(name: str, memory: bool = True) -> tuple[Profile, object]:
    """Run one bundled example inside a fresh profiling scope."""
    with profile(memory=memory) as prof:
        result = run_example(name)
    return prof, result
