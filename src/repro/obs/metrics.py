"""Metrics: per-operation call counts, wall time, and row/column flow.

A :class:`MetricsRegistry` aggregates two kinds of measurements:

* **operation metrics** (:class:`OpMetrics`) — one record per algebra
  operation name, accumulating calls, errors, wall time, and the number
  of tables / data rows / data columns flowing in and out.  Populated by
  the instrumented :data:`repro.algebra.programs.registry.OPERATIONS`
  registry, so every statement-invocable operation is covered without
  touching the operation bodies;
* **counters** — free plain-integer counters (statements executed, while
  iterations, wildcard combinations, …) bumped by the interpreter.

All mutation happens under one lock, so concurrent interpreter threads
can share a registry; snapshots are plain dicts, cheap to JSON-encode.
"""

from __future__ import annotations

import threading

__all__ = ["HIST_BUCKETS_S", "OpMetrics", "MetricsRegistry"]

#: Per-call wall-time histogram bucket upper bounds, in seconds.  The
#: last implicit bucket is +Inf; counts are kept per bucket (not
#: cumulative) and rendered cumulatively by the Prometheus exporter.
HIST_BUCKETS_S = (0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class OpMetrics:
    """Aggregated measurements for one named operation."""

    __slots__ = (
        "name",
        "calls",
        "errors",
        "wall_time",
        "tables_in",
        "tables_out",
        "rows_in",
        "rows_out",
        "cols_in",
        "cols_out",
        "hist",
    )

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.errors = 0
        self.wall_time = 0.0
        self.tables_in = 0
        self.tables_out = 0
        self.rows_in = 0
        self.rows_out = 0
        self.cols_in = 0
        self.cols_out = 0
        #: Per-bucket call counts; index i counts calls with
        #: ``seconds <= HIST_BUCKETS_S[i]``, the last slot is overflow.
        self.hist = [0] * (len(HIST_BUCKETS_S) + 1)

    def observe(self, seconds: float) -> None:
        """Fold one call's wall time into the histogram."""
        for index, bound in enumerate(HIST_BUCKETS_S):
            if seconds <= bound:
                self.hist[index] += 1
                return
        self.hist[-1] += 1

    def as_dict(self) -> dict:
        """A JSON-serializable snapshot of this record."""
        return {
            "calls": self.calls,
            "errors": self.errors,
            "wall_time_ms": round(self.wall_time * 1e3, 6),
            "tables_in": self.tables_in,
            "tables_out": self.tables_out,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "cols_in": self.cols_in,
            "cols_out": self.cols_out,
            "hist": list(self.hist),
        }

    def __repr__(self) -> str:
        return (
            f"OpMetrics({self.name}: {self.calls} calls, "
            f"rows {self.rows_in}->{self.rows_out}, {self.wall_time * 1e3:.3f}ms)"
        )


class MetricsRegistry:
    """Thread-safe aggregation of operation metrics and counters."""

    __slots__ = ("_lock", "_ops", "_counters")

    def __init__(self):
        self._lock = threading.Lock()
        self._ops: dict[str, OpMetrics] = {}
        self._counters: dict[str, int] = {}

    # -- recording ------------------------------------------------------

    def record_op(
        self,
        name: str,
        seconds: float,
        tables_in: int = 0,
        tables_out: int = 0,
        rows_in: int = 0,
        rows_out: int = 0,
        cols_in: int = 0,
        cols_out: int = 0,
        error: bool = False,
    ) -> None:
        """Fold one operation invocation into the per-op record."""
        with self._lock:
            record = self._ops.get(name)
            if record is None:
                record = self._ops[name] = OpMetrics(name)
            record.calls += 1
            record.wall_time += seconds
            record.observe(seconds)
            record.tables_in += tables_in
            record.tables_out += tables_out
            record.rows_in += rows_in
            record.rows_out += rows_out
            record.cols_in += cols_in
            record.cols_out += cols_out
            if error:
                record.errors += 1

    def count(self, name: str, n: int = 1) -> None:
        """Bump a plain counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    # -- inspection -----------------------------------------------------

    def op(self, name: str) -> OpMetrics | None:
        """The record for one operation, or None if never recorded."""
        with self._lock:
            return self._ops.get(name)

    def counter(self, name: str) -> int:
        """The current value of a counter (0 if never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    @property
    def operations(self) -> dict[str, OpMetrics]:
        """All operation records, keyed by name (a shallow copy)."""
        with self._lock:
            return dict(self._ops)

    @property
    def counters(self) -> dict[str, int]:
        """All counters (a copy)."""
        with self._lock:
            return dict(self._counters)

    def is_empty(self) -> bool:
        """True iff nothing has been recorded."""
        with self._lock:
            return not self._ops and not self._counters

    def snapshot(self) -> dict:
        """A JSON-serializable snapshot of everything recorded so far."""
        with self._lock:
            return {
                "operations": {
                    name: record.as_dict()
                    for name, record in sorted(self._ops.items())
                },
                "counters": dict(sorted(self._counters.items())),
            }

    def reset(self) -> None:
        """Drop every record and counter."""
        with self._lock:
            self._ops.clear()
            self._counters.clear()

    def __repr__(self) -> str:
        with self._lock:
            return f"MetricsRegistry({len(self._ops)} ops, {len(self._counters)} counters)"
