"""Workload fingerprinting and the estimator's q-error audit.

Two halves, both consumers of the statistics layer:

* **Fingerprinting** — :func:`fingerprint_program` hashes a *normalized*
  rendering of a TA program: structure (targets, operations, argument
  names, attribute parameters) is kept, entry-valued constants are
  replaced by ``?``.  Two runs of ``SELECTCONST on {Part} = 'nuts'`` and
  ``= 'bolts'`` therefore share a fingerprint, exactly like normalized
  query digests in a database's workload repository.
  :class:`WorkloadLog` subscribes to the live event bus and aggregates
  per-fingerprint call counts, latency percentiles, dispatched-op
  counts, actual cardinalities, and estimate q-errors.

* **The audit** — :func:`stats_audit` replays a corpus (the bundled
  TA-program examples, the synthetic transitive-closure fixpoint, and
  seeded cases from the differential fuzzer's generator,
  :func:`repro.data.programs.random_case`) with ANALYZE stats installed,
  and reports per-op p50/p95/max q-error plus a coverage check that
  every dispatched op kind was scored.  ``python -m repro stats-audit``
  emits the report as machine-readable JSON.

This module is imported lazily from the package root: the corpus runner
pulls in the algebra interpreter and the example pipelines, which the
observability runtime must not load eagerly (the registry imports this
package while the algebra package is still initialising).
"""

from __future__ import annotations

import hashlib
import time
from contextlib import contextmanager
from typing import Iterator, Sequence

from .estimator import QERROR_BUCKETS, EstimateAccuracy, estimation
from .events import EVT, Event, EventBus, event_stream
from .stats import STATS_SCHEMA_VERSION, analyze_database

__all__ = [
    "normalize_program",
    "fingerprint_program",
    "WorkloadLog",
    "stats_audit",
    "DEFAULT_AUDIT_SEEDS",
]

#: Seeded fuzzer cases the audit replays by default: enough programs to
#: dispatch every registered op kind at least once (pinned by a test).
DEFAULT_AUDIT_SEEDS = 48


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    if not ordered:
        return 0.0
    import math

    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------

def _normalize_statement(statement, lines: list[str], depth: int) -> None:
    """One statement's normalized rendering (constants → ``?``).

    Statements are duck-typed (assignments carry ``spec``, while loops
    ``condition``/``body``) so this module never imports the algebra
    package at load time.
    """
    pad = "  " * depth
    spec = getattr(statement, "spec", None)
    if spec is not None:
        from ..algebra.programs.registry import PARAM_ENTRY

        params = []
        for key in sorted(statement.params):
            if spec.params.get(key) == PARAM_ENTRY:
                params.append(f"{key}=?")
            else:
                params.append(f"{key}={statement.params[key]}")
        args = ", ".join(str(a) for a in statement.args)
        rendered = f"{statement.target} <- {spec.name}({'; '.join(params)})({args})"
        lines.append(pad + rendered)
        return
    body = getattr(statement, "body", None)
    if body is not None:
        lines.append(pad + f"while {statement.condition}:")
        for inner in body.statements:
            _normalize_statement(inner, lines, depth + 1)
        return
    lines.append(pad + repr(statement))


def normalize_program(program) -> str:
    """The fingerprint-stable rendering of one TA program."""
    lines: list[str] = []
    for statement in program.statements:
        _normalize_statement(statement, lines, 0)
    return "\n".join(lines)


def fingerprint_program(program) -> str:
    """A 16-hex-digit digest of the normalized program."""
    normalized = normalize_program(program)
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# The workload log
# ----------------------------------------------------------------------

class _FingerprintRecord:
    """Aggregates for one normalized program shape."""

    __slots__ = (
        "fingerprint",
        "normalized",
        "calls",
        "errors",
        "ops",
        "rows_out",
        "estimates",
        "qerror_sum",
        "qerror_max",
        "_latencies",
    )

    def __init__(self, fingerprint: str, normalized: str):
        self.fingerprint = fingerprint
        self.normalized = normalized
        self.calls = 0
        self.errors = 0
        self.ops = 0
        self.rows_out = 0
        self.estimates = 0
        self.qerror_sum = 0.0
        self.qerror_max = 0.0
        self._latencies: list[float] = []

    def snapshot(self) -> dict:
        ordered = sorted(self._latencies)
        return {
            "fingerprint": self.fingerprint,
            "normalized": self.normalized,
            "calls": self.calls,
            "errors": self.errors,
            "ops": self.ops,
            "rows_out": self.rows_out,
            "latency_ms": {
                "p50": round(_percentile(ordered, 0.50) * 1e3, 3),
                "p95": round(_percentile(ordered, 0.95) * 1e3, 3),
                "max": round(ordered[-1] * 1e3, 3) if ordered else 0.0,
            },
            "estimates": self.estimates,
            "q_error": {
                "mean": (
                    round(self.qerror_sum / self.estimates, 3) if self.estimates else 0.0
                ),
                "max": round(self.qerror_max, 3),
            },
        }


class WorkloadLog:
    """Per-fingerprint workload aggregates fed from the event bus.

    Attach to a live bus, then bracket each program run with
    :meth:`track` — events published while a run is open (op
    ``span_finish`` row counts, ``op_estimate`` q-errors) are attributed
    to that run's fingerprint::

        with event_stream() as bus:
            log = WorkloadLog(bus)
            with log.track(program):
                program.run(db)
        print(log.snapshot())
    """

    __slots__ = ("records", "dispatched", "_bus", "_current", "ignored")

    def __init__(self, bus: EventBus | None = None):
        self.records: dict[str, _FingerprintRecord] = {}
        #: Per-op dispatch counts across every event seen (tracked or not):
        #: the audit's coverage check compares these against scored ops.
        self.dispatched: dict[str, int] = {}
        self._current: _FingerprintRecord | None = None
        #: Events that arrived outside any tracked run.
        self.ignored = 0
        self._bus = bus
        if bus is not None:
            bus.attach(self._on_event)

    def _on_event(self, event: Event) -> None:
        if event.kind == "span_finish" and event.data.get("ok", True):
            # Failed dispatches have no actual cardinality to score, so
            # coverage counts completed ops only.
            op = event.data.get("op")
            if op:
                op = str(op)
                self.dispatched[op] = self.dispatched.get(op, 0) + 1
        record = self._current
        if record is None:
            if event.kind in ("span_finish", "op_estimate", "error"):
                self.ignored += 1
            return
        if event.kind == "span_finish":
            record.ops += 1
            record.rows_out += int(event.data.get("rows_out", 0) or 0)
        elif event.kind == "op_estimate":
            q = float(event.data.get("q_error", 1.0))
            record.estimates += 1
            record.qerror_sum += q
            if q > record.qerror_max:
                record.qerror_max = q
        elif event.kind == "error":
            record.errors += 1

    def _record_for(self, program) -> _FingerprintRecord:
        normalized = normalize_program(program)
        fingerprint = hashlib.sha256(normalized.encode("utf-8")).hexdigest()[:16]
        record = self.records.get(fingerprint)
        if record is None:
            record = self.records[fingerprint] = _FingerprintRecord(
                fingerprint, normalized
            )
        return record

    @contextmanager
    def track(self, program) -> Iterator[_FingerprintRecord]:
        """Attribute bus events and latency to ``program``'s fingerprint."""
        record = self._record_for(program)
        record.calls += 1
        previous = self._current
        self._current = record
        started = time.perf_counter()
        try:
            yield record
        except Exception:
            record.errors += 1
            raise
        finally:
            record._latencies.append(time.perf_counter() - started)
            self._current = previous

    def snapshot(self) -> dict:
        """Per-fingerprint aggregates, busiest first."""
        ordered = sorted(
            self.records.values(), key=lambda r: (-r.calls, r.fingerprint)
        )
        return {
            "fingerprints": [record.snapshot() for record in ordered],
            "ignored_events": self.ignored,
        }

    def __repr__(self) -> str:
        return f"WorkloadLog({len(self.records)} fingerprint(s))"


# ----------------------------------------------------------------------
# The q-error audit
# ----------------------------------------------------------------------

def _audit_corpus(seeds: int, tc_size: int) -> list[tuple]:
    """(label, program-runner, database, program, run-kwargs) tuples.

    ``program`` is the recovered TA program when the runner is a plain
    ``Program.run`` (bound method or closure), or None for example
    runners of other source languages — the optimizer pass only rescores
    cases whose program it can rewrite.
    """
    from ..algebra.programs.statements import Program
    from ..data.programs import random_case
    from ..runtime.workloads import parse_workload
    from .examples import EXAMPLES

    corpus: list[tuple] = []
    for name in sorted(EXAMPLES):
        example = EXAMPLES[name]
        if example.setup is None:
            continue  # the OLAP example builds cubes, not a TA run
        db, run = example.setup()
        owner = getattr(run, "__self__", None)
        program = owner if isinstance(owner, Program) else None
        corpus.append((name, run, db, program, {}))
    label, program, db = parse_workload(f"tc:{tc_size}")
    corpus.append((label, program.run, db, program, {}))
    for seed in range(seeds):
        program, db = random_case(seed)
        kwargs = {"max_while_iterations": _FUZZ_WHILE_BUDGET}
        corpus.append(
            (
                f"fuzz:{seed}",
                lambda d, p=program: p.run(
                    d, max_while_iterations=_FUZZ_WHILE_BUDGET
                ),
                db,
                program,
                kwargs,
            )
        )
    return corpus


#: While budget for fuzzer cases (matches the differential harness).
_FUZZ_WHILE_BUDGET = 12


def _accuracy_overall(accuracy: "EstimateAccuracy") -> dict:
    """p50/p95/max over every q-error sample an accuracy sink holds."""
    all_q = [
        q
        for record in accuracy.ops.values()
        for q in record._samples
    ]
    all_q.sort()
    return {
        "estimates": accuracy.count,
        "p50": round(_percentile(all_q, 0.50), 3),
        "p95": round(_percentile(all_q, 0.95), 3),
        "max": round(all_q[-1], 3) if all_q else 0.0,
    }


#: Slack before the optimizer pass counts as a q-error regression: the
#: rewritten plan runs a different op mix (CHAINJOIN replaces whole
#: PRODUCT/SELECT prefixes), so tiny percentile wobbles are expected;
#: a real mis-costed join order blows p95 out by far more than 25%.
OPTIMIZER_REGRESSION_TOLERANCE = 1.25


def stats_audit(
    seeds: int = DEFAULT_AUDIT_SEEDS,
    engine: str = "vector",
    tc_size: int = 6,
    top_k: int | None = None,
    regression_tolerance: float = OPTIMIZER_REGRESSION_TOLERANCE,
) -> dict:
    """Replay the corpus under estimation; the machine-readable report.

    Each case is ANALYZEd first (``engine`` selects the stats path), then
    run with the resulting snapshot installed, so base-table predictions
    are stats-derived and intermediates exercise the shape fallback —
    exactly the mix a cost-based optimizer would see.  Cases raising a
    :class:`~repro.core.errors.ReproError` (the fuzz corpus legitimately
    hits undefined operations) still contribute every op completed
    before the error.

    The audit then makes a second, *post-rewrite* pass: every case whose
    program it can recover is pushed through
    :func:`repro.engine.optimizer.optimize_program` with the same stats
    snapshot and re-run, so the op sequence being scored is the one the
    cost-based optimizer actually chose (CHAINJOIN orders, fused
    selects, pruned projections).  The report's ``optimizer`` section
    carries that pass's q-error percentiles and a ``regressed`` verdict:
    True when the optimizer-chosen plans' p95 q-error exceeds the
    unoptimized baseline by more than ``regression_tolerance`` — the
    CLI turns that into a non-zero exit so CI catches a cost model
    whose rewrites make its own estimates worse.
    """
    from ..core.errors import ReproError
    from ..engine.optimizer import PlanCache, optimize_program
    from .stats import DEFAULT_TOP_K

    accuracy = EstimateAccuracy()
    opt_accuracy = EstimateAccuracy()
    workload = None
    cases = errors = 0
    opt_cases = opt_errors = opt_rewrites = 0
    plan_cache = PlanCache()
    started = time.perf_counter()
    rewritable = []
    with event_stream() as bus:
        workload = WorkloadLog(bus)
        for label, run, db, program, kwargs in _audit_corpus(seeds, tc_size):
            stats = analyze_database(
                db, engine=engine, top_k=top_k or DEFAULT_TOP_K
            )
            cases += 1
            with estimation(stats, accuracy=accuracy):
                try:
                    with workload.track(_LabeledProgram(label, run)):
                        run(db)
                except ReproError:
                    errors += 1
            if program is not None:
                rewritable.append((db, program, kwargs, stats))
    # The post-rewrite pass runs outside the event stream: coverage is a
    # property of the *baseline* corpus, and the rewritten plans dispatch
    # ops (fused PRODUCTSELECT, CHAINJOIN) the baseline never does.
    for db, program, kwargs, stats in rewritable:
        try:
            result = optimize_program(program, stats, cache=plan_cache)
        except ReproError:
            continue
        opt_cases += 1
        opt_rewrites += len(result.applied)
        with estimation(stats, accuracy=opt_accuracy):
            try:
                result.program.run(db, **kwargs)
            except ReproError:
                opt_errors += 1
    elapsed = time.perf_counter() - started

    ops_report = accuracy.snapshot()
    estimated_ops = set(ops_report)
    dispatched = _dispatched_ops(workload)
    missing = sorted(dispatched - estimated_ops)
    overall = _accuracy_overall(accuracy)
    opt_overall = _accuracy_overall(opt_accuracy)
    regressed = (
        opt_overall["estimates"] > 0
        and opt_overall["p95"] > overall["p95"] * regression_tolerance
    )
    return {
        "version": 1,
        "stats_schema_version": STATS_SCHEMA_VERSION,
        "engine": engine,
        "corpus": {
            "cases": cases,
            "errors": errors,
            "fuzz_seeds": seeds,
            "elapsed_s": round(elapsed, 3),
        },
        "buckets": list(QERROR_BUCKETS),
        "ops": ops_report,
        "overall": overall,
        "optimizer": {
            **opt_overall,
            "cases": opt_cases,
            "errors": opt_errors,
            "rewrites": opt_rewrites,
            "ops": opt_accuracy.snapshot(),
            "tolerance": regression_tolerance,
            "baseline_p95": overall["p95"],
            "regressed": regressed,
        },
        "coverage": {
            "dispatched_ops": sorted(dispatched),
            "estimated_ops": sorted(estimated_ops),
            "missing": missing,
            "complete": not missing,
        },
        "workload": workload.snapshot(),
    }


class _LabeledProgram:
    """A corpus entry's stand-in program: fingerprints by its label.

    Example runners close over pre-parsed programs of several source
    languages; the audit's workload log keys them by corpus label
    instead of re-deriving statement structure.
    """

    __slots__ = ("label",)

    def __init__(self, label: str, run):
        self.label = label

    @property
    def statements(self):
        return (self.label,)


def _dispatched_ops(workload: WorkloadLog | None) -> set[str]:
    """Op kinds that actually dispatched, from the bus-fed span events."""
    if workload is None:
        return set()
    return set(workload.dispatched)
