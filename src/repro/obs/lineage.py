"""Cell-level provenance (lineage) through the tabular algebra.

The paper's central claim is that tabular algebra transformations are
*generic and constructive*: every value of an output table is built from
values present in the input.  This module witnesses that claim
executably.  A :class:`Lineage` scope assigns a stable id
(:class:`CellRef`) to every cell of the input tables and threads
*why-provenance sets* through execution, so that afterwards any output
cell can answer "which input cells produced you?" — and a *witness
replay* can re-run the program on just those cells and check that the
queried value is regenerated.

How provenance flows
--------------------

Tables are grids of immutable :class:`~repro.core.symbols.Symbol`
objects, and every algebra operation builds its output by *copying
symbol objects by reference* out of its inputs.  Tagging therefore works
by substituting, for each input cell, a copy of its symbol that carries
a ``prov`` frozenset of :class:`CellRef` ids.  The copies compare and
hash exactly like the originals (provenance never participates in
equality), so execution is bit-for-bit unchanged — but wherever a cell
is copied, moved, pivoted, transposed, or padded into an output table,
its provenance rides along for free, through every operation family,
the program interpreter (including while-loop fixpoints), the compiled
frontends, and the OLAP bridges.

The places where symbols are *created* rather than copied union their
parents' provenance explicitly (guarded by ``OBS.lineage``, off by
default and allocation-free when disabled):

* ``RENAME`` — the new attribute inherits the renamed cell's lineage;
* ``PRODUCT`` — the combined row attribute accumulates the lineage of
  *both* argument rows, so join ancestry survives later projections
  (column 0 can never be projected away);
* ``CLEAN-UP``/``PURGE`` — a merged row/column cell unions the lineage
  of the whole merged group;
* ``TUPLENEW``/``SETNEW`` — a fresh tag carries the lineage of the
  row(s) it identifies.

Typical use::

    from repro.obs import lineage

    with lineage() as lin:
        tagged = lin.tag_database(db)
        out = program.run(tagged)
    report = lin.witness(out.table("Sales"), row=2, col=3)
    print(lin.describe_witness(report))
    assert lin.replay_check(program.run, report).regenerated

The witness of an output cell is its own origin set plus the origins of
every cell in its row (rows are the algebra's unit of combination, so
this closure captures selection conditions, join partners, and MERGE
providers).  The replay restricts every input table to its witness rows
(attribute rows are always kept), re-executes, and succeeds iff some
output cell carries the queried origins again with the same value.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, NamedTuple, Sequence

from ..core.database import TabularDatabase
from ..core.symbols import Name, Null, Symbol, TaggedValue, Value
from ..core.table import Table
from . import runtime as _runtime

__all__ = [
    "CellRef",
    "Lineage",
    "Witness",
    "ReplayCheck",
    "AuditResult",
    "lineage",
    "with_prov",
    "provenance",
    "derived_from",
    "count_prov_cells",
    "table_origins",
    "audit_run",
    "provenance_graph",
    "graph_to_dot",
]

#: The shared empty provenance set.
EMPTY_PROV: frozenset = frozenset()


class CellRef(NamedTuple):
    """A stable id for one input cell: (source-table ordinal, row, col).

    The ordinal indexes the :class:`Lineage` scope's tagged sources in
    tagging order (for one tagged database, its canonical table order);
    row/col are grid coordinates, so ``(t, 0, 0)`` is a table name,
    ``(t, 0, j)`` a column attribute, and ``(t, i, 0)`` a row attribute.
    """

    table: int
    row: int
    col: int


class _ProvName(Name):
    """A :class:`Name` copy carrying cell provenance."""

    __slots__ = ("prov",)


class _ProvValue(Value):
    """A :class:`Value` copy carrying cell provenance."""

    __slots__ = ("prov",)


class _ProvTagged(TaggedValue):
    """A :class:`TaggedValue` copy carrying cell provenance."""

    __slots__ = ("prov",)


class _ProvNull(Null):
    """A ⊥ instance carrying cell provenance.

    Unlike the :data:`~repro.core.symbols.NULL` singleton, provenance
    nulls are per-cell instances — they still compare and hash equal to
    every other null.
    """

    __slots__ = ("prov",)

    def __new__(cls) -> "_ProvNull":
        return object.__new__(cls)


def with_prov(symbol: Symbol, prov: frozenset) -> Symbol:
    """A copy of ``symbol`` carrying ``prov`` (equal to the original)."""
    if isinstance(symbol, TaggedValue):
        copy: Symbol = _ProvTagged(symbol.payload)
    elif isinstance(symbol, Name):
        copy = _ProvName(symbol.text)
    elif isinstance(symbol, Value):
        copy = _ProvValue(symbol.payload)
    elif isinstance(symbol, Null):
        copy = _ProvNull()
    else:  # pragma: no cover - no other symbol sorts exist
        return symbol
    object.__setattr__(copy, "prov", prov)
    return copy


def provenance(symbol: Symbol) -> frozenset:
    """The why-provenance set of ``symbol`` (empty for untagged symbols)."""
    prov = symbol.prov
    return prov if prov is not None else EMPTY_PROV


def derived_from(symbol: Symbol, parents: Iterable[Symbol]) -> Symbol:
    """``symbol`` carrying the union of its own and its parents' lineage.

    Returns ``symbol`` unchanged when the union adds nothing, so the
    call is allocation-free for untagged data.  This is the union point
    the operation families call at their symbol-*creating* sites.
    """
    merged: set | None = None
    for parent in parents:
        prov = parent.prov
        if prov:
            if merged is None:
                merged = set(prov)
            else:
                merged |= prov
    if not merged:
        return symbol
    own = provenance(symbol)
    if merged <= own:
        return symbol
    return with_prov(symbol, own | frozenset(merged))


def count_prov_cells(tables: Iterable[Table]) -> int:
    """How many grid cells across ``tables`` carry non-empty lineage."""
    total = 0
    for table in tables:
        for row in table.grid:
            for symbol in row:
                if symbol.prov:
                    total += 1
    return total


def table_origins(tables: Iterable[Table]) -> frozenset:
    """The union of every cell's provenance across ``tables``."""
    out: set = set()
    for table in tables:
        for row in table.grid:
            for symbol in row:
                prov = symbol.prov
                if prov:
                    out |= prov
    return frozenset(out)


@dataclass(frozen=True)
class Witness:
    """The answer to one cell-level why-provenance query.

    ``origins`` is the queried cell's own where-provenance (the input
    cells its value was copied/derived from); ``rows`` is the why-
    provenance closure at row grain — per source-table ordinal, the
    input data rows that the queried cell's whole output row was built
    from.  The replay checker re-executes on exactly these rows.
    """

    table: str
    row: int
    col: int
    symbol: Symbol
    origins: tuple[CellRef, ...]
    rows: tuple[tuple[int, tuple[int, ...]], ...]

    @property
    def cells(self) -> int:
        """Total input cells named by the row-closure witness."""
        return sum(len(rows) for _ordinal, rows in self.rows)


@dataclass(frozen=True)
class ReplayCheck:
    """The outcome of one witness replay."""

    witness: Witness
    regenerated: bool
    matches: int
    replayed_tables: int


@dataclass(frozen=True)
class AuditResult:
    """The outcome of the constructivity audit over one program run."""

    name: str
    queried: int
    regenerated: int
    constants: int
    replays: int
    failures: tuple[tuple[str, int, int], ...]

    @property
    def ok(self) -> bool:
        return not self.failures


class Lineage:
    """One provenance scope: tagged sources, queries, and replay.

    Install with :func:`lineage`; tag inputs with :meth:`tag_database`
    (or :meth:`tag_table`); run any program/pipeline on the tagged
    tables; then query output cells with :meth:`witness` and audit with
    :meth:`replay_check`.
    """

    def __init__(self):
        self._labels: list[str] = []
        self._sources: list[Table] = []

    # -- tagging --------------------------------------------------------

    def tag_table(self, table: Table, label: str | None = None) -> Table:
        """A copy of ``table`` whose every cell carries its own CellRef."""
        ordinal = len(self._sources)
        tagged = Table(
            tuple(
                with_prov(symbol, frozenset((CellRef(ordinal, i, j),)))
                for j, symbol in enumerate(row)
            )
            for i, row in enumerate(table.grid)
        )
        self._labels.append(label if label is not None else str(table.name))
        self._sources.append(tagged)
        return tagged

    def tag_database(self, db: TabularDatabase) -> TabularDatabase:
        """A database with every table tagged (canonical table order).

        Tables sharing a name are labelled ``Name#0``, ``Name#1``, … in
        canonical order so cell ids stay unambiguous.
        """
        names = [str(t.name) for t in db.tables]
        seen: dict[str, int] = {}
        tagged = []
        for table, name in zip(db.tables, names):
            if names.count(name) > 1:
                label = f"{name}#{seen.get(name, 0)}"
                seen[name] = seen.get(name, 0) + 1
            else:
                label = name
            tagged.append(self.tag_table(table, label))
        return TabularDatabase(tagged)

    # -- inspection -----------------------------------------------------

    @property
    def sources(self) -> tuple[Table, ...]:
        """The tagged source tables, by ordinal."""
        return tuple(self._sources)

    def label(self, ordinal: int) -> str:
        """The display label of source ``ordinal`` (e.g. ``Sales#1``)."""
        return self._labels[ordinal]

    def origin_symbol(self, ref: CellRef) -> Symbol:
        """The input symbol a :class:`CellRef` points at."""
        return self._sources[ref.table].entry(ref.row, ref.col)

    def describe_ref(self, ref: CellRef) -> str:
        """A human-readable rendering, e.g. ``Sales[2,3]='nuts'``."""
        return (
            f"{self.label(ref.table)}[{ref.row},{ref.col}]"
            f"={self.origin_symbol(ref)!s}"
        )

    # -- queries --------------------------------------------------------

    def why(self, table: Table, row: int, col: int) -> frozenset:
        """The where-provenance of one output cell (a CellRef frozenset)."""
        return provenance(table.entry(row, col))

    def witness(self, table: Table, row: int, col: int, label: str | None = None) -> Witness:
        """The why-provenance witness of output cell ``table[row, col]``.

        Origins are the cell's own lineage; the row closure unions the
        lineage of every cell in the output row (plus the cell's column
        attribute), capturing the join partners, selection conditions,
        and MERGE providers the cell's presence depends on.  An
        attribute-row cell (``row == 0``) closes over its *column*
        instead: a pivoted column attribute exists because of the data
        rows that spawned the column, so those rows are its witness.
        """
        origins = provenance(table.entry(row, col))
        closure: set = set(origins)
        if row == 0:
            for i in range(table.nrows):
                prov = table.entry(i, col).prov
                if prov:
                    closure |= prov
        else:
            for symbol in table.row(row):
                prov = symbol.prov
                if prov:
                    closure |= prov
            header_prov = table.entry(0, col).prov
            if header_prov:
                closure |= header_prov
        rows_by_source: dict[int, set[int]] = {}
        for ref in closure:
            if ref.row > 0:
                rows_by_source.setdefault(ref.table, set()).add(ref.row)
        return Witness(
            table=label if label is not None else str(table.name),
            row=row,
            col=col,
            symbol=table.entry(row, col),
            origins=tuple(sorted(origins)),
            rows=tuple(
                (ordinal, tuple(sorted(rows)))
                for ordinal, rows in sorted(rows_by_source.items())
            ),
        )

    def describe_witness(self, witness: Witness) -> str:
        """A multi-line human-readable witness report."""
        lines = [
            f"cell {witness.table}[{witness.row},{witness.col}] = {witness.symbol!s}"
        ]
        if witness.origins:
            lines.append("copied from:")
            for ref in witness.origins:
                lines.append(f"  {self.describe_ref(ref)}")
        else:
            lines.append("copied from: (no input cell — constant, padding, or fresh value)")
        if witness.rows:
            lines.append(f"witness rows ({witness.cells} input rows):")
            for ordinal, rows in witness.rows:
                rendered = ", ".join(str(i) for i in rows)
                lines.append(f"  {self.label(ordinal)}: rows {rendered}")
        else:
            lines.append("witness rows: (none — the cell depends on no input data row)")
        return "\n".join(lines)

    # -- witness replay -------------------------------------------------

    def restrict(self, witness: Witness) -> TabularDatabase:
        """The input database cut down to the witness rows.

        Every tagged source keeps its attribute row (row 0) and exactly
        the witness data rows; sources contributing nothing become
        header-only (empty) tables.  Cell ids are preserved, so a replay
        on the restriction produces comparable provenance.
        """
        rows_by_source = dict(witness.rows)
        restricted = []
        for ordinal, source in enumerate(self._sources):
            keep = set(rows_by_source.get(ordinal, ()))
            drop = [i for i in source.data_row_indices() if i not in keep]
            restricted.append(source.drop_rows(drop) if drop else source)
        return TabularDatabase(restricted)

    def replay_check(
        self,
        run: Callable[[TabularDatabase], TabularDatabase],
        witness: Witness,
        replayed: TabularDatabase | None = None,
    ) -> ReplayCheck:
        """Re-execute on the witness rows and check the cell regenerates.

        ``run`` maps an input database to an output database (usually
        ``program.run``).  The check succeeds iff some replayed output
        cell carries at least the queried cell's origins and matches its
        value (fresh tagged values match by lineage alone, since replay
        may renumber tags).  Cells with no origins are constants —
        vacuously constructive — and succeed with zero matches.
        Pass ``replayed`` to reuse a previously computed replay output
        for the same witness rows.
        """
        if not witness.origins:
            return ReplayCheck(witness=witness, regenerated=True, matches=0, replayed_tables=0)
        if replayed is not None:
            out = replayed
        else:
            # Replay under this scope so the algebra's provenance-union
            # hooks stay live even when called after the original
            # ``lineage()`` block has exited.
            previous = _runtime.OBS.lineage
            _runtime.OBS.lineage = self
            try:
                out = run(self.restrict(witness))
            finally:
                _runtime.OBS.lineage = previous
        origins = frozenset(witness.origins)
        target = witness.symbol
        target_tagged = isinstance(target, TaggedValue)
        matches = 0
        for table in out:
            for row in table.grid:
                for symbol in row:
                    prov = symbol.prov
                    if prov and origins <= prov:
                        if (target_tagged and isinstance(symbol, TaggedValue)) or (
                            not target_tagged and symbol == target
                        ):
                            matches += 1
        return ReplayCheck(
            witness=witness,
            regenerated=matches > 0,
            matches=matches,
            replayed_tables=len(out),
        )


@contextmanager
def lineage() -> Iterator[Lineage]:
    """Activate a provenance scope (off by default; scopes nest).

    Only tables tagged through the yielded :class:`Lineage` carry cell
    ids; the scope's only global effect is enabling the provenance
    unions at the algebra's symbol-creating sites and the provenance
    annotations on EXPLAIN spans (when an observation is also active).
    """
    lin = Lineage()
    previous = _runtime.OBS.lineage
    _runtime.OBS.lineage = lin
    try:
        yield lin
    finally:
        _runtime.OBS.lineage = previous


def _output_labels(db: TabularDatabase) -> list[str]:
    names = [str(t.name) for t in db.tables]
    seen: dict[str, int] = {}
    labels = []
    for name in names:
        if names.count(name) > 1:
            labels.append(f"{name}#{seen.get(name, 0)}")
            seen[name] = seen.get(name, 0) + 1
        else:
            labels.append(name)
    return labels


def audit_run(
    run: Callable[[TabularDatabase], TabularDatabase],
    db: TabularDatabase,
    name: str = "program",
) -> AuditResult:
    """The constructivity audit: witness-replay every output cell.

    Tags ``db``, executes ``run``, and for *every* grid cell of every
    output table answers the why-provenance query and replays the
    program on the witness rows, checking the cell regenerates.  Replays
    are cached per distinct witness row set, so the audit costs one
    execution per distinct witness rather than one per cell.
    """
    with lineage() as lin:
        tagged = lin.tag_database(db)
        out = run(tagged)
        labels = _output_labels(out)
        queried = regenerated = constants = 0
        failures: list[tuple[str, int, int]] = []
        replay_cache: dict[tuple, TabularDatabase] = {}
        for table, label in zip(out.tables, labels):
            for i in range(table.nrows):
                for j in range(table.ncols):
                    queried += 1
                    witness = lin.witness(table, i, j, label=label)
                    if not witness.origins:
                        constants += 1
                        regenerated += 1
                        continue
                    key = witness.rows
                    if key not in replay_cache:
                        replay_cache[key] = run(lin.restrict(witness))
                    check = lin.replay_check(run, witness, replayed=replay_cache[key])
                    if check.regenerated:
                        regenerated += 1
                    else:
                        failures.append((label, i, j))
        return AuditResult(
            name=name,
            queried=queried,
            regenerated=regenerated,
            constants=constants,
            replays=len(replay_cache),
            failures=tuple(failures),
        )


# ----------------------------------------------------------------------
# Provenance graph (DOT / JSON export data)
# ----------------------------------------------------------------------


def provenance_graph(
    lin: Lineage,
    out_db: TabularDatabase,
    name: str = "provenance",
) -> dict:
    """A bipartite lineage graph: input cells → the output cells they feed.

    Nodes are input cells (those actually cited by some output cell) and
    output cells carrying lineage; one edge per (origin, output cell)
    pair.  The dict is JSON-serializable; render with
    :func:`graph_to_dot` or :func:`repro.obs.export.write_provenance_json`.
    """
    labels = _output_labels(out_db)
    inputs: dict[CellRef, dict] = {}
    outputs: list[dict] = []
    edges: list[dict] = []
    for table, label in zip(out_db.tables, labels):
        for i in range(table.nrows):
            for j in range(table.ncols):
                prov = table.entry(i, j).prov
                if not prov:
                    continue
                out_id = f"out:{label}[{i},{j}]"
                outputs.append(
                    {
                        "id": out_id,
                        "table": label,
                        "row": i,
                        "col": j,
                        "value": str(table.entry(i, j)),
                    }
                )
                for ref in sorted(prov):
                    if ref not in inputs:
                        inputs[ref] = {
                            "id": f"in:{lin.label(ref.table)}[{ref.row},{ref.col}]",
                            "table": lin.label(ref.table),
                            "row": ref.row,
                            "col": ref.col,
                            "value": str(lin.origin_symbol(ref)),
                        }
                    edges.append({"from": inputs[ref]["id"], "to": out_id})
    return {
        "name": name,
        "inputs": [inputs[ref] for ref in sorted(inputs)],
        "outputs": outputs,
        "edges": edges,
    }


def _dot_quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def graph_to_dot(graph: dict, subgraph: bool = False) -> str:
    """Render one provenance graph as Graphviz DOT.

    ``subgraph=True`` emits a ``subgraph cluster_…`` block so several
    example graphs can be concatenated into one ``digraph`` (the CLI's
    ``--audit --dot`` export does exactly that).
    """
    name = graph.get("name", "provenance")
    lines: list[str] = []
    indent = "    " if subgraph else "  "
    if subgraph:
        safe = "".join(ch if ch.isalnum() else "_" for ch in name)
        lines.append(f"  subgraph cluster_{safe} {{")
        lines.append(f"    label={_dot_quote(name)};")
    else:
        lines.append(f"digraph {_dot_quote(name)} {{")
        lines.append("  rankdir=LR;")
        lines.append("  node [shape=box, fontsize=10];")
    prefix = f"{name}/" if subgraph else ""
    for node in graph["inputs"]:
        label = f"{node['table']}[{node['row']},{node['col']}]\\n{node['value']}"
        lines.append(
            f"{indent}{_dot_quote(prefix + node['id'])} "
            f"[label={_dot_quote(label)}, style=filled, fillcolor=lightyellow];"
        )
    for node in graph["outputs"]:
        label = f"{node['table']}[{node['row']},{node['col']}]\\n{node['value']}"
        lines.append(f"{indent}{_dot_quote(prefix + node['id'])} [label={_dot_quote(label)}];")
    for edge in graph["edges"]:
        lines.append(
            f"{indent}{_dot_quote(prefix + edge['from'])} -> {_dot_quote(prefix + edge['to'])};"
        )
    lines.append("  }" if subgraph else "}")
    return "\n".join(lines)
