"""Per-operation cost model and the EXPLAIN ANALYZE report.

A :class:`CostModel` predicts, from input shapes alone, what each tabular
algebra operation will produce — result tables, rows, cells — and how
long it should take, via an abstract *cost unit* (≈ one grid cell
touched) scaled by a nanoseconds-per-unit constant.  The estimators are
deliberately simple shape heuristics in the spirit of a textbook query
optimizer: the querying family (σ/π-style SELECT, PROJECT, …) is linear
in cells, the restructuring family (GROUP, MERGE, SPLIT, the pivot
chain) reshapes rows into columns and back with group-count guesses, and
the tagging family carries SETNEW's power-set blowup.  Every operation
registered in :data:`repro.algebra.programs.registry.OPERATIONS` has an
estimator (pinned by a test).

EXPLAIN ANALYZE pairs those predictions with what actually happened: the
instrumented registry stamps each operation span with its per-table
input shapes (``shapes_in``) and real output shape, so
:func:`analyze_records` can walk an :class:`~repro.obs.runtime.Observation`
and report estimated vs. actual rows and time with mis-estimation
ratios, exactly like a database engine's ``EXPLAIN ANALYZE``.

>>> from repro.obs import observation
>>> from repro.algebra.programs import parse_program
>>> from repro.data import sales_info2
>>> with observation() as obs:
...     _ = parse_program("Sales <- MERGE on {Sold} by {Region} (Sales)").run(sales_info2())
>>> rec = analyze_records(obs)[0]
>>> rec["op"], rec["act_rows"]
('MERGE', 12)
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core import N, V, Table, make_table, render_table
from .runtime import Observation
from .trace import Span

__all__ = [
    "CostEstimate",
    "CostModel",
    "DEFAULT_MODEL",
    "analyze_records",
    "analyze_table",
    "explain_analyze_text",
]

#: One shape is a ``(rows, cols)`` pair for a single table.
Shape = tuple[int, int]

#: Default conversion from cost units (≈ cells touched) to seconds.
#: 150ns/cell is representative of the pure-Python engine on current
#: hardware; :meth:`CostModel.calibrated` re-measures it in-process.
DEFAULT_NS_PER_UNIT = 150.0

#: Cap on the SETNEW power-set exponent so estimates stay finite.
_SETNEW_CAP = 30


@dataclass(frozen=True)
class CostEstimate:
    """What the model predicts for one operation invocation."""

    op: str
    tables_out: int
    rows_out: int
    cols_out: int
    cost_units: float

    @property
    def cells_out(self) -> int:
        """Predicted size of the result grid."""
        return self.rows_out * self.cols_out

    def as_dict(self) -> dict:
        return {
            "op": self.op,
            "tables_out": self.tables_out,
            "rows_out": self.rows_out,
            "cols_out": self.cols_out,
            "cells_out": self.cells_out,
            "cost_units": round(self.cost_units, 3),
        }


def _cells(shapes: Sequence[Shape]) -> int:
    return sum(rows * cols for rows, cols in shapes)


def _first(shapes: Sequence[Shape]) -> Shape:
    return shapes[0] if shapes else (0, 0)


def _second(shapes: Sequence[Shape]) -> Shape:
    return shapes[1] if len(shapes) > 1 else (0, 0)


def _groups(rows: int) -> int:
    """Guessed number of distinct grouping values: √rows, at least one.

    Without value statistics the square-root rule is the classic
    textbook stand-in for group cardinality; mis-estimates show up in
    the ANALYZE ratios rather than being hidden.
    """
    return max(1, math.isqrt(max(0, rows)))


# Each estimator maps input shapes to (tables_out, rows_out, cols_out).
# Cost units are computed uniformly afterwards as cells_in + cells_out,
# except where an estimator returns an explicit fourth element (used by
# the quadratic and exponential operations).
_Est = Callable[[Sequence[Shape]], tuple]


def _linear(rows_factor: float = 1.0, cols_factor: float = 1.0, cols_delta: int = 0) -> _Est:
    def estimate(shapes: Sequence[Shape]) -> tuple:
        rows, cols = _first(shapes)
        return (1, max(0, round(rows * rows_factor)), max(0, round(cols * cols_factor) + cols_delta))

    return estimate


def _union(shapes: Sequence[Shape]) -> tuple:
    # Fig. 3 shape law: heights add, schemes concatenate.
    (r1, c1), (r2, c2) = _first(shapes), _second(shapes)
    return (1, r1 + r2, c1 + c2)


def _difference(shapes: Sequence[Shape]) -> tuple:
    r1, c1 = _first(shapes)
    return (1, max(1, r1 // 2), c1)


def _intersection(shapes: Sequence[Shape]) -> tuple:
    (r1, c1), (r2, _c2) = _first(shapes), _second(shapes)
    return (1, max(0, min(r1, r2) // 2), c1)


def _product(shapes: Sequence[Shape]) -> tuple:
    # Quadratic: every row pair is materialized.
    (r1, c1), (r2, c2) = _first(shapes), _second(shapes)
    rows, cols = r1 * r2, c1 + c2
    return (1, rows, cols, _cells(shapes) + rows * cols)


def _product_select(shapes: Sequence[Shape]) -> tuple:
    # Fused σ(ρ × σ): the pair scan still bounds the cost, but only the
    # selected rows (1/3, matching the SELECT selectivity guess) are
    # materialized.
    (r1, c1), (r2, c2) = _first(shapes), _second(shapes)
    rows, cols = max(1, (r1 * r2) // 3), c1 + c2
    return (1, rows, cols, _cells(shapes) + r1 * r2 + rows * cols)


def _chain_join(shapes: Sequence[Shape]) -> tuple:
    # The optimizer's reordered PRODUCT/σ chain (variadic): full product
    # of the leaves with one SELECT-style 1/3 selectivity guess — the
    # shape model cannot see how many conditions the chain carries.
    rows, cols = 1, 0
    for r, c in shapes:
        rows *= r
        cols += c
    rows = max(1, rows // 3)
    return (1, rows, cols, _cells(shapes) + rows * cols)


def _natural_join(shapes: Sequence[Shape]) -> tuple:
    (r1, c1), (r2, c2) = _first(shapes), _second(shapes)
    rows = max(r1, r2)
    cols = max(c1, c2)
    # Join cost is dominated by the pair scan before matching prunes it.
    return (1, rows, cols, _cells(shapes) + r1 * r2 + rows * cols)


def _group(shapes: Sequence[Shape]) -> tuple:
    # GROUP spreads the on-columns under one block per group: the width
    # grows with the data (Figure 4: 8×3 → 9×9), the height gains the
    # per-group summary rows.
    rows, cols = _first(shapes)
    groups = _groups(rows)
    return (1, rows + groups, max(1, cols - 2) + rows)


def _group_compact(shapes: Sequence[Shape]) -> tuple:
    rows, cols = _first(shapes)
    groups = _groups(rows)
    return (1, max(1, rows - groups), max(1, cols - 2) + groups)


def _merge(shapes: Sequence[Shape]) -> tuple:
    # MERGE unfolds each spread column back into rows (Figure 5:
    # 4×5 → 12×3): spread ≈ all but the on/by columns.
    rows, cols = _first(shapes)
    spread = max(1, cols - 2)
    return (1, rows * spread, cols - spread + 1)


def _merge_compact(shapes: Sequence[Shape]) -> tuple:
    tables, rows, cols = _merge(shapes)[:3]
    return (tables, max(1, round(rows * 0.75)), cols)


def _split(shapes: Sequence[Shape]) -> tuple:
    rows, cols = _first(shapes)
    parts = _groups(rows)
    return (parts, rows, max(1, cols - 1))


def _collapse(shapes: Sequence[Shape]) -> tuple:
    rows = sum(shape[0] for shape in shapes)
    cols = max((shape[1] for shape in shapes), default=0)
    return (1, rows, cols + 1)


def _transpose(shapes: Sequence[Shape]) -> tuple:
    rows, cols = _first(shapes)
    return (1, cols, rows)


def _cleanup(shapes: Sequence[Shape]) -> tuple:
    rows, cols = _first(shapes)
    return (1, max(1, rows - _groups(rows)), cols)


def _purge(shapes: Sequence[Shape]) -> tuple:
    rows, cols = _first(shapes)
    return (1, rows, max(1, cols - _groups(cols)))


def _setnew(shapes: Sequence[Shape]) -> tuple:
    # The power-set construct: one fresh tag per subset of the domain.
    rows, cols = _first(shapes)
    subsets = 2 ** min(rows, _SETNEW_CAP)
    return (1, subsets, cols + 1, _cells(shapes) + subsets * (cols + 1))


#: Estimators for every registered operation name.
ESTIMATORS: dict[str, _Est] = {
    # Traditional (querying) family — linear in cells.
    "UNION": _union,
    "DIFFERENCE": _difference,
    "INTERSECTION": _intersection,
    "PRODUCT": _product,
    "RENAME": _linear(),
    "PROJECT": _linear(cols_factor=0.5),
    "SELECT": _linear(rows_factor=1 / 3),
    "SELECTCONST": _linear(rows_factor=1 / 3),
    # Restructuring family — rows trade places with columns.
    "GROUP": _group,
    "MERGE": _merge,
    "SPLIT": _split,
    "COLLAPSE": _collapse,
    # Transposition.
    "TRANSPOSE": _transpose,
    "SWITCH": _transpose,
    # Redundancy removal (the pivot chain's tail).
    "CLEANUP": _cleanup,
    "PURGE": _purge,
    # Tagging.
    "TUPLENEW": _linear(cols_delta=1),
    "SETNEW": _setnew,
    # Derived operations.
    "PRODUCTSELECT": _product_select,
    "CHAINJOIN": _chain_join,
    "CLASSICALUNION": _union,
    "NATURALJOIN": _natural_join,
    "DEDUP": _linear(rows_factor=0.75),
    "DEDUPCOLUMNS": _linear(cols_factor=0.75),
    "DROPNULLROWS": _linear(rows_factor=0.75),
    "CONSTCOLUMN": _linear(cols_delta=1),
    "GROUPCOMPACT": _group_compact,
    "MERGECOMPACT": _merge_compact,
    "COLLAPSECOMPACT": _collapse,
}


class CostModel:
    """Shape-based estimates for every registered TA operation."""

    __slots__ = ("ns_per_unit",)

    def __init__(self, ns_per_unit: float = DEFAULT_NS_PER_UNIT):
        self.ns_per_unit = float(ns_per_unit)

    def covers(self, op: str) -> bool:
        """True iff the model has an estimator for ``op``."""
        return op in ESTIMATORS

    def estimate(self, op: str, shapes_in: Sequence[Shape]) -> CostEstimate | None:
        """The prediction for one invocation, or None for unknown ops."""
        estimator = ESTIMATORS.get(op)
        if estimator is None:
            return None
        shapes = [(int(rows), int(cols)) for rows, cols in shapes_in]
        result = estimator(shapes)
        tables_out, rows_out, cols_out = result[:3]
        cost = result[3] if len(result) > 3 else _cells(shapes) + rows_out * cols_out
        # Every invocation pays a constant dispatch overhead on top of
        # the data-proportional work (dominant on the paper's toy tables).
        return CostEstimate(op, tables_out, rows_out, cols_out, float(cost) + 50.0)

    def estimate_seconds(self, estimate: CostEstimate) -> float:
        """The predicted wall time for one estimate."""
        return estimate.cost_units * self.ns_per_unit * 1e-9

    @classmethod
    def calibrated(cls) -> "CostModel":
        """A model whose time constant was measured in-process.

        Runs a short GROUP loop on a synthetic table and divides the
        best wall time by the model's own cost units, so estimates are
        in this machine's (and Python's) terms.
        """
        from ..algebra import group
        from ..data import synthetic_sales_table

        table = synthetic_sales_table(n_parts=25, n_regions=4, seed=7)
        probe = cls()
        estimate = probe.estimate("GROUP", [(table.height, table.width)])
        assert estimate is not None
        best = math.inf
        for _ in range(5):
            start = time.perf_counter()
            group(table, by="Region", on="Sold")
            best = min(best, time.perf_counter() - start)
        return cls(ns_per_unit=max(1.0, best * 1e9 / estimate.cost_units))


#: The shared default model used by ``repro trace --analyze``.
DEFAULT_MODEL = CostModel()


def _ratio(actual: float, estimated: float) -> float | None:
    """actual / estimated, guarded against a zero estimate."""
    if estimated <= 0:
        return None
    return actual / estimated


def analyze_records(obs: Observation, model: CostModel | None = None) -> list[dict]:
    """One record per analyzed operation span, in execution order.

    A span is analyzable when the instrumented registry stamped it with
    ``shapes_in`` and the model covers its name.  Each record carries
    the estimated and actual rows/tables/time plus ``row_ratio`` and
    ``time_ratio`` (actual ÷ estimated; > 1 means the model guessed low).
    """
    model = model or DEFAULT_MODEL
    records: list[dict] = []
    for root in obs.spans:
        for span in root.walk():
            record = _analyze_span(span, model)
            if record is not None:
                records.append(record)
    return records


def _analyze_span(span: Span, model: CostModel) -> dict | None:
    shapes_in = span.attributes.get("shapes_in")
    if shapes_in is None:
        return None
    estimate = model.estimate(span.name, shapes_in)
    if estimate is None:
        return None
    # An estimation scope stamps its own (possibly stats-derived)
    # prediction onto the span; it takes precedence over the shape
    # heuristics so EXPLAIN shows what the estimator actually predicted.
    est_rows = span.attributes.get("est_rows")
    est_source = span.attributes.get("est_source")
    if est_rows is None:
        est_rows = estimate.rows_out
        est_source = "model"
    act_rows = int(span.attributes.get("rows_out", 0))
    act_tables = int(span.attributes.get("tables_out", 0))
    act_seconds = span.duration
    est_seconds = model.estimate_seconds(estimate)
    q = max(max(est_rows, 1), max(act_rows, 1)) / min(max(est_rows, 1), max(act_rows, 1))
    return {
        "op": span.name,
        "est_tables": estimate.tables_out,
        "act_tables": act_tables,
        "est_rows": int(est_rows),
        "est_source": est_source,
        "act_rows": act_rows,
        "row_ratio": _ratio(act_rows, est_rows),
        "q_error": round(q, 3),
        "est_cells": estimate.cells_out,
        "cost_units": round(estimate.cost_units, 1),
        "est_ms": est_seconds * 1e3,
        "act_ms": act_seconds * 1e3,
        "time_ratio": _ratio(act_seconds, est_seconds),
        "error": span.error,
    }


def _format_ratio(ratio: float | None) -> str:
    if ratio is None:
        return "?"
    return f"{ratio:.2f}x"


def analyze_table(
    obs: Observation, model: CostModel | None = None, timings: bool = True
) -> Table | None:
    """The ANALYZE comparison as a renderable table (None when empty).

    ``timings=False`` drops the wall-clock columns, leaving the purely
    structural rows/ratio comparison deterministic for golden tests.
    """
    records = analyze_records(obs, model)
    if not records:
        return None
    # The source column appears only when an estimation scope actually
    # stamped estimates, keeping the plain-analyze golden output stable.
    sourced = any(record["est_source"] != "model" for record in records)
    columns = ["Est rows", "Act rows", "Row ratio"]
    if sourced:
        columns.append("Src")
    if timings:
        columns += ["Est ms", "Act ms", "Time ratio"]
    rows = []
    for record in records:
        row = [
            record["est_rows"],
            record["act_rows"],
            N(_format_ratio(record["row_ratio"])),
        ]
        if sourced:
            row.append(N(record["est_source"]))
        if timings:
            row += [
                V(round(record["est_ms"], 3)),
                V(round(record["act_ms"], 3)),
                N(_format_ratio(record["time_ratio"])),
            ]
        rows.append(row)
    return make_table(
        "Analyze",
        columns,
        rows,
        row_attrs=[N(record["op"]) for record in records],
    )


def explain_analyze_text(
    obs: Observation, model: CostModel | None = None, timings: bool = True
) -> str:
    """The full EXPLAIN ANALYZE report: span trees plus the comparison.

    Mirrors a database's ``EXPLAIN ANALYZE``: the plan that ran (the
    span tree) followed by estimated vs. actual figures per operation,
    worst mis-estimates called out.
    """
    from .explain import span_tree_text

    model = model or DEFAULT_MODEL
    blocks: list[str] = []
    for root in obs.spans:
        blocks.append(span_tree_text(root, timings))
    table = analyze_table(obs, model, timings)
    if table is None:
        blocks.append("(no analyzable operation spans)")
        return "\n\n".join(blocks)
    blocks.append(render_table(table, title="EXPLAIN ANALYZE — estimated vs. actual"))
    records = analyze_records(obs, model)
    worst = max(
        records,
        key=lambda r: abs(math.log(r["row_ratio"])) if r["row_ratio"] else 0.0,
    )
    if worst["row_ratio"] is not None:
        blocks.append(
            f"{len(records)} operation(s) analyzed; worst row mis-estimate: "
            f"{worst['op']} at {_format_ratio(worst['row_ratio'])} "
            f"(est {worst['est_rows']}, act {worst['act_rows']})"
        )
    return "\n\n".join(blocks)
