"""The flight recorder: a postmortem ring over the event bus.

When a long run dies under a governor budget or an injected fault, the
question is always "what was the engine *doing*?" — and by then it is
too late to turn tracing on.  The flight recorder answers it cheaply:
a fixed-size :class:`~repro.obs.events.RingSubscriber` retains the last
N events of the run at all times, and when the run ends in a
:class:`~repro.core.errors.ContextualError` the recorder dumps a
**postmortem bundle** to a directory:

* ``MANIFEST.json`` — bundle format version, creation time, the error
  (type, message, structured context), event counts (retained/dropped),
  and the **checkpoint pointer** (the path of the last
  ``checkpoint_write`` event seen, i.e. where to resume from); when a
  run ledger was armed the manifest also carries the **run pointer**
  (``run.id`` + ``run.ledger``, noted via :meth:`FlightRecorder.note_run`)
  joining the postmortem to its ledger record;
* ``events.jsonl``   — the event tail, one wire-form JSON object per
  line, replaying the final iterations of the run;
* ``metrics.json``   — the active metrics snapshot, when an
  :func:`~repro.obs.observation` scope was live;
* ``explain.txt``    — the EXPLAIN report over the spans completed so
  far, when a tracer was live;
* ``plan.txt``       — the program/plan text, when the caller noted one
  via :meth:`FlightRecorder.note_program`;
* ``stats.json``     — the ANALYZE snapshot the estimator saw, when one
  was noted via :meth:`FlightRecorder.note_stats` or an estimation
  scope was live at dump time — crash triage sees the statistics behind
  every cardinality prediction of the dying run.

Usage mirrors the other runtime scopes::

    from repro.obs.flight import flight_recorder

    with flight_recorder("flight/") as recorder:
        recorder.note_program(repr(program))
        run_hardened(program, db, limits=Limits(deadline_s=0.05))
    # a deadline kill propagates out and the bundle is written;
    # recorder.last_bundle names the directory.

The recorder reuses an already-active :func:`~repro.obs.events.event_stream`
(so a ticker and the recorder share one bus) or opens its own.  With no
directory configured it still records — callers can dump manually — and
the ring costs one bounded deque regardless of run length, which is what
makes "always on" affordable.
"""

from __future__ import annotations

import json
import threading
from contextlib import ExitStack, contextmanager
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterator

from ..core.errors import ContextualError, ReproError
from . import estimator as _est
from . import runtime as _obs
from .events import EVT, EventBus, RingSubscriber, event_stream

__all__ = [
    "BUNDLE_FORMAT",
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "flight_recorder",
]

#: Version stamp written into every bundle's MANIFEST.json.
BUNDLE_FORMAT = 1

#: Events retained by the ring when the caller does not size it.
DEFAULT_CAPACITY = 256

#: Process-wide bundle counter so concurrent recorders in one process
#: never collide on a directory name.
_BUNDLE_COUNTER_LOCK = threading.Lock()
_BUNDLE_COUNTER = 0


def _next_bundle_name() -> str:
    global _BUNDLE_COUNTER
    with _BUNDLE_COUNTER_LOCK:
        _BUNDLE_COUNTER += 1
        return f"postmortem-{_BUNDLE_COUNTER:04d}"


class FlightRecorder:
    """A bounded event tail plus the postmortem dump that consumes it."""

    __slots__ = (
        "directory",
        "ring",
        "bus",
        "program_text",
        "stats",
        "last_bundle",
        "run_id",
        "ledger_path",
        "supervisor_history",
    )

    def __init__(
        self,
        bus: EventBus,
        directory: str | Path | None = None,
        capacity: int = DEFAULT_CAPACITY,
    ):
        self.bus = bus
        self.directory = Path(directory) if directory is not None else None
        self.ring: RingSubscriber = bus.ring(capacity)
        #: Plan/program text included in the bundle when noted.
        self.program_text: str | None = None
        #: ANALYZE snapshot included in the bundle when noted.
        self.stats = None
        #: Path of the most recently written bundle, or None.
        self.last_bundle: Path | None = None
        #: Run-ledger join key included in the bundle when noted.
        self.run_id: str | None = None
        self.ledger_path: str | None = None
        #: Supervision history block included in the bundle when noted.
        self.supervisor_history: dict | None = None

    def note_program(self, text: str) -> None:
        """Record the program/plan text for inclusion in any bundle."""
        self.program_text = text

    def note_run(self, run_id: str, ledger: str | Path | None = None) -> None:
        """Record the run id (and its ledger directory) for the bundle.

        A postmortem written while a run ledger was armed then carries
        the join key in its ``MANIFEST.json`` (the ``run`` block), so
        ``repro replay <bundle-dir>`` and postmortem triage can find the
        ledger record without guessing.
        """
        self.run_id = run_id
        self.ledger_path = str(ledger) if ledger is not None else None

    def note_supervisor(self, history: dict) -> None:
        """Record a supervision history for the bundle.

        The :class:`~repro.runtime.supervisor.Supervisor` stamps its
        attempt-by-attempt record (decisions, backoffs, degradations)
        here before dumping, so a postmortem shows not just the fatal
        error but every retry that led up to it.
        """
        self.supervisor_history = history

    def note_stats(self, stats) -> None:
        """Record the ANALYZE snapshot the estimator saw.

        The bundle then shows crash triage exactly the statistics the
        run's cardinality predictions came from (``stats.json``).
        """
        self.stats = stats

    def checkpoint_pointer(self) -> str | None:
        """The last ``checkpoint_write`` path seen, or None."""
        for event in reversed(self.ring.tail()):
            if event.kind == "checkpoint_write":
                path = event.data.get("path")
                return str(path) if path is not None else None
        return None

    def dump(self, error: BaseException | None = None) -> Path:
        """Write one postmortem bundle; returns the bundle directory.

        Raises :class:`~repro.core.errors.ReproError` when no directory
        is configured — a recorder without a destination records, but a
        caller asking for a dump without one is a programming error.
        """
        if self.directory is None:
            raise ReproError(
                "flight recorder has no dump directory; "
                "pass flight_recorder(directory=...)"
            )
        bundle = self.directory / _next_bundle_name()
        bundle.mkdir(parents=True, exist_ok=True)
        events = self.ring.tail()

        files = ["events.jsonl"]
        with (bundle / "events.jsonl").open("w") as handle:
            for event in events:
                handle.write(json.dumps(event.to_json()) + "\n")

        obs = _obs.OBS
        if obs.active and obs.metrics is not None:
            (bundle / "metrics.json").write_text(
                json.dumps(obs.metrics.snapshot(), indent=2) + "\n"
            )
            files.append("metrics.json")
        if obs.active and obs.tracer is not None:
            from .explain import explain_text

            snapshot = _obs.Observation(obs.tracer, obs.metrics)
            (bundle / "explain.txt").write_text(explain_text(snapshot) + "\n")
            files.append("explain.txt")
        if self.program_text is not None:
            (bundle / "plan.txt").write_text(self.program_text + "\n")
            files.append("plan.txt")
        stats = self.stats
        if stats is None and _est.EST.active:
            # No snapshot was noted but an estimation scope is live:
            # include what the estimator is actually consulting.
            estimator = _est.EST.estimator
            stats = estimator.stats if estimator is not None else None
        if stats is not None:
            (bundle / "stats.json").write_text(
                json.dumps(stats.to_json(), indent=2) + "\n"
            )
            files.append("stats.json")

        manifest: dict = {
            "format": BUNDLE_FORMAT,
            "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "events": {
                "retained": len(events),
                "received": self.ring.received,
                "dropped": self.ring.dropped,
                "first_seq": events[0].seq if events else None,
                "last_seq": events[-1].seq if events else None,
            },
            "checkpoint": self.checkpoint_pointer(),
            "files": files + ["MANIFEST.json"],
        }
        if self.run_id is not None:
            manifest["run"] = {"id": self.run_id, "ledger": self.ledger_path}
        if self.supervisor_history is not None:
            manifest["supervisor"] = self.supervisor_history
        if stats is not None:
            manifest["stats"] = {
                "engine": stats.engine,
                "fingerprint": stats.fingerprint,
                "tables": len(stats.tables),
                "age_seconds": round(stats.age_seconds(), 3),
            }
        if error is not None:
            manifest["error"] = {
                "type": type(error).__name__,
                "message": str(error),
                "context": dict(getattr(error, "context", {}) or {}),
            }
        (bundle / "MANIFEST.json").write_text(json.dumps(manifest, indent=2) + "\n")
        self.last_bundle = bundle
        return bundle

    def __repr__(self) -> str:
        return (
            f"FlightRecorder({self.ring!r}, "
            f"directory={str(self.directory) if self.directory else None})"
        )


@contextmanager
def flight_recorder(
    directory: str | Path | None = None,
    capacity: int = DEFAULT_CAPACITY,
    bus: EventBus | None = None,
) -> Iterator[FlightRecorder]:
    """Record the event tail; dump a bundle if the block dies contextually.

    Joins the active :func:`~repro.obs.events.event_stream` when one is
    live (``bus``/ticker/recorder then share a feed) or opens its own.
    On exit with a :class:`~repro.core.errors.ContextualError` — the
    hardened runtime's structured taxonomy: budget kills, injected
    faults, cancellation — a bundle is written to ``directory`` before
    the error propagates.  Other exceptions (and clean exits) write
    nothing.  Dump failures are swallowed: a postmortem must never mask
    the error it documents.
    """
    with ExitStack() as stack:
        if bus is not None:
            active_bus = bus
            if not (EVT.active and EVT.bus is bus):
                stack.enter_context(event_stream(bus))
        elif EVT.active and EVT.bus is not None:
            active_bus = EVT.bus
        else:
            active_bus = stack.enter_context(event_stream())
        recorder = FlightRecorder(active_bus, directory=directory, capacity=capacity)
        try:
            yield recorder
        except ContextualError as err:
            if recorder.directory is not None:
                try:
                    recorder.dump(error=err)
                except OSError:
                    pass
            raise
        finally:
            active_bus.detach(recorder.ring)
