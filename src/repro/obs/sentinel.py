"""The cross-run drift sentinel: sliding-window regression detection.

A ledger full of run manifests is only useful if something *watches*
it.  The sentinel compares, per normalized program fingerprint, a
**recent window** of runs against the **baseline window** immediately
before it, over the three signals that matter to the optimizer and the
service layer:

* **latency** — p50 and p95 of per-run wall time; drift when the recent
  percentile exceeds ``latency_factor`` × baseline;
* **q-error** — mean estimate error; drift when recent exceeds
  ``qerror_factor`` × baseline (the estimator got worse for this shape,
  so stats are stale or a formula regressed);
* **fallback rate** — vector-engine fallbacks per dispatched op; drift
  when recent exceeds baseline + ``fallback_jump`` (kernels silently
  stopped covering the shape).

Fingerprints with fewer than ``2 × min_runs`` runs are reported as
``insufficient`` and never flagged — one noisy run must not page
anyone.  ``python -m repro sentinel`` renders the report and exits with
a **distinct code per outcome** (0 clean, 4 drift, 3 no usable data),
so a CI job can tell "healthy", "regressed", and "never measured"
apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ledger import RunLedger, _percentile

__all__ = [
    "DEFAULT_WINDOW",
    "DEFAULT_MIN_RUNS",
    "DriftFinding",
    "SentinelReport",
    "sentinel_report",
]

#: Runs per sliding window when the caller does not size it.
DEFAULT_WINDOW = 10

#: Minimum runs per window before a fingerprint is judged at all.
DEFAULT_MIN_RUNS = 3


@dataclass(frozen=True)
class DriftFinding:
    """One drifted signal for one fingerprint."""

    fingerprint: str
    signal: str  # latency_p50 | latency_p95 | q_error | fallback_rate
    baseline: float
    recent: float
    threshold: float
    workloads: tuple[str, ...] = ()

    def to_json(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "signal": self.signal,
            "baseline": self.baseline,
            "recent": self.recent,
            "threshold": self.threshold,
            "workloads": list(self.workloads),
        }


@dataclass
class SentinelReport:
    """The full sweep: per-fingerprint verdicts plus the drift list."""

    window: int
    min_runs: int
    fingerprints: list[dict] = field(default_factory=list)
    findings: list[DriftFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def judged(self) -> int:
        """Fingerprints with enough history to be judged."""
        return sum(1 for f in self.fingerprints if f["status"] != "insufficient")

    def to_json(self) -> dict:
        return {
            "window": self.window,
            "min_runs": self.min_runs,
            "ok": self.ok,
            "judged": self.judged,
            "fingerprints": self.fingerprints,
            "findings": [finding.to_json() for finding in self.findings],
        }

    def render(self) -> str:
        lines = [
            f"drift sentinel: {len(self.fingerprints)} fingerprint(s), "
            f"{self.judged} judged (window {self.window}, min {self.min_runs} "
            "runs per window)"
        ]
        for record in self.fingerprints:
            status = record["status"]
            marker = {"ok": "ok   ", "drift": "DRIFT", "insufficient": "..   "}[status]
            workloads = ",".join(record["workloads"][:2])
            lines.append(
                f"{marker} {record['fingerprint']}  {record['runs']} run(s)  "
                f"[{workloads}]"
            )
        if self.findings:
            lines.append("")
            lines.append(f"{len(self.findings)} drifted signal(s):")
            for finding in self.findings:
                lines.append(
                    f"  {finding.fingerprint}: {finding.signal} "
                    f"{finding.baseline} -> {finding.recent} "
                    f"(threshold {finding.threshold})"
                )
        else:
            lines.append("no drift detected")
        return "\n".join(lines)


def _window_stats(rows: list[dict]) -> dict:
    latencies = sorted(
        float(r["elapsed_ms"]) for r in rows if r.get("elapsed_ms") is not None
    )
    q_means = [float(r["q_mean"]) for r in rows if r.get("q_mean") is not None]
    ops = sum(int(r.get("ops") or 0) for r in rows)
    fallbacks = sum(int(r.get("fallbacks") or 0) for r in rows)
    return {
        "runs": len(rows),
        "latency_p50": round(_percentile(latencies, 0.50), 3),
        "latency_p95": round(_percentile(latencies, 0.95), 3),
        "q_error_mean": round(sum(q_means) / len(q_means), 4) if q_means else None,
        "fallback_rate": round(fallbacks / ops, 4) if ops else 0.0,
    }


def sentinel_report(
    ledger: RunLedger,
    *,
    window: int = DEFAULT_WINDOW,
    min_runs: int = DEFAULT_MIN_RUNS,
    latency_factor: float = 2.0,
    qerror_factor: float = 2.0,
    fallback_jump: float = 0.25,
    absolute_floor_ms: float = 1.0,
) -> SentinelReport:
    """Sweep the ledger; drift findings per fingerprint.

    ``absolute_floor_ms`` suppresses latency findings when both windows
    are under the floor — sub-millisecond pipelines drift by scheduler
    noise alone, and a 2x blowup of 0.2ms is not a page.
    """
    report = SentinelReport(window=window, min_runs=min_runs)
    by_fingerprint: dict[str, list[dict]] = {}
    for row in ledger.runs():
        by_fingerprint.setdefault(str(row.get("fingerprint")), []).append(row)

    for fingerprint in sorted(by_fingerprint):
        rows = by_fingerprint[fingerprint]
        workloads = sorted({str(r.get("workload")) for r in rows})
        record = {
            "fingerprint": fingerprint,
            "runs": len(rows),
            "workloads": workloads,
        }
        recent_rows = rows[-window:]
        baseline_rows = rows[-2 * window : -window] or rows[: -len(recent_rows)]
        if len(recent_rows) < min_runs or len(baseline_rows) < min_runs:
            record["status"] = "insufficient"
            report.fingerprints.append(record)
            continue
        baseline = _window_stats(baseline_rows)
        recent = _window_stats(recent_rows)
        record["baseline"] = baseline
        record["recent"] = recent

        findings: list[DriftFinding] = []
        for signal in ("latency_p50", "latency_p95"):
            base, now = baseline[signal], recent[signal]
            if max(base, now) < absolute_floor_ms:
                continue
            if base > 0 and now > base * latency_factor:
                findings.append(
                    DriftFinding(
                        fingerprint, signal, base, now,
                        round(base * latency_factor, 3), tuple(workloads),
                    )
                )
        base_q, now_q = baseline["q_error_mean"], recent["q_error_mean"]
        if base_q is not None and now_q is not None and base_q > 0:
            if now_q > base_q * qerror_factor:
                findings.append(
                    DriftFinding(
                        fingerprint, "q_error", base_q, now_q,
                        round(base_q * qerror_factor, 4), tuple(workloads),
                    )
                )
        base_f, now_f = baseline["fallback_rate"], recent["fallback_rate"]
        if now_f > base_f + fallback_jump:
            findings.append(
                DriftFinding(
                    fingerprint, "fallback_rate", base_f, now_f,
                    round(base_f + fallback_jump, 4), tuple(workloads),
                )
            )
        record["status"] = "drift" if findings else "ok"
        report.fingerprints.append(record)
        report.findings.extend(findings)
    return report
