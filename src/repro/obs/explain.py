"""EXPLAIN-style reports: span trees as text, metrics as tables, JSON export.

The text report has two parts:

* the **span tree** — one line per span, box-drawn nesting, per-span wall
  time, and the row/column flow recorded by the instrumented operation
  registry (``rows 5→3  cols 3→7``);
* the **metrics tables** — per-operation aggregates and the interpreter
  counters, rendered with the same :func:`repro.core.render.render_table`
  renderer the figures use, so the report looks like the rest of the
  paper's output.

``timings=False`` drops every wall-clock figure, making the report
deterministic — that is what the golden-output tests compare against.
"""

from __future__ import annotations

from ..core import N, V, Table, make_table, render_table
from .metrics import MetricsRegistry
from .runtime import Observation
from .trace import Span

__all__ = [
    "format_span",
    "span_tree_text",
    "metrics_table",
    "counters_table",
    "explain_text",
    "explain_json",
]

#: Attributes rendered specially (not as generic ``key=value`` pairs).
#: ``shapes_in``/``shapes_out`` are the cost model's per-table inputs and
#: merely restate the summed figures, so they are suppressed from the line.
_SHAPE_KEYS = (
    "rows_in",
    "rows_out",
    "cols_in",
    "cols_out",
    "tables_in",
    "tables_out",
    "shapes_in",
    "shapes_out",
)

#: Estimator-stamped attributes, rendered as one ``est_rows=N (source)``
#: token rather than generic pairs.
_EST_KEYS = ("est_rows", "est_source")


def format_span(span: Span, timings: bool = True) -> str:
    """One line describing a span: label, row/column flow, attributes, time."""
    attrs = span.attributes
    label = span.name
    if "text" in attrs:
        label += f": {attrs['text']}"
    parts = [label]
    if "tables_in" in attrs or "tables_out" in attrs:
        parts.append(f"tables {attrs.get('tables_in', '?')}→{attrs.get('tables_out', '?')}")
    if "rows_in" in attrs or "rows_out" in attrs:
        parts.append(f"rows {attrs.get('rows_in', '?')}→{attrs.get('rows_out', '?')}")
    if "cols_in" in attrs or "cols_out" in attrs:
        parts.append(f"cols {attrs.get('cols_in', '?')}→{attrs.get('cols_out', '?')}")
    if "est_rows" in attrs:
        # The estimation scope's prediction with its provenance:
        # ``est_rows=12 (stats)`` when derived from an ANALYZE snapshot.
        source = attrs.get("est_source")
        parts.append(
            f"est_rows={attrs['est_rows']}" + (f" ({source})" if source else "")
        )
    for key, value in attrs.items():
        if key == "text" or key in _SHAPE_KEYS or key in _EST_KEYS:
            continue
        parts.append(f"{key}={value}")
    if span.error is not None:
        parts.append(f"!{span.error}")
    if timings:
        parts.append(f"{span.duration * 1e3:.3f}ms")
    return "  ".join(parts)


def span_tree_text(span: Span, timings: bool = True) -> str:
    """The box-drawn tree of one root span."""
    lines = [format_span(span, timings)]

    def descend(node: Span, prefix: str) -> None:
        for index, child in enumerate(node.children):
            last = index == len(node.children) - 1
            branch = "└─ " if last else "├─ "
            lines.append(prefix + branch + format_span(child, timings))
            descend(child, prefix + ("   " if last else "│  "))

    descend(span, "")
    return "\n".join(lines)


def metrics_table(metrics: MetricsRegistry, timings: bool = True) -> Table | None:
    """Per-operation aggregates as a renderable table (None when empty)."""
    operations = metrics.operations
    if not operations:
        return None
    columns = ["Calls", "Errors", "Rows in", "Rows out", "Cols in", "Cols out"]
    if timings:
        columns.append("Time ms")
    names = sorted(operations)
    rows = []
    for name in names:
        record = operations[name]
        row = [
            record.calls,
            record.errors,
            record.rows_in,
            record.rows_out,
            record.cols_in,
            record.cols_out,
        ]
        if timings:
            row.append(V(round(record.wall_time * 1e3, 3)))
        rows.append(row)
    return make_table("OpMetrics", columns, rows, row_attrs=[N(n) for n in names])


def counters_table(metrics: MetricsRegistry) -> Table | None:
    """Interpreter counters as a renderable table (None when empty)."""
    counters = metrics.counters
    if not counters:
        return None
    names = sorted(counters)
    return make_table(
        "Counters",
        ["Value"],
        [[counters[n]] for n in names],
        row_attrs=[N(n) for n in names],
    )


def explain_text(obs: Observation, timings: bool = True) -> str:
    """The full EXPLAIN report of one observation."""
    blocks: list[str] = []
    for root in obs.spans:
        blocks.append(span_tree_text(root, timings))
    if obs.metrics is not None:
        ops = metrics_table(obs.metrics, timings)
        if ops is not None:
            blocks.append(render_table(ops, title="Operation metrics"))
        counters = counters_table(obs.metrics)
        if counters is not None:
            blocks.append(render_table(counters, title="Counters"))
    if not blocks:
        return "(nothing observed)"
    return "\n\n".join(blocks)


def explain_json(obs: Observation) -> dict:
    """The report as JSON-serializable data (spans + metrics snapshot)."""
    return {
        "spans": [root.to_dict() for root in obs.spans],
        "metrics": obs.metrics.snapshot() if obs.metrics is not None else None,
    }
