"""Table statistics: the ANALYZE pass over a tabular database.

A cost-based optimizer is only as good as its statistics, and the mixed
relation/info-table/cube representations of the source paper make
cardinality behave very differently per representation — the same
content stored as ``SalesInfo1`` (one row per fact) and ``SalesInfo2``
(one column per region) has entirely different row counts, null
fractions, and per-column value distributions.  So stats are *measured*,
never assumed: :func:`analyze_database` walks every table of a
:class:`~repro.core.database.TabularDatabase` and produces, per table,

* the row count, width, and the number of **distinct data rows** (the
  exact DEDUP output cardinality);
* per data column: the **null count**, the number of **distinct
  non-null values** (NDV), the **min/max** entry under the canonical
  :meth:`~repro.core.symbols.Symbol.sort_key` order, and a **top-K
  frequency sketch** (the K most common non-null entries with their
  exact counts — a complete histogram whenever ``NDV <= K``).

Two computation paths produce *identical* statistics (pinned by the
parity tests):

* ``engine="vector"`` (the default) interns each table through the
  vector engine's :class:`~repro.engine.interning.SymbolInterner` and
  counts over the integer id-columns — ⊥ is always id 0, so null
  stripping is plain truthiness and counting runs at C speed;
* ``engine="naive"`` counts directly over the symbol grid, the fallback
  when no interner is wanted (and the differential baseline).

A :class:`DatabaseStats` snapshot is schema-versioned JSON on disk
(:meth:`DatabaseStats.save` / :func:`load_stats`), stamped with its
creation time and a content fingerprint of the analyzed database so the
estimator can detect **stale stats**.  ``python -m repro analyze``
exposes the pass on the bundled example databases.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from ..core import Symbol, Table, TabularDatabase
from ..core.errors import StatsError

__all__ = [
    "STATS_SCHEMA_VERSION",
    "DEFAULT_TOP_K",
    "ColumnStats",
    "TableStats",
    "DatabaseStats",
    "analyze_table_stats",
    "analyze_database",
    "database_fingerprint",
    "load_stats",
    "validate_stats_data",
]

#: Version stamp carried by every persisted stats snapshot.  Bump when a
#: field changes shape (adding fields is backward compatible).
STATS_SCHEMA_VERSION = 1

#: Frequency-sketch entries kept per column when the caller does not say.
DEFAULT_TOP_K = 8


def _encode_symbol(symbol: Symbol) -> list:
    """The checkpoint module's JSON-stable symbol encoding (lenient).

    Falls back to a ``repr`` wrapper for exotic payloads so ANALYZE never
    refuses a database the engine itself accepted.
    """
    from ..runtime.checkpoint import symbol_to_data

    try:
        return symbol_to_data(symbol)
    except Exception:
        return ["r", repr(symbol)]


def _decode_symbol(data: list) -> Symbol | None:
    """Invert :func:`_encode_symbol`; ``repr`` wrappers decode to None."""
    from ..runtime.checkpoint import symbol_from_data

    if isinstance(data, list) and data and data[0] == "r":
        return None
    return symbol_from_data(data)


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one data column of one table.

    ``top`` holds the ``(symbol, count)`` frequency sketch ordered by
    count (descending) then by the symbol's canonical sort key, so equal
    databases analyze to byte-equal snapshots.  When ``ndv <= len(top)``
    the sketch is the column's complete histogram.
    """

    attribute: Symbol
    nulls: int
    ndv: int
    min: Symbol | None
    max: Symbol | None
    top: tuple[tuple[Symbol, int], ...]

    def null_fraction(self, height: int) -> float:
        """Fraction of this column's entries that are ⊥."""
        return self.nulls / height if height > 0 else 0.0

    def frequency(self, value: Symbol) -> int | None:
        """The exact count of ``value`` when the sketch retains it."""
        for symbol, count in self.top:
            if symbol == value:
                return count
        return None

    def to_json(self) -> dict:
        return {
            "attribute": _encode_symbol(self.attribute),
            "nulls": self.nulls,
            "ndv": self.ndv,
            "min": None if self.min is None else _encode_symbol(self.min),
            "max": None if self.max is None else _encode_symbol(self.max),
            "top": [[_encode_symbol(s), c] for s, c in self.top],
        }


@dataclass(frozen=True)
class TableStats:
    """Statistics for one table: shape, distinct rows, per-column stats."""

    name: str
    height: int
    width: int
    distinct_rows: int
    columns: tuple[ColumnStats, ...]

    def column_for(self, attribute: Symbol) -> ColumnStats | None:
        """The first column carrying ``attribute`` (attributes may repeat)."""
        for column in self.columns:
            if column.attribute == attribute:
                return column
        return None

    def columns_for(self, attributes: Iterable[Symbol]) -> list[ColumnStats]:
        """Every column whose attribute is in ``attributes``."""
        wanted = set(attributes)
        return [c for c in self.columns if c.attribute in wanted]

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "height": self.height,
            "width": self.width,
            "distinct_rows": self.distinct_rows,
            "columns": [column.to_json() for column in self.columns],
        }


class DatabaseStats:
    """One ANALYZE snapshot of a whole database, with provenance stamps."""

    __slots__ = ("version", "created", "engine", "top_k", "fingerprint", "tables")

    def __init__(
        self,
        tables: Sequence[TableStats],
        engine: str,
        fingerprint: str,
        top_k: int = DEFAULT_TOP_K,
        created: float | None = None,
        version: int = STATS_SCHEMA_VERSION,
    ):
        self.version = version
        self.created = time.time() if created is None else float(created)
        self.engine = engine
        self.top_k = int(top_k)
        self.fingerprint = fingerprint
        self.tables = tuple(tables)

    # -- lookup ---------------------------------------------------------

    def lookup(self, name: str, height: int, width: int) -> TableStats | None:
        """Stats for the table matching name *and* shape, or None.

        The shape check is the staleness guard at the granularity of one
        table: an intermediate result that merely reuses a base table's
        name will not silently borrow its statistics.
        """
        for stats in self.tables:
            if stats.name == name and stats.height == height and stats.width == width:
                return stats
        return None

    def for_name(self, name: str) -> list[TableStats]:
        """Every per-table snapshot carrying ``name`` (names may repeat)."""
        return [stats for stats in self.tables if stats.name == name]

    def age_seconds(self, now: float | None = None) -> float:
        """Seconds since this snapshot was taken (stale-stats telemetry)."""
        return max(0.0, (time.time() if now is None else now) - self.created)

    @property
    def total_rows(self) -> int:
        return sum(stats.height for stats in self.tables)

    # -- persistence ----------------------------------------------------

    def to_json(self) -> dict:
        return {
            "version": self.version,
            "created": round(self.created, 6),
            "engine": self.engine,
            "top_k": self.top_k,
            "fingerprint": self.fingerprint,
            "tables": [stats.to_json() for stats in self.tables],
        }

    def save(self, path: str | Path) -> Path:
        """Persist the snapshot as schema-versioned JSON."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return target

    @classmethod
    def from_json(cls, data: dict) -> "DatabaseStats":
        """Rebuild a snapshot from its wire form (validated first)."""
        problems = validate_stats_data(data)
        if problems:
            raise StatsError(
                f"invalid stats snapshot: {problems[0]}"
                + (f" (+{len(problems) - 1} more)" if len(problems) > 1 else "")
            )
        tables = []
        for tdata in data["tables"]:
            columns = []
            for cdata in tdata["columns"]:
                columns.append(
                    ColumnStats(
                        attribute=_decode_symbol(cdata["attribute"]),
                        nulls=int(cdata["nulls"]),
                        ndv=int(cdata["ndv"]),
                        min=None if cdata["min"] is None else _decode_symbol(cdata["min"]),
                        max=None if cdata["max"] is None else _decode_symbol(cdata["max"]),
                        top=tuple(
                            (_decode_symbol(s), int(c)) for s, c in cdata["top"]
                        ),
                    )
                )
            tables.append(
                TableStats(
                    name=str(tdata["name"]),
                    height=int(tdata["height"]),
                    width=int(tdata["width"]),
                    distinct_rows=int(tdata["distinct_rows"]),
                    columns=tuple(columns),
                )
            )
        return cls(
            tables,
            engine=str(data["engine"]),
            fingerprint=str(data["fingerprint"]),
            top_k=int(data["top_k"]),
            created=float(data["created"]),
            version=int(data["version"]),
        )

    def __eq__(self, other) -> bool:
        """Content equality: the analyzed numbers, not the timestamps."""
        if not isinstance(other, DatabaseStats):
            return NotImplemented
        return (
            self.version == other.version
            and self.top_k == other.top_k
            and self.fingerprint == other.fingerprint
            and self.tables == other.tables
        )

    def __repr__(self) -> str:
        return (
            f"DatabaseStats({len(self.tables)} table(s), engine={self.engine!r}, "
            f"fingerprint={self.fingerprint!r})"
        )


def load_stats(path: str | Path) -> DatabaseStats:
    """Read one persisted snapshot; raises :class:`StatsError` when bad."""
    try:
        data = json.loads(Path(path).read_text())
    except OSError as err:
        raise StatsError(f"cannot read stats snapshot {path}: {err}") from err
    except ValueError as err:
        raise StatsError(f"stats snapshot {path} is not valid JSON: {err}") from err
    return DatabaseStats.from_json(data)


def validate_stats_data(data: object) -> list[str]:
    """Schema problems in one snapshot's wire form (empty = valid).

    The dependency-free validator CI runs against every ``repro analyze``
    artifact; :meth:`DatabaseStats.from_json` applies it before decoding.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["snapshot is not a JSON object"]
    if data.get("version") != STATS_SCHEMA_VERSION:
        problems.append(
            f"version {data.get('version')!r} != {STATS_SCHEMA_VERSION}"
        )
    if not isinstance(data.get("created"), (int, float)):
        problems.append("created is not a number")
    if not isinstance(data.get("engine"), str):
        problems.append("engine is not a string")
    if not isinstance(data.get("top_k"), int) or isinstance(data.get("top_k"), bool):
        problems.append("top_k is not an integer")
    if not isinstance(data.get("fingerprint"), str):
        problems.append("fingerprint is not a string")
    tables = data.get("tables")
    if not isinstance(tables, list):
        return problems + ["tables is not a list"]
    for i, tdata in enumerate(tables):
        where = f"tables[{i}]"
        if not isinstance(tdata, dict):
            problems.append(f"{where} is not an object")
            continue
        for field in ("height", "width", "distinct_rows"):
            value = tdata.get(field)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                problems.append(f"{where}.{field} is not a non-negative integer")
        if not isinstance(tdata.get("name"), str):
            problems.append(f"{where}.name is not a string")
        columns = tdata.get("columns")
        if not isinstance(columns, list):
            problems.append(f"{where}.columns is not a list")
            continue
        if isinstance(tdata.get("width"), int) and len(columns) != tdata["width"]:
            problems.append(
                f"{where}: {len(columns)} column stats != width {tdata['width']}"
            )
        height = tdata.get("height") if isinstance(tdata.get("height"), int) else None
        for j, cdata in enumerate(columns):
            cwhere = f"{where}.columns[{j}]"
            if not isinstance(cdata, dict):
                problems.append(f"{cwhere} is not an object")
                continue
            for field in ("nulls", "ndv"):
                value = cdata.get(field)
                if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                    problems.append(f"{cwhere}.{field} is not a non-negative integer")
            if height is not None and isinstance(cdata.get("nulls"), int):
                if cdata["nulls"] > height:
                    problems.append(f"{cwhere}.nulls {cdata['nulls']} > height {height}")
            top = cdata.get("top")
            if not isinstance(top, list):
                problems.append(f"{cwhere}.top is not a list")
                continue
            counts = []
            for entry in top:
                if (
                    not isinstance(entry, list)
                    or len(entry) != 2
                    or not isinstance(entry[1], int)
                    or entry[1] < 1
                ):
                    problems.append(f"{cwhere}.top has a malformed entry {entry!r}")
                    break
                counts.append(entry[1])
            if any(b > a for a, b in zip(counts, counts[1:])):
                problems.append(f"{cwhere}.top counts are not non-increasing")
            if (
                isinstance(cdata.get("ndv"), int)
                and len(top) > cdata["ndv"]
            ):
                problems.append(f"{cwhere}.top retains more entries than ndv")
    return problems


# ----------------------------------------------------------------------
# The ANALYZE pass itself
# ----------------------------------------------------------------------

def database_fingerprint(db: TabularDatabase) -> str:
    """A stable content digest of one database (staleness detection).

    Uses the checkpoint module's canonical JSON encoding, so two equal
    databases — regardless of construction order — fingerprint equally.
    """
    import hashlib

    from ..runtime.checkpoint import database_to_data

    try:
        payload = json.dumps(database_to_data(db), sort_keys=True)
    except Exception:
        # Exotic payloads the checkpoint encoder refuses still get a
        # (repr-based) fingerprint: ANALYZE must accept what ran.
        payload = repr([t.grid for t in db.tables])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _column_stats_from_counts(
    attribute: Symbol, counts: Counter, nulls: int, top_k: int
) -> ColumnStats:
    """Shared tail of both paths: order-independent sketch construction."""
    if counts:
        ordered = sorted(counts.items(), key=lambda item: item[0].sort_key())
        low, high = ordered[0][0], ordered[-1][0]
        top = tuple(
            sorted(ordered, key=lambda item: (-item[1], item[0].sort_key()))[:top_k]
        )
    else:
        low = high = None
        top = ()
    return ColumnStats(
        attribute=attribute,
        nulls=nulls,
        ndv=len(counts),
        min=low,
        max=high,
        top=top,
    )


def _analyze_table_naive(table: Table, top_k: int) -> TableStats:
    columns: list[ColumnStats] = []
    for j in table.data_col_indices():
        entries = table.data_column(j)
        counts: Counter = Counter()
        nulls = 0
        for entry in entries:
            if entry.is_null:
                nulls += 1
            else:
                counts[entry] += 1
        columns.append(
            _column_stats_from_counts(
                table.column_attributes[j - 1], counts, nulls, top_k
            )
        )
    return TableStats(
        name=str(table.name),
        height=table.height,
        width=table.width,
        distinct_rows=len(set(table.data)),
        columns=tuple(columns),
    )


def _analyze_table_vector(table: Table, interner, top_k: int) -> TableStats:
    """Counting over interned id-columns: ⊥ is id 0, truthiness strips it."""
    idt = interner.intern_table(table)
    symbol = interner.symbol
    columns: list[ColumnStats] = []
    for j, col in enumerate(idt.cols):
        id_counts = Counter(col)
        nulls = id_counts.pop(0, 0)
        counts = Counter({symbol(i): count for i, count in id_counts.items()})
        columns.append(
            _column_stats_from_counts(symbol(idt.col_attrs[j]), counts, nulls, top_k)
        )
    return TableStats(
        name=str(symbol(idt.name)),
        height=idt.height,
        width=idt.width,
        distinct_rows=len(set(idt.rows)),
        columns=tuple(columns),
    )


def analyze_table_stats(
    table: Table, top_k: int = DEFAULT_TOP_K, interner=None
) -> TableStats:
    """Statistics for one table (vector path when an interner is given)."""
    if interner is not None:
        return _analyze_table_vector(table, interner, top_k)
    return _analyze_table_naive(table, top_k)


def analyze_database(
    db: TabularDatabase,
    engine: str = "vector",
    top_k: int = DEFAULT_TOP_K,
) -> DatabaseStats:
    """The ANALYZE pass: one :class:`DatabaseStats` snapshot of ``db``.

    ``engine="vector"`` (default) counts over interned id-columns;
    ``engine="naive"`` counts over the symbol grid.  Both paths produce
    identical statistics — the parity tests pin that.
    """
    if engine not in ("vector", "naive"):
        raise StatsError(f"unknown ANALYZE engine {engine!r}; expected vector or naive")
    if top_k < 1:
        raise StatsError(f"top_k must be >= 1, got {top_k}")
    interner = None
    if engine == "vector":
        from ..engine.interning import SymbolInterner

        interner = SymbolInterner()
    tables = tuple(
        analyze_table_stats(table, top_k=top_k, interner=interner)
        for table in db.tables
    )
    return DatabaseStats(
        tables,
        engine=engine,
        fingerprint=database_fingerprint(db),
        top_k=top_k,
    )
