"""The structured event bus: typed, subscribable execution telemetry.

Where the tracer (:mod:`repro.obs.trace`) aggregates spans *after the
fact*, the event bus is the **live** feed: every chokepoint of the
engine — op dispatch, while-fixpoint iterations, governor budget checks
and kills, checkpoint write/restore, fault injection, vector-engine
kernel dispatch and fallback — publishes a typed, schema-versioned
:class:`Event` the moment it happens, and subscribers consume the stream
while the run is still executing.  A server streaming job progress over
a WebSocket, a progress ticker on a terminal, and the flight recorder's
postmortem ring are all just subscribers.

The bus follows the ``OBS``/``GOV`` architecture exactly: one
module-level singleton, :data:`EVT`, guards every publish site.  When
``EVT.active`` is False — the default — each chokepoint falls through
after a single attribute check, no event payload is ever built, and the
zero-allocation audit holds.  :func:`event_stream` switches the feed
on::

    from repro.obs.events import event_stream

    with event_stream() as bus:
        ring = bus.ring(capacity=512)
        program.run(db)
    for event in ring.tail():
        print(event.kind, event.data)

Two subscriber shapes:

* **ring subscribers** (:meth:`EventBus.ring`) — bounded deques holding
  the most recent events; old events are dropped (and counted), so a
  misbehaving run can never grow a subscriber without bound.  The
  flight recorder is one of these.
* **callback subscribers** (:meth:`EventBus.attach`) — called
  synchronously, outside the bus lock, for each event.  The progress
  ticker and the JSON-lines stream writer are callbacks.  A callback
  that raises is counted (``bus.callback_errors``) and never kills the
  engine: telemetry must not take the run down with it.

Every event serializes to a self-describing JSON object carrying the
schema version, so the JSON-lines stream is the future WebSocket feed
verbatim.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENT_KINDS",
    "Event",
    "RingSubscriber",
    "EventBus",
    "JsonlEventWriter",
    "EVT",
    "emit",
    "event_stream",
]

#: Version stamp carried by every serialized event.  Bump when an event
#: kind's payload fields change shape (adding kinds is backward
#: compatible and does not bump the version).
EVENT_SCHEMA_VERSION = 1

#: The typed event vocabulary.  Each kind maps 1:1 to an engine
#: chokepoint; payload fields per kind are documented in
#: docs/OBSERVABILITY.md (the event schema table).
EVENT_KINDS = frozenset(
    {
        "run_start",  # hardened driver entered: workload, statements
        "run_finish",  # hardened driver exited cleanly: governor snapshot
        "span_start",  # op dispatch entered: op, tables_in, rows_in
        "span_finish",  # op dispatch exited: op, ok, duration_ms, rows_out
        "while_iteration",  # fixpoint tick: condition, iteration, frontier/total rows + deltas
        "governor_budget",  # per-tick budget headroom: elapsed vs deadline, rows vs cap
        "governor_kill",  # a budget tripped: kind, limit, used, op/statement/iteration
        "checkpoint_write",  # checkpoint persisted: path, statement_index, iteration
        "checkpoint_restore",  # resume restored state: path, statement_index, iteration
        "fault_injected",  # chaos plan fired: op, kind, occurrence, seed
        "engine_dispatch",  # vector kernel took an invocation: op
        "engine_fallback",  # vector backend declined: op, reason (machine-readable)
        "op_estimate",  # estimator scored a prediction: op, est_rows, act_rows, q_error, source
        "error",  # an op raised: op, error (repr), error_type
        "retry_scheduled",  # supervisor will retry: attempt, decision, backoff_s, error_type
        "breaker_transition",  # circuit breaker moved: fingerprint, from_state, to_state
        "run_recovered",  # crash recovery resumed an orphaned run: run_id, workload
        "engine_degraded",  # degradation ladder fired: mode (engine|obs_shed), from/to
        "plan_rewrite",  # optimizer applied a rewrite: rule, detail, fingerprint
    }
)


class Event:
    """One published event: a sequence number, a timestamp, a kind, data.

    ``seq`` is bus-assigned and strictly increasing, so subscribers can
    detect gaps (ring drops) and order merged streams; ``ts`` is
    ``time.time()`` (wall clock, for postmortems and cross-process
    correlation).  ``data`` is the kind-specific payload dict.
    """

    __slots__ = ("seq", "ts", "kind", "data")

    def __init__(self, kind: str, data: dict):
        self.seq = 0
        self.ts = 0.0
        self.kind = kind
        self.data = data

    def to_json(self) -> dict:
        """The self-describing wire form (the WebSocket/JSONL payload)."""
        return {
            "v": EVENT_SCHEMA_VERSION,
            "seq": self.seq,
            "ts": round(self.ts, 6),
            "kind": self.kind,
            "data": _jsonable_data(self.data),
        }

    def __repr__(self) -> str:
        return f"Event(#{self.seq} {self.kind} {self.data!r})"


def _jsonable_data(data: dict) -> dict:
    from .trace import _jsonable

    return {str(k): _jsonable(v) for k, v in data.items()}


class RingSubscriber:
    """A bounded most-recent-events buffer attached to one bus.

    Appends happen under the bus lock; reads take the same lock, so
    ``tail()`` is always a consistent snapshot.  When the ring is full
    the oldest event is dropped and counted — sequence-number gaps in
    the tail tell a consumer exactly what was lost.
    """

    __slots__ = ("capacity", "received", "dropped", "_events", "_lock")

    def __init__(self, capacity: int, lock: threading.Lock):
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.received = 0
        self.dropped = 0
        self._events: deque[Event] = deque()
        self._lock = lock

    def _append(self, event: Event) -> None:
        # Called by the bus with its lock held.
        if len(self._events) >= self.capacity:
            self._events.popleft()
            self.dropped += 1
        self._events.append(event)
        self.received += 1

    def tail(self, n: int | None = None) -> tuple[Event, ...]:
        """The most recent events (all retained, or the last ``n``)."""
        with self._lock:
            events = tuple(self._events)
        return events if n is None else events[-n:]

    def drain(self) -> tuple[Event, ...]:
        """Remove and return everything retained (streaming consumption)."""
        with self._lock:
            events = tuple(self._events)
            self._events.clear()
        return events

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __repr__(self) -> str:
        return (
            f"RingSubscriber({len(self)}/{self.capacity} retained, "
            f"{self.dropped} dropped)"
        )


class EventBus:
    """Thread-safe publish/subscribe hub for :class:`Event` streams.

    ``publish`` assigns the sequence number and fans out to every ring
    under one lock, then invokes callback subscribers outside it (so a
    slow callback delays, but cannot deadlock, concurrent publishers).
    Subscribers may attach and detach at any time from any thread.
    """

    __slots__ = (
        "_lock",
        "_rings",
        "_callbacks",
        "_seq",
        "published",
        "callback_errors",
    )

    def __init__(self):
        self._lock = threading.Lock()
        self._rings: list[RingSubscriber] = []
        self._callbacks: list[Callable[[Event], None]] = []
        self._seq = 0
        self.published = 0
        self.callback_errors = 0

    # -- subscription ---------------------------------------------------

    def ring(self, capacity: int = 256) -> RingSubscriber:
        """Attach and return a new bounded ring subscriber."""
        subscriber = RingSubscriber(capacity, self._lock)
        with self._lock:
            self._rings.append(subscriber)
        return subscriber

    def attach(self, callback: Callable[[Event], None]) -> Callable[[Event], None]:
        """Attach a callback invoked (synchronously) per event."""
        with self._lock:
            self._callbacks.append(callback)
        return callback

    def detach(self, subscriber) -> bool:
        """Detach a ring or callback; True iff it was attached."""
        with self._lock:
            for pool in (self._rings, self._callbacks):
                for index, existing in enumerate(pool):
                    if existing is subscriber:
                        del pool[index]
                        return True
        return False

    @property
    def subscribers(self) -> int:
        """How many rings + callbacks are currently attached."""
        with self._lock:
            return len(self._rings) + len(self._callbacks)

    def ring_totals(self) -> dict:
        """Aggregate receive/drop counts over every attached ring.

        Drops are how a bounded subscriber loses telemetry silently;
        surfacing the totals (``repro metrics``, the Prometheus
        ``events_ring_dropped_total`` family, the ledger manifest's
        ``events.dropped``) is what makes the truncation visible.
        """
        with self._lock:
            rings = tuple(self._rings)
        return {
            "rings": len(rings),
            "received": sum(ring.received for ring in rings),
            "dropped": sum(ring.dropped for ring in rings),
        }

    # -- publishing -----------------------------------------------------

    def publish(self, kind: str, /, **data) -> Event:
        """Publish one event to every subscriber; returns the event.

        ``kind`` must be a member of :data:`EVENT_KINDS` — an unknown
        kind is a programming error at the call site and raises
        immediately rather than polluting the typed stream.  The
        parameter is positional-only so payloads may carry their own
        ``kind`` field (``governor_kill`` does: the budget kind).
        """
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        event = Event(kind, data)
        event.ts = time.time()
        with self._lock:
            self._seq += 1
            event.seq = self._seq
            self.published += 1
            for ring in self._rings:
                ring._append(event)
            callbacks = tuple(self._callbacks)
        for callback in callbacks:
            try:
                callback(event)
            except Exception:
                # A broken subscriber must never kill the run it watches.
                self.callback_errors += 1
        return event

    def __repr__(self) -> str:
        return f"EventBus({self.published} published, {self.subscribers} subscriber(s))"


class JsonlEventWriter:
    """Callback subscriber streaming events as JSON lines.

    One self-describing JSON object per line (the :meth:`Event.to_json`
    wire form), flushed per event so a tailing consumer — ``tail -f``,
    a log shipper, or the future WebSocket bridge pushing each line to a
    client verbatim — sees events as they happen.  Accepts a path (the
    writer owns and closes the handle) or any ``.write()``-able stream.
    """

    __slots__ = ("_handle", "_owns", "written")

    def __init__(self, target):
        if hasattr(target, "write"):
            self._handle = target
            self._owns = False
        else:
            self._handle = Path(target).open("w")
            self._owns = True
        self.written = 0

    def __call__(self, event: Event) -> None:
        self._handle.write(json.dumps(event.to_json()) + "\n")
        flush = getattr(self._handle, "flush", None)
        if flush is not None:
            flush()
        self.written += 1

    def close(self) -> None:
        if self._owns:
            self._handle.close()


class _EvtState:
    """The mutable global: one attribute check guards every publish site."""

    __slots__ = ("active", "bus")

    def __init__(self):
        self.active = False
        #: The installed :class:`EventBus`, or None.
        self.bus: EventBus | None = None


#: The process-wide event-bus state consulted by all chokepoints.
EVT = _EvtState()


def emit(kind: str, /, **data) -> None:
    """Publish to the active bus, if any.

    Chokepoints guard the call with ``if EVT.active:`` *before* building
    the payload kwargs, so the disabled path allocates nothing; this
    helper re-checks the bus so a racing scope exit degrades to a no-op
    rather than an AttributeError.  ``kind`` is positional-only so
    payloads may carry their own ``kind`` field.
    """
    bus = EVT.bus
    if bus is not None:
        bus.publish(kind, **data)


@contextmanager
def event_stream(bus: EventBus | None = None) -> Iterator[EventBus]:
    """Enable event publishing for the duration of the ``with`` block.

    Installs ``bus`` (or a fresh one) as the process-wide feed and
    restores the previous state on exit, so scopes nest exactly like
    ``observation()`` and ``governed()``: an inner stream shadows the
    outer one and the outer resumes untouched.
    """
    if bus is None:
        bus = EventBus()
    previous = (EVT.active, EVT.bus)
    EVT.bus = bus
    EVT.active = True
    try:
        yield bus
    finally:
        EVT.active, EVT.bus = previous
