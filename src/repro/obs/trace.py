"""Execution tracing: nested spans with wall-clock timings.

A :class:`Span` is one timed region of work — an operation invocation, a
program statement, a while-loop iteration, a compilation phase — with a
name, free-form attributes, and children.  A :class:`Tracer` collects
spans into per-thread trees: each thread keeps its own open-span stack,
so concurrent interpreter runs never interleave their trees, and
completed top-level spans are appended to a shared, lock-protected root
list.

The tracer is built for instrumentation that must vanish when disabled:
:data:`NULL_SPAN` is a shared do-nothing context manager, and every
``span(...)`` call site in the engine is guarded by a single attribute
check on the global observation state (see :mod:`repro.obs.runtime`), so
the untraced hot path pays essentially nothing.
"""

from __future__ import annotations

import threading
import time
import tracemalloc
from typing import Iterator

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class Span:
    """One timed, attributed, possibly-nested region of work.

    ``start``/``end`` are :func:`time.perf_counter` stamps; ``error``
    holds ``repr(exception)`` when the region raised.  Spans are context
    managers only through their owning :class:`Tracer`.
    """

    __slots__ = ("name", "attributes", "start", "end", "children", "thread_id", "error")

    def __init__(self, name: str, attributes: dict | None = None):
        self.name = name
        self.attributes = dict(attributes or {})
        self.start = 0.0
        self.end = 0.0
        self.children: list[Span] = []
        self.thread_id = threading.get_ident()
        self.error: str | None = None

    @property
    def duration(self) -> float:
        """Wall-clock seconds spent inside the span."""
        return max(0.0, self.end - self.start)

    def set(self, **attributes) -> "Span":
        """Attach or overwrite attributes; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """A JSON-serializable view of the span tree."""
        out: dict = {
            "name": self.name,
            "duration_ms": round(self.duration * 1e3, 6),
            "attributes": {k: _jsonable(v) for k, v in self.attributes.items()},
        }
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, {len(self.children)} children)"


def _jsonable(value: object) -> object:
    """Coerce attribute values into JSON-representable shapes."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


class _ActiveSpan:
    """Context manager pairing a span with its tracer's stack discipline."""

    __slots__ = ("_tracer", "span", "_is_root", "_mem_start")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span
        self._is_root = False
        self._mem_start = -1

    def __enter__(self) -> Span:
        self._is_root = self._tracer._push(self.span)
        if self._tracer.memory and tracemalloc.is_tracing():
            self._mem_start, _peak = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
        self.span.start = time.perf_counter()
        return self.span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        self.span.end = time.perf_counter()
        if self._mem_start >= 0 and tracemalloc.is_tracing():
            # Peak allocation above the level at span entry.  The peak
            # counter is process-global and reset at every span entry, so
            # a parent whose child reset it under-reports its own peak;
            # leaf spans (the operation calls the profiler attributes
            # hotspots to) are exact.
            _current, peak = tracemalloc.get_traced_memory()
            self.span.attributes["mem_peak_kb"] = round(
                max(0, peak - self._mem_start) / 1024.0, 3
            )
        if exc is not None:
            self.span.error = repr(exc)
        self._tracer._pop(self.span, self._is_root)
        return False


class _NullSpan:
    """Shared no-op stand-in for a span when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        return False

    def set(self, **attributes) -> "_NullSpan":
        return self


#: The singleton disabled span; ``with NULL_SPAN as sp: sp.set(...)`` is free.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span trees, one open-span stack per thread.

    ``memory=True`` additionally records each span's peak ``tracemalloc``
    allocation (as a ``mem_peak_kb`` attribute) — the caller is
    responsible for having ``tracemalloc`` tracing switched on (see
    :func:`repro.obs.profile.profile`, which manages that lifecycle).
    """

    __slots__ = ("_local", "_lock", "_roots", "memory")

    def __init__(self, memory: bool = False):
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: list[Span] = []
        self.memory = memory

    # -- stack discipline ----------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> bool:
        """Attach under the open span; True iff ``span`` starts a new tree."""
        stack = self._stack()
        is_root = not stack
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        return is_root

    def _pop(self, span: Span, is_root: bool) -> None:
        stack = self._stack()
        # Exception safety: unwind past any spans abandoned by a raise.
        while stack:
            if stack.pop() is span:
                break
        if is_root:
            with self._lock:
                self._roots.append(span)

    # -- public API -----------------------------------------------------

    def span(self, name: str, **attributes) -> _ActiveSpan:
        """Open a new span nested under the current thread's open span."""
        return _ActiveSpan(self, Span(name, attributes))

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @property
    def roots(self) -> tuple[Span, ...]:
        """All completed top-level spans, in completion order."""
        with self._lock:
            return tuple(self._roots)

    def reset(self) -> None:
        """Drop all collected roots (open stacks are per-thread and unaffected)."""
        with self._lock:
            self._roots.clear()
