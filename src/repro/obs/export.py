"""Span-tree exporters: Chrome trace events and JSON-lines logs.

* :func:`chrome_trace` renders an observation as the Chrome trace-event
  format (the ``{"traceEvents": [...]}`` JSON that ``chrome://tracing``
  and Perfetto load): one complete ``"X"`` event per span, timestamps in
  microseconds relative to the earliest span, thread ids preserved so
  concurrent interpreter runs land on separate tracks.
* :func:`jsonl_records` flattens the same trees into one JSON object per
  span — depth, parent, duration, attributes — followed by a final
  metrics record, ready for ``jq``/log pipelines.

Both are pure functions over an :class:`~repro.obs.runtime.Observation`;
``write_chrome_trace``/``write_jsonl`` add the file plumbing used by
``python -m repro profile --chrome-trace/--log-json``.

The provenance-graph writers live here too:
:func:`write_provenance_dot`/:func:`write_provenance_json` serialize the
bipartite input-cell → output-cell graphs built by
:func:`repro.obs.lineage.provenance_graph` (one graph, or several
bundled into a single DOT digraph / JSON document, as ``python -m repro
lineage --dot/--graph-json`` does for its audits).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from .runtime import Observation
from .trace import Span, _jsonable

__all__ = [
    "chrome_trace",
    "jsonl_records",
    "write_chrome_trace",
    "write_jsonl",
    "write_provenance_dot",
    "write_provenance_json",
]


def _span_args(span: Span) -> dict:
    args = {key: _jsonable(value) for key, value in span.attributes.items()}
    if span.error is not None:
        args["error"] = span.error
    return args


def chrome_trace(obs: Observation, process_name: str = "repro") -> dict:
    """The observation as a Chrome trace-event JSON object.

    Timestamps are microseconds from the earliest recorded span, so the
    trace viewer's clock starts at zero.  Durations of zero-length spans
    are clamped to a tenth of a microsecond so they stay clickable.
    """
    spans = [span for root in obs.spans for span in root.walk()]
    base = min((span.start for span in spans), default=0.0)
    events: list[dict] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": span.thread_id,
                "name": span.name,
                "cat": "ta",
                "ts": round((span.start - base) * 1e6, 3),
                "dur": max(0.1, round(span.duration * 1e6, 3)),
                "args": _span_args(span),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def jsonl_records(obs: Observation) -> Iterator[dict]:
    """One flat JSON record per span, then one ``metrics`` record.

    Span ids are depth-first positions within the observation, stable
    for a given trace; ``parent_id`` is ``None`` on roots.
    """
    next_id = 0

    def emit(span: Span, parent_id: int | None, depth: int) -> Iterator[dict]:
        nonlocal next_id
        span_id = next_id
        next_id += 1
        record = {
            "type": "span",
            "span_id": span_id,
            "parent_id": parent_id,
            "depth": depth,
            "name": span.name,
            "thread_id": span.thread_id,
            "duration_ms": round(span.duration * 1e3, 6),
            "attributes": {k: _jsonable(v) for k, v in span.attributes.items()},
        }
        if span.error is not None:
            record["error"] = span.error
        yield record
        for child in span.children:
            yield from emit(child, span_id, depth + 1)

    for root in obs.spans:
        yield from emit(root, None, 0)
    if obs.metrics is not None:
        yield {"type": "metrics", **obs.metrics.snapshot()}


def write_chrome_trace(obs: Observation, path: str | Path) -> Path:
    """Write the Chrome trace JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(obs), indent=2) + "\n")
    return path


def write_jsonl(obs: Observation, path: str | Path) -> Path:
    """Write the JSON-lines log, one record per line; returns the path."""
    path = Path(path)
    with path.open("w") as handle:
        for record in jsonl_records(obs):
            handle.write(json.dumps(record) + "\n")
    return path


def write_provenance_dot(graphs, path: str | Path) -> Path:
    """Write provenance graph(s) as Graphviz DOT; returns the path.

    ``graphs`` is one graph dict (from
    :func:`repro.obs.lineage.provenance_graph`) or a sequence of them;
    several graphs render as clustered subgraphs of one digraph.
    """
    from .lineage import graph_to_dot

    path = Path(path)
    if isinstance(graphs, dict):
        path.write_text(graph_to_dot(graphs) + "\n")
        return path
    graphs = list(graphs)
    if len(graphs) == 1:
        path.write_text(graph_to_dot(graphs[0]) + "\n")
        return path
    lines = ['digraph "provenance" {', "  rankdir=LR;", "  node [shape=box, fontsize=10];"]
    lines += [graph_to_dot(graph, subgraph=True) for graph in graphs]
    lines.append("}")
    path.write_text("\n".join(lines) + "\n")
    return path


def write_provenance_json(graphs, path: str | Path) -> Path:
    """Write provenance graph(s) as a JSON document; returns the path."""
    path = Path(path)
    payload = graphs if isinstance(graphs, dict) else {"graphs": list(graphs)}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
