"""Profiling on top of observation: self-time hotspots, wall-time
histograms, and per-span peak memory.

:func:`profile` is an :func:`~repro.obs.runtime.observation` scope that
additionally switches on ``tracemalloc`` (so every span records its peak
allocation as ``mem_peak_kb``) and hands back a :class:`Profile` that
post-processes the collected span trees:

* **hotspots** — top-k operations by *self time* (a span's duration
  minus its children's), the attribution a flame graph would give;
* **histograms** — per-operation wall-time distributions over
  logarithmic buckets, so a bimodal operation is visible where a mean
  would hide it;
* **memory** — per-operation maximum ``mem_peak_kb``.

Typical use::

    from repro.obs.profile import profile

    with profile() as prof:
        program.run(db)
    print(prof.report())

``python -m repro profile <example>`` wraps exactly this, with optional
Chrome-trace / JSON-lines exports (see :mod:`repro.obs.export`).
"""

from __future__ import annotations

import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from .runtime import Observation, observation
from .trace import Span

__all__ = ["Hotspot", "Profile", "profile"]

#: Histogram bucket upper bounds, milliseconds (the last bucket is open).
HISTOGRAM_EDGES_MS = (0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 1000.0)


@dataclass(frozen=True)
class Hotspot:
    """Aggregated profile of one span name."""

    name: str
    calls: int
    self_ms: float
    total_ms: float
    mem_peak_kb: float

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "self_ms": round(self.self_ms, 6),
            "total_ms": round(self.total_ms, 6),
            "mem_peak_kb": round(self.mem_peak_kb, 3),
        }


def _self_seconds(span: Span) -> float:
    """A span's duration minus the time attributed to its children."""
    return max(0.0, span.duration - sum(child.duration for child in span.children))


class Profile:
    """Post-processed view of one profiling run's span trees."""

    __slots__ = ("observation",)

    def __init__(self, obs: Observation):
        self.observation = obs

    # -- aggregation ----------------------------------------------------

    def _spans(self) -> Iterator[Span]:
        for root in self.observation.spans:
            yield from root.walk()

    def hotspots(self, k: int = 10) -> list[Hotspot]:
        """Top-``k`` span names by accumulated self time."""
        acc: dict[str, list[float]] = {}
        for span in self._spans():
            entry = acc.setdefault(span.name, [0.0, 0.0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += _self_seconds(span)
            entry[2] += span.duration
            entry[3] = max(entry[3], float(span.attributes.get("mem_peak_kb", 0.0)))
        spots = [
            Hotspot(name, int(calls), self_s * 1e3, total_s * 1e3, mem_kb)
            for name, (calls, self_s, total_s, mem_kb) in acc.items()
        ]
        spots.sort(key=lambda h: (-h.self_ms, h.name))
        return spots[: max(0, k)]

    def histogram(self) -> dict[str, list[int]]:
        """Per-name wall-time histograms over :data:`HISTOGRAM_EDGES_MS`.

        Each value has ``len(HISTOGRAM_EDGES_MS) + 1`` buckets; the last
        catches everything beyond the final edge.
        """
        out: dict[str, list[int]] = {}
        for span in self._spans():
            buckets = out.setdefault(span.name, [0] * (len(HISTOGRAM_EDGES_MS) + 1))
            ms = span.duration * 1e3
            for index, edge in enumerate(HISTOGRAM_EDGES_MS):
                if ms <= edge:
                    buckets[index] += 1
                    break
            else:
                buckets[-1] += 1
        return out

    def total_ms(self) -> float:
        """Wall time summed over the root spans."""
        return sum(root.duration for root in self.observation.spans) * 1e3

    # -- rendering ------------------------------------------------------

    def report(self, k: int = 10, timings: bool = True) -> str:
        """The text profile: hotspot table, histograms, total time.

        ``timings=False`` keeps only structural facts (names, calls,
        bucket counts stripped), for deterministic tests.
        """
        spots = self.hotspots(k)
        if not spots:
            return "(nothing profiled)"
        lines = [f"top {len(spots)} by self time" if timings else f"top {len(spots)} spans"]
        name_width = max(len(spot.name) for spot in spots)
        for spot in spots:
            line = f"  {spot.name:<{name_width}}  calls={spot.calls}"
            if timings:
                line += f"  self={spot.self_ms:.3f}ms  total={spot.total_ms:.3f}ms"
                if spot.mem_peak_kb:
                    line += f"  peak_mem={spot.mem_peak_kb:.1f}KiB"
            lines.append(line)
        if timings:
            lines.append("")
            lines.append("wall-time histogram (ms buckets)")
            histogram = self.histogram()
            shown = {spot.name for spot in spots}
            edges = [f"≤{edge:g}" for edge in HISTOGRAM_EDGES_MS] + ["more"]
            for name in sorted(histogram):
                if name not in shown:
                    continue
                cells = [
                    f"{label}:{count}"
                    for label, count in zip(edges, histogram[name])
                    if count
                ]
                lines.append(f"  {name:<{name_width}}  " + "  ".join(cells))
            lines.append("")
            lines.append(f"total traced wall time: {self.total_ms():.3f}ms")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """The profile as JSON-serializable data (plus the raw report)."""
        return {
            "hotspots": [spot.as_dict() for spot in self.hotspots(k=1_000_000)],
            "histogram_edges_ms": list(HISTOGRAM_EDGES_MS),
            "histograms": self.histogram(),
            "total_ms": round(self.total_ms(), 6),
        }

    def __repr__(self) -> str:
        return f"Profile({len(self.observation.spans)} root spans)"


@contextmanager
def profile(metrics: bool = True, memory: bool = True) -> Iterator[Profile]:
    """An observation scope with profiling extras switched on.

    ``memory=True`` starts ``tracemalloc`` for the duration (unless it
    is already tracing, in which case the caller keeps ownership) so
    spans carry ``mem_peak_kb``; note that tracing *itself* slows
    allocation-heavy code — profile timings are for attribution, the
    benchmarks are for absolute numbers.
    """
    started_tracing = False
    if memory and not tracemalloc.is_tracing():
        tracemalloc.start()
        started_tracing = True
    try:
        with observation(trace=True, metrics=metrics, memory=memory) as obs:
            yield Profile(obs)
    finally:
        if started_tracing:
            tracemalloc.stop()
