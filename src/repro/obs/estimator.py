"""Stats-backed cardinality estimation and estimate-accuracy telemetry.

The :class:`~repro.obs.cost.CostModel` guesses rows-out from input
shapes alone — the 1/3 selectivity, the √rows group count.  This module
replaces those guesses with predictions **derived from persisted ANALYZE
statistics** (:mod:`repro.obs.stats`) whenever stats exist for an input
table, and continuously measures how wrong every prediction was via the
**q-error** — ``max(est/act, act/est)``, the standard cardinality-
estimation accuracy metric (1.0 is perfect, symmetric in over- and
under-estimation).

The scope follows the ``OBS``/``GOV``/``EVT`` architecture exactly: one
module-level singleton, :data:`EST`, guards the registry chokepoint.
When ``EST.active`` is False — the default — dispatch falls through
after a single attribute check and the zero-allocation audit holds.
:func:`estimation` switches prediction on::

    from repro.obs.estimator import estimation
    from repro.obs.stats import analyze_database

    stats = analyze_database(db)
    with estimation(stats) as est:
        program.run(db)
    print(est.accuracy.snapshot())   # per-op q-error aggregates

While active, every registry dispatch (1) predicts rows-out *before*
the op runs — from stats when the input tables match the snapshot, from
the shape heuristics otherwise, with the source recorded — (2) runs the
op, and (3) records the q-error against the actual row count, emitting
an ``op_estimate`` event when an event stream is live.  When an
observation scope is also active the prediction is stamped onto the
op's span, which is how EXPLAIN ANALYZE shows stats-derived
``est_rows``.  While-loops predict their iteration count from the
condition table's frontier and account it under the pseudo-op
``WHILE``.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence

from ..core import Symbol, Table
from .stats import DatabaseStats, TableStats

__all__ = [
    "QERROR_BUCKETS",
    "EST",
    "OpAccuracy",
    "EstimateAccuracy",
    "CardinalityEstimator",
    "estimation",
    "qerror",
]

#: Fixed q-error histogram bounds (shared with the Prometheus export).
#: A q-error of 1.0 is a perfect estimate; 2.0 means off by 2x either way.
QERROR_BUCKETS = (1.1, 1.25, 1.5, 2.0, 4.0, 10.0, 100.0)

#: Per-op q-error samples retained for percentile reporting (a backstop;
#: audits over the fuzzer corpus stay far below it).
_SAMPLE_CAP = 100_000

#: Estimate sources recorded with every prediction.
SOURCE_STATS = "stats"
SOURCE_SHAPE = "shape"


def qerror(est: float, act: float) -> float:
    """``max(est/act, act/est)`` with both sides clamped to >= 1 row.

    The clamp keeps empty results finite (a textbook convention): an
    estimate of 0 against an actual of 0 is perfect, not undefined.
    """
    e = max(float(est), 1.0)
    a = max(float(act), 1.0)
    return e / a if e >= a else a / e


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over an ascending sample list."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


class OpAccuracy:
    """Accumulated estimate accuracy for one operation kind."""

    __slots__ = ("op", "count", "hist", "sum", "max", "worst", "sources", "_samples")

    def __init__(self, op: str):
        self.op = op
        self.count = 0
        #: Non-cumulative bucket counts over :data:`QERROR_BUCKETS`, with
        #: one overflow slot (the Prometheus export cumulates them).
        self.hist = [0] * (len(QERROR_BUCKETS) + 1)
        self.sum = 0.0
        self.max = 0.0
        #: The worst sample seen: ``(q, est, act)``.
        self.worst: tuple[float, int, int] | None = None
        self.sources = {SOURCE_STATS: 0, SOURCE_SHAPE: 0}
        self._samples: list[float] = []

    def record(self, est: int, act: int, source: str) -> float:
        q = qerror(est, act)
        self.count += 1
        self.sum += q
        if q > self.max:
            self.max = q
            self.worst = (q, int(est), int(act))
        for index, bound in enumerate(QERROR_BUCKETS):
            if q <= bound:
                self.hist[index] += 1
                break
        else:
            self.hist[-1] += 1
        self.sources[source] = self.sources.get(source, 0) + 1
        if len(self._samples) < _SAMPLE_CAP:
            self._samples.append(q)
        return q

    def percentile(self, fraction: float) -> float:
        return _percentile(sorted(self._samples), fraction)

    def snapshot(self) -> dict:
        ordered = sorted(self._samples)
        return {
            "count": self.count,
            "p50": round(_percentile(ordered, 0.50), 3),
            "p95": round(_percentile(ordered, 0.95), 3),
            "max": round(self.max, 3),
            "mean": round(self.sum / self.count, 3) if self.count else 0.0,
            "worst": (
                None
                if self.worst is None
                else {"q": round(self.worst[0], 3), "est": self.worst[1], "act": self.worst[2]}
            ),
            "sources": dict(self.sources),
            "buckets": list(self.hist),
        }


class EstimateAccuracy:
    """Per-op q-error aggregation across one or many estimation scopes."""

    __slots__ = ("ops",)

    def __init__(self):
        self.ops: dict[str, OpAccuracy] = {}

    def record(self, op: str, est: int, act: int, source: str) -> float:
        record = self.ops.get(op)
        if record is None:
            record = self.ops[op] = OpAccuracy(op)
        return record.record(est, act, source)

    @property
    def count(self) -> int:
        return sum(record.count for record in self.ops.values())

    def snapshot(self) -> dict:
        return {op: self.ops[op].snapshot() for op in sorted(self.ops)}

    def __repr__(self) -> str:
        return f"EstimateAccuracy({self.count} estimate(s), {len(self.ops)} op(s))"


class CardinalityEstimator:
    """Predicts rows-out per registry op from one ANALYZE snapshot.

    Each prediction is ``(rows, source)``: ``source == "stats"`` when
    every input table matched the snapshot by name *and* shape (so the
    numbers really came from measured NDV/null/frequency data),
    ``"shape"`` when the cost model's heuristics filled in.
    """

    __slots__ = ("stats", "model", "accuracy")

    def __init__(
        self,
        stats: DatabaseStats | None,
        model=None,
        accuracy: EstimateAccuracy | None = None,
    ):
        from .cost import DEFAULT_MODEL

        self.stats = stats
        self.model = model if model is not None else DEFAULT_MODEL
        self.accuracy = accuracy if accuracy is not None else EstimateAccuracy()

    # -- the registry-facing API ---------------------------------------

    def predict(
        self,
        op: str,
        tables: Sequence[Table],
        arguments: Mapping[str, object],
    ) -> tuple[int, str] | None:
        """Predicted total rows-out for one invocation, with its source."""
        matched = self._match(tables)
        if matched is not None:
            rows = self._predict_stats(op, matched, arguments)
            if rows is not None:
                return max(0, int(rows)), SOURCE_STATS
        estimate = self.model.estimate(op, [(t.height, t.width) for t in tables])
        if estimate is None:
            return None
        return max(0, int(estimate.rows_out)), SOURCE_SHAPE

    def predict_while(self, condition: str, frontier_rows: int) -> tuple[int, str]:
        """Predicted fixpoint iterations from the loop-entry frontier.

        The frontier must shrink (or the interpreter's budget trips), so
        the entry row count of the condition table bounds the expected
        iteration count; stats contribute the *distinct*-row count when
        the condition table was analyzed (duplicate frontier rows cannot
        extend the fixpoint).
        """
        if self.stats is not None:
            for stats in self.stats.for_name(condition):
                if stats.height == frontier_rows:
                    return max(1, stats.distinct_rows), SOURCE_STATS
        return max(1, int(frontier_rows)), SOURCE_SHAPE

    def observe(self, op: str, predicted: tuple[int, str], actual_rows: int) -> float:
        """Record one prediction's q-error; emits ``op_estimate`` if live."""
        est, source = predicted
        q = self.accuracy.record(op, est, actual_rows, source)
        from . import events as _ev

        if _ev.EVT.active:
            _ev.emit(
                "op_estimate",
                op=op,
                est_rows=est,
                act_rows=int(actual_rows),
                q_error=round(q, 4),
                source=source,
            )
        return q

    # -- stats-based per-op formulas -----------------------------------

    def _match(self, tables: Sequence[Table]) -> list[TableStats] | None:
        """Per-input snapshot stats; None unless *every* input matched."""
        if self.stats is None or not tables:
            return None
        matched: list[TableStats] = []
        for table in tables:
            stats = self.stats.lookup(str(table.name), table.height, table.width)
            if stats is None:
                return None
            matched.append(stats)
        return matched

    @staticmethod
    def _ndv(stats: TableStats, attribute: Symbol | None) -> int:
        if attribute is None:
            return 1
        column = stats.column_for(attribute)
        return column.ndv if column is not None else 1

    @staticmethod
    def _combos(columns, cap: int) -> int:
        """Distinct value combinations over ``columns``: the NDV product
        (⊥ counts as one extra value where present), capped by rows."""
        combos = 1
        for column in columns:
            combos *= max(1, column.ndv + (1 if column.nulls else 0))
        return max(1, min(combos, cap))

    def _predict_stats(
        self, op: str, stats: list[TableStats], arguments: Mapping[str, object]
    ) -> int | None:
        """The stats-derived prediction, or None to fall back to shapes."""
        s1 = stats[0]
        h1 = s1.height
        if op in ("RENAME", "PROJECT", "PURGE", "CONSTCOLUMN", "TUPLENEW",
                  "DEDUPCOLUMNS"):
            return h1  # row-preserving
        if op in ("TRANSPOSE", "SWITCH"):
            return s1.width
        if op == "DEDUP":
            return s1.distinct_rows  # exact: ANALYZE counted it
        if op == "SELECT":
            ndv = max(
                self._ndv(s1, arguments.get("left")),
                self._ndv(s1, arguments.get("right")),
                1,
            )
            return h1 // ndv
        if op == "SELECTCONST":
            return self._selectivity_const(
                s1, arguments.get("attr"), arguments.get("value")
            )
        if op == "DROPNULLROWS":
            column = (
                s1.column_for(arguments["attr"])
                if arguments.get("attr") is not None
                else None
            )
            return h1 - column.nulls if column is not None else h1
        if op == "PRODUCT":
            return h1 * stats[1].height
        if op == "CHAINJOIN":
            # The optimizer's reordered PRODUCT/σ chain: the full product
            # of the leaves, one independent 1/NDV selectivity per
            # condition, each NDV read from the leaves visible at the
            # point (``prefix``) where the syntactic chain applied it.
            rows = 1
            for s in stats:
                rows *= s.height
            for left, right, prefix in arguments.get("conds", ()):
                visible = stats[: min(prefix, len(stats))]
                ndv_left = max((self._ndv(s, left) for s in visible), default=1)
                ndv_right = max((self._ndv(s, right) for s in visible), default=1)
                rows //= max(ndv_left, ndv_right, 1)
            return rows
        if op == "PRODUCTSELECT":
            s2 = stats[1]
            ndv = max(
                self._ndv(s1, arguments.get("left")),
                self._ndv(s2, arguments.get("right")),
                1,
            )
            return (h1 * s2.height) // ndv
        if op in ("UNION", "COLLAPSE", "COLLAPSECOMPACT"):
            return sum(s.height for s in stats)
        if op == "CLASSICALUNION":
            total = sum(s.height for s in stats)
            distinct = sum(s.distinct_rows for s in stats)
            return min(total, distinct)
        if op == "DIFFERENCE":
            s2 = stats[1]
            overlap = min(s1.distinct_rows, s2.distinct_rows) // 2
            return max(0, h1 - overlap)
        if op == "INTERSECTION":
            return min(s1.distinct_rows, stats[1].distinct_rows) // 2
        if op == "NATURALJOIN":
            s2 = stats[1]
            shared = {c.attribute for c in s1.columns if not c.attribute.is_null} & {
                c.attribute for c in s2.columns
            }
            if not shared:
                return max(h1, s2.height)
            ndv = max(
                max(self._ndv(s1, a), self._ndv(s2, a)) for a in shared
            )
            return max(1, (h1 * s2.height) // max(1, ndv))
        if op == "SPLIT":
            # Each part carries its own header row (measured: 8 rows over
            # 4 regions split into 4 parts of 2+1 rows).
            on = set(arguments.get("on") or ())
            return h1 + self._combos(s1.columns_for(on), h1)
        if op == "GROUP":
            # GROUP keeps every data row and adds one header row per
            # grouping attribute (Figure 4: 8×3 → 9×9).
            return h1 + max(1, len(set(arguments.get("by") or ())))
        if op == "GROUPCOMPACT":
            # Compaction folds rows sharing their non-spread values: one
            # row per distinct rest-combination plus the header rows.
            by = set(arguments.get("by") or ())
            on = set(arguments.get("on") or ())
            rest = [c for c in s1.columns if c.attribute not in by | on]
            return self._combos(rest, h1) + max(1, len(by))
        if op == "CLEANUP":
            # Rows agreeing on the by-attributes merge where their other
            # entries complement: one row per distinct by-combination.
            by = set(arguments.get("by") or ())
            return self._combos(s1.columns_for(by), h1)
        if op in ("MERGE", "MERGECOMPACT"):
            # Each non-null cell of a spread (on-attributed) column
            # unfolds into one output row (Figure 5: 4×5 → 12×3).
            on = set(arguments.get("on") or ())
            spread = s1.columns_for(on)
            rows = sum(h1 - c.nulls for c in spread) if spread else h1
            return max(1, rows) if op == "MERGE" else max(1, (rows * 3) // 4)
        # SETNEW and anything unanticipated: shape heuristics know better.
        return None

    @staticmethod
    def _selectivity_const(
        stats: TableStats, attribute: Symbol | None, value: Symbol | None
    ) -> int:
        """SELECTCONST via the frequency sketch: exact for retained values."""
        if attribute is None or value is None:
            return 0 if value is None else stats.height
        column = stats.column_for(attribute)
        if column is None:
            return 0
        known = column.frequency(value)
        if known is not None:
            return known
        retained = sum(count for _s, count in column.top)
        rest_ndv = column.ndv - len(column.top)
        if rest_ndv <= 0:
            # Complete histogram and the value is not in it: zero rows.
            return 0
        remaining = stats.height - column.nulls - retained
        return max(1, remaining // rest_ndv)

    def __repr__(self) -> str:
        fingerprint = self.stats.fingerprint if self.stats is not None else None
        return f"CardinalityEstimator(stats={fingerprint!r}, {self.accuracy!r})"


# ----------------------------------------------------------------------
# The scope singleton
# ----------------------------------------------------------------------

class _EstState:
    """The mutable global: one attribute check guards the dispatch site."""

    __slots__ = ("active", "estimator")

    def __init__(self):
        self.active = False
        #: The installed :class:`CardinalityEstimator`, or None.
        self.estimator: CardinalityEstimator | None = None


#: The process-wide estimation state consulted by the operation registry.
EST = _EstState()

#: Per-thread handoff of the most recent prediction from the estimated
#: dispatch layer to the observed layer's span (so EXPLAIN sees it
#: without predicting twice).
_PENDING = threading.local()


def _push_pending(prediction: tuple[int, str]) -> None:
    _PENDING.value = prediction


def _pop_pending() -> tuple[int, str] | None:
    prediction = getattr(_PENDING, "value", None)
    _PENDING.value = None
    return prediction


@contextmanager
def estimation(
    stats: DatabaseStats | None = None,
    estimator: CardinalityEstimator | None = None,
    accuracy: EstimateAccuracy | None = None,
) -> Iterator[CardinalityEstimator]:
    """Enable cardinality estimation for the duration of the block.

    Pass a prebuilt ``estimator`` to share accuracy aggregation across
    scopes (the Prometheus exporter does), or ``stats`` (possibly None —
    pure shape heuristics, still measured) to build a fresh one; a shared
    ``accuracy`` may ride along either way.  Scopes nest like
    ``observation()``: the inner estimator shadows the outer one.
    """
    if estimator is None:
        estimator = CardinalityEstimator(stats, accuracy=accuracy)
    previous = (EST.active, EST.estimator)
    EST.estimator = estimator
    EST.active = True
    try:
        yield estimator
    finally:
        EST.active, EST.estimator = previous
