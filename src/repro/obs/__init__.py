"""Observability: execution tracing, metrics, and EXPLAIN reports.

The engine is instrumented at every layer — the algebra operation
registry, the program interpreter, the FO+while+new interpreter, the
SchemaLog/SchemaSQL/GOOD compilers, and the OLAP/n-dim bridges — but all
instrumentation is a strict no-op until an :func:`observation` scope is
entered (one attribute check on :data:`~repro.obs.runtime.OBS` guards
every hot path).

Typical use::

    from repro.obs import observation

    with observation() as obs:
        result = program.run(db)

    print(obs.explain())            # span tree + per-op metrics tables
    data = obs.to_json()            # the same report as plain data

The CLI exposes the same machinery: ``python -m repro trace <example>``
(``--analyze`` for estimated-vs-actual), ``python -m repro profile
<example>``, ``python -m repro stats``, ``python -m repro lineage`` for
cell-level why-provenance queries and the witness-replay audit, and
``python -m repro bench-compare`` for the benchmark trajectory.
"""

from .metrics import MetricsRegistry, OpMetrics
from .runtime import OBS, Observation, observation, span
from .trace import NULL_SPAN, Span, Tracer
from .events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    EVT,
    Event,
    EventBus,
    JsonlEventWriter,
    RingSubscriber,
    emit,
    event_stream,
)
from .flight import FlightRecorder, flight_recorder
from .progress import ProgressTicker
from .prom import lint_prometheus_text, prometheus_text
from .lineage import (
    AuditResult,
    CellRef,
    Lineage,
    ReplayCheck,
    Witness,
    audit_run,
    count_prov_cells,
    derived_from,
    graph_to_dot,
    lineage,
    provenance,
    provenance_graph,
    table_origins,
    with_prov,
)
from .explain import (
    counters_table,
    explain_json,
    explain_text,
    format_span,
    metrics_table,
    span_tree_text,
)
from .cost import (
    CostEstimate,
    CostModel,
    analyze_records,
    analyze_table,
    explain_analyze_text,
)
from .export import (
    chrome_trace,
    jsonl_records,
    write_chrome_trace,
    write_jsonl,
    write_provenance_dot,
    write_provenance_json,
)
from .profile import Hotspot, Profile, profile
# Statistics and estimation load after everything above: stats/estimator
# sit below cost/flight in the layering, and keeping them last preserves
# the package's import-cycle discipline (the registry imports this
# package while the algebra package is still initialising).
from .stats import (
    DEFAULT_TOP_K,
    STATS_SCHEMA_VERSION,
    ColumnStats,
    DatabaseStats,
    TableStats,
    analyze_database,
    analyze_table_stats,
    database_fingerprint,
    load_stats,
    validate_stats_data,
)
from .estimator import (
    EST,
    QERROR_BUCKETS,
    CardinalityEstimator,
    EstimateAccuracy,
    estimation,
    qerror,
)
from .workload import (
    WorkloadLog,
    fingerprint_program,
    normalize_program,
    stats_audit,
)
from .ledger import (
    LEDGER,
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    RunRecorder,
    database_digest,
    ledger_scope,
    new_run_id,
)
from .replay import (
    Divergence,
    ReplayReport,
    bundle_run_pointer,
    replay_from_ledger,
    replay_run,
    resolve_runnable,
)
from .sentinel import DriftFinding, SentinelReport, sentinel_report

__all__ = [
    "OBS",
    "EVT",
    "EST",
    "LEDGER",
    "LEDGER_SCHEMA_VERSION",
    "NULL_SPAN",
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "DEFAULT_TOP_K",
    "QERROR_BUCKETS",
    "STATS_SCHEMA_VERSION",
    "AuditResult",
    "CardinalityEstimator",
    "CellRef",
    "ColumnStats",
    "CostEstimate",
    "CostModel",
    "DatabaseStats",
    "Divergence",
    "DriftFinding",
    "EstimateAccuracy",
    "Event",
    "EventBus",
    "FlightRecorder",
    "Hotspot",
    "JsonlEventWriter",
    "Lineage",
    "MetricsRegistry",
    "Observation",
    "OpMetrics",
    "Profile",
    "ProgressTicker",
    "ReplayCheck",
    "ReplayReport",
    "RingSubscriber",
    "RunLedger",
    "RunRecorder",
    "SentinelReport",
    "Span",
    "TableStats",
    "Tracer",
    "Witness",
    "WorkloadLog",
    "analyze_database",
    "analyze_records",
    "analyze_table_stats",
    "analyze_table",
    "audit_run",
    "bundle_run_pointer",
    "chrome_trace",
    "count_prov_cells",
    "counters_table",
    "database_digest",
    "database_fingerprint",
    "derived_from",
    "emit",
    "estimation",
    "event_stream",
    "explain_analyze_text",
    "explain_json",
    "explain_text",
    "fingerprint_program",
    "flight_recorder",
    "format_span",
    "graph_to_dot",
    "jsonl_records",
    "ledger_scope",
    "lineage",
    "lint_prometheus_text",
    "load_stats",
    "metrics_table",
    "new_run_id",
    "normalize_program",
    "observation",
    "profile",
    "prometheus_text",
    "provenance",
    "provenance_graph",
    "qerror",
    "replay_from_ledger",
    "replay_run",
    "resolve_runnable",
    "sentinel_report",
    "span",
    "stats_audit",
    "span_tree_text",
    "table_origins",
    "validate_stats_data",
    "with_prov",
    "write_chrome_trace",
    "write_jsonl",
    "write_provenance_dot",
    "write_provenance_json",
]
