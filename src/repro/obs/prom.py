"""Prometheus text-format export of the :class:`MetricsRegistry`.

:func:`prometheus_text` renders one metrics snapshot as the Prometheus
text exposition format (version 0.0.4 — the ``# HELP``/``# TYPE`` +
sample-lines format every Prometheus scraper and ``promtool`` accept):

* per-op **counters** — calls, errors, rows in/out — labelled by op;
* per-op **histograms** — wall-clock seconds per call over the fixed
  buckets of :data:`~repro.obs.metrics.HIST_BUCKETS_S`, with the
  cumulative ``_bucket``/``_sum``/``_count`` series Prometheus expects;
* the interpreter's free **counters** (statements, while iterations,
  kernel hits, …) labelled by counter name.

``python -m repro metrics --prom`` runs the bundled pipelines under an
observation scope and prints this — point a scrape config at a tiny
HTTP wrapper around it (the planned query service exposes exactly this
text on ``/metrics``) and the engine shows up in Grafana.

:func:`lint_prometheus_text` is the matching format checker: a small,
dependency-free validator (CI runs it as ``python -m repro prom-lint``)
that catches the mistakes scrapers reject — bad metric/label names,
``TYPE``-less samples, non-cumulative or ``+Inf``-less histograms.
"""

from __future__ import annotations

import re

from .metrics import HIST_BUCKETS_S, MetricsRegistry

__all__ = ["prometheus_text", "lint_prometheus_text"]

#: Prometheus metric- and label-name grammars (the scrape-time rules).
_METRIC_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    """A float rendered without exponent noise; integers stay integral."""
    if float(value) == int(value):
        return str(int(value))
    return repr(round(float(value), 9))


class _Writer:
    def __init__(self, namespace: str):
        self.namespace = namespace
        self.lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str) -> str:
        full = f"{self.namespace}_{name}"
        self.lines.append(f"# HELP {full} {help_text}")
        self.lines.append(f"# TYPE {full} {kind}")
        return full

    def sample(self, name: str, labels: dict, value: float) -> None:
        if labels:
            rendered = ",".join(
                f'{key}="{_escape(str(val))}"' for key, val in labels.items()
            )
            self.lines.append(f"{name}{{{rendered}}} {_fmt(value)}")
        else:
            self.lines.append(f"{name} {_fmt(value)}")


def prometheus_text(
    metrics: MetricsRegistry,
    namespace: str = "repro",
    accuracy=None,
    stats=None,
    bus=None,
    supervisor=None,
    optimizer=None,
) -> str:
    """One snapshot as the Prometheus text exposition format.

    ``accuracy`` (an :class:`~repro.obs.estimator.EstimateAccuracy`)
    adds the estimator families — per-op q-error histograms over the
    fixed :data:`~repro.obs.estimator.QERROR_BUCKETS` and the worst
    q-error gauge; ``stats`` (a :class:`~repro.obs.stats.DatabaseStats`)
    adds the stale-stats age and snapshot-size gauges; ``bus`` (an
    :class:`~repro.obs.events.EventBus`) adds the event-feed counters —
    published events, ring receive/drop totals (dropped > 0 means a
    bounded subscriber silently lost telemetry), and callback errors;
    ``supervisor`` (a :class:`~repro.runtime.supervisor.Supervisor`)
    adds the fault-tolerance families — retry decision/backoff/exhaustion
    counters, circuit-breaker transition counters and per-fingerprint
    open gauges, and crash-recovery outcome counters; ``optimizer`` (an
    :class:`~repro.engine.optimizer.OptimizerStats`) adds the
    plan-optimizer families — plan-cache hit/miss counters, applied
    rewrites by rule, and join-ordering outcomes.
    All are opt-in so the plain metrics export is unchanged.
    """
    operations = metrics.operations
    counters = metrics.counters
    out = _Writer(namespace)

    per_op_counters = (
        ("op_calls_total", "calls", "Operation invocations."),
        ("op_errors_total", "errors", "Operation invocations that raised."),
        ("op_rows_in_total", "rows_in", "Data rows consumed by the operation."),
        ("op_rows_out_total", "rows_out", "Data rows produced by the operation."),
    )
    for family, attribute, help_text in per_op_counters:
        name = out.family(family, "counter", help_text)
        for op in sorted(operations):
            out.sample(name, {"op": op}, getattr(operations[op], attribute))

    name = out.family(
        "op_duration_seconds",
        "histogram",
        "Per-call wall-clock time of the operation.",
    )
    for op in sorted(operations):
        record = operations[op]
        cumulative = 0
        for bound, count in zip(HIST_BUCKETS_S, record.hist):
            cumulative += count
            out.sample(
                f"{name}_bucket", {"op": op, "le": _fmt(bound)}, cumulative
            )
        cumulative += record.hist[-1]
        out.sample(f"{name}_bucket", {"op": op, "le": "+Inf"}, cumulative)
        out.sample(f"{name}_sum", {"op": op}, round(record.wall_time, 9))
        out.sample(f"{name}_count", {"op": op}, record.calls)

    name = out.family(
        "events_total",
        "counter",
        "Interpreter event counters (statements, while iterations, ...).",
    )
    for counter in sorted(counters):
        out.sample(name, {"counter": counter}, counters[counter])

    if accuracy is not None and accuracy.ops:
        from .estimator import QERROR_BUCKETS

        name = out.family(
            "estimator_qerror",
            "histogram",
            "Cardinality-estimate q-error (max(est/act, act/est)) per op.",
        )
        for op in sorted(accuracy.ops):
            record = accuracy.ops[op]
            cumulative = 0
            for bound, count in zip(QERROR_BUCKETS, record.hist):
                cumulative += count
                out.sample(
                    f"{name}_bucket", {"op": op, "le": _fmt(bound)}, cumulative
                )
            cumulative += record.hist[-1]
            out.sample(f"{name}_bucket", {"op": op, "le": "+Inf"}, cumulative)
            out.sample(f"{name}_sum", {"op": op}, round(record.sum, 9))
            out.sample(f"{name}_count", {"op": op}, record.count)
        name = out.family(
            "estimator_worst_qerror",
            "gauge",
            "Worst q-error observed for the op since the scope opened.",
        )
        for op in sorted(accuracy.ops):
            out.sample(name, {"op": op}, round(accuracy.ops[op].max, 9))
        name = out.family(
            "estimator_estimates_total",
            "counter",
            "Cardinality estimates scored, by source (stats vs shape).",
        )
        totals: dict[str, int] = {}
        for record in accuracy.ops.values():
            for source, count in record.sources.items():
                totals[source] = totals.get(source, 0) + count
        for source in sorted(totals):
            out.sample(name, {"source": source}, totals[source])

    if bus is not None:
        totals = bus.ring_totals()
        name = out.family(
            "events_published_total",
            "counter",
            "Events published to the bus since it opened.",
        )
        out.sample(name, {}, bus.published)
        name = out.family(
            "events_ring_received_total",
            "counter",
            "Events received across every ring subscriber.",
        )
        out.sample(name, {}, totals["received"])
        name = out.family(
            "events_ring_dropped_total",
            "counter",
            "Events dropped by full ring subscribers (silently truncated telemetry).",
        )
        out.sample(name, {}, totals["dropped"])
        name = out.family(
            "events_callback_errors_total",
            "counter",
            "Callback subscribers that raised (never fatal to the run).",
        )
        out.sample(name, {}, bus.callback_errors)

    if supervisor is not None:
        sup_stats = supervisor.stats
        name = out.family(
            "retry_attempts_total",
            "counter",
            "Supervised attempts that ended in a retryable decision.",
        )
        for decision in sorted(sup_stats.decisions):
            out.sample(name, {"decision": decision}, sup_stats.decisions[decision])
        name = out.family(
            "retry_backoff_seconds_total",
            "counter",
            "Total seconds the supervisor slept between attempts.",
        )
        out.sample(name, {}, round(sup_stats.backoff_s_total, 9))
        name = out.family(
            "retry_exhausted_total",
            "counter",
            "Runs that burned the whole retry budget and failed.",
        )
        out.sample(name, {}, sup_stats.exhausted)
        name = out.family(
            "retry_degraded_total",
            "counter",
            "Degradation-ladder firings (engine downgrade, obs shedding).",
        )
        for mode in sorted(sup_stats.degraded):
            out.sample(name, {"mode": mode}, sup_stats.degraded[mode])
        name = out.family(
            "breaker_transitions_total",
            "counter",
            "Circuit-breaker state transitions.",
        )
        for (from_state, to_state), count in sorted(
            supervisor.breaker.transitions.items()
        ):
            out.sample(
                name, {"from_state": from_state, "to_state": to_state}, count
            )
        name = out.family(
            "breaker_open",
            "gauge",
            "1 when the fingerprint's breaker is open (quarantining).",
        )
        for fingerprint, entry in sorted(supervisor.breaker.states().items()):
            out.sample(
                name,
                {"fingerprint": fingerprint},
                1 if entry["state"] == "open" else 0,
            )
        name = out.family(
            "breaker_quarantined_total",
            "counter",
            "Submissions refused admission by an open breaker.",
        )
        out.sample(name, {}, sup_stats.quarantined)
        name = out.family(
            "recovery_runs_total",
            "counter",
            "Crash-recovery outcomes (resumed, orphaned, failed).",
        )
        for outcome in sorted(sup_stats.recovery):
            out.sample(name, {"outcome": outcome}, sup_stats.recovery[outcome])

    if optimizer is not None:
        snapshot = optimizer.snapshot()
        name = out.family(
            "optimizer_plan_cache_total",
            "counter",
            "Plan-cache lookups by result (hit means planning was skipped).",
        )
        for result in sorted(snapshot["cache"]):
            out.sample(name, {"result": result}, snapshot["cache"][result])
        name = out.family(
            "optimizer_rewrites_total",
            "counter",
            "Rewrites applied, by rule (each rule is individually toggleable).",
        )
        for rule in sorted(snapshot["rewrites"]):
            out.sample(name, {"rule": rule}, snapshot["rewrites"][rule])
        name = out.family(
            "optimizer_ordering_total",
            "counter",
            "Join-ordering decisions by outcome (reordered = estimate-driven win).",
        )
        for outcome in sorted(snapshot["ordering"]):
            out.sample(name, {"outcome": outcome}, snapshot["ordering"][outcome])

    if stats is not None:
        name = out.family(
            "stats_age_seconds",
            "gauge",
            "Seconds since the installed ANALYZE snapshot was taken.",
        )
        out.sample(name, {}, round(stats.age_seconds(), 3))
        name = out.family(
            "stats_tables", "gauge", "Tables covered by the ANALYZE snapshot."
        )
        out.sample(name, {}, len(stats.tables))
        name = out.family(
            "stats_rows", "gauge", "Total data rows covered by the ANALYZE snapshot."
        )
        out.sample(name, {}, stats.total_rows)

    return "\n".join(out.lines) + "\n"


def lint_prometheus_text(text: str) -> list[str]:
    """Format problems in one exposition payload (empty = clean).

    Checks the rules scrapers actually enforce: metric and label name
    grammars, every sample preceded by a ``# TYPE`` for its family,
    parseable sample values, and — for histograms — bucket counts that
    are cumulative, monotone, and terminated by an ``+Inf`` bucket whose
    count equals ``_count``.
    """
    errors: list[str] = []
    typed: dict[str, str] = {}
    buckets: dict[tuple[str, tuple], list[tuple[float, float]]] = {}
    counts: dict[tuple[str, tuple], float] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                errors.append(f"line {lineno}: malformed TYPE line")
                continue
            if not _METRIC_RE.fullmatch(parts[2]):
                errors.append(f"line {lineno}: bad metric name {parts[2]!r}")
                continue
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        labels: dict[str, str] = {}
        if match.group("labels"):
            for pair in _split_labels(match.group("labels")):
                pair_match = _LABEL_PAIR_RE.match(pair.strip())
                if pair_match is None or not _LABEL_RE.fullmatch(pair_match.group(1)):
                    errors.append(f"line {lineno}: bad label pair {pair!r}")
                    break
                labels[pair_match.group(1)] = pair_match.group(2)
        raw_value = match.group("value")
        try:
            value = float("inf") if raw_value == "+Inf" else float(raw_value)
        except ValueError:
            errors.append(f"line {lineno}: bad sample value {raw_value!r}")
            continue
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                family = name[: -len(suffix)]
                break
        if family not in typed:
            errors.append(f"line {lineno}: sample {name!r} has no TYPE declaration")
            continue
        if typed[family] == "histogram" and name.endswith("_bucket"):
            le = labels.get("le")
            if le is None:
                errors.append(f"line {lineno}: histogram bucket without le label")
                continue
            bound = float("inf") if le == "+Inf" else float(le)
            key = (family, tuple(sorted((k, v) for k, v in labels.items() if k != "le")))
            buckets.setdefault(key, []).append((bound, value))
        if typed[family] == "histogram" and name.endswith("_count"):
            key = (family, tuple(sorted(labels.items())))
            counts[key] = value

    for (family, labels), series in sorted(buckets.items()):
        ordered = sorted(series)
        if not ordered or ordered[-1][0] != float("inf"):
            errors.append(f"{family}{dict(labels)}: histogram missing +Inf bucket")
            continue
        values = [count for _bound, count in ordered]
        if any(b < a for a, b in zip(values, values[1:])):
            errors.append(f"{family}{dict(labels)}: bucket counts not cumulative")
        total = counts.get((family, labels))
        if total is not None and values[-1] != total:
            errors.append(
                f"{family}{dict(labels)}: +Inf bucket {values[-1]} != _count {total}"
            )
    return errors


def _split_labels(body: str) -> list[str]:
    """Split a label body on commas outside quoted values."""
    parts: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        parts.append("".join(current))
    return [part for part in parts if part.strip()]
