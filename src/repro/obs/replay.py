"""Deterministic replay of ledgered runs: a cross-process nondeterminism
detector.

The differential fuzzer proves the two backends agree *within* one
process; it cannot prove that the same program run **tomorrow, in a
different process** still produces the same bytes.  Replay can: a run
manifest records how to re-derive the program and its input database (a
workload spec or bundled-example name), which engine and seed drove it,
the exact serialized result database (or its digest when the result was
capped), and the ordered op/row trace.  :func:`replay_run` re-executes
the recording and diffs all of it:

* **result database** — the checkpoint serialization must be
  byte-identical (sha256 over the canonical JSON); when the recording
  kept the full data, the diff names the first diverging table, its
  dimensions, and the first differing cell;
* **op sequence** — every completed op dispatch, in order, with its
  rows-out; a plan change, a kernel behaving differently, or genuine
  nondeterminism shows up here even when the final database happens to
  agree;
* **program fingerprint** — the normalized shape must still match, so a
  drifted example or workload generator is reported as program drift,
  not silently re-recorded.

Divergence injection (``faults=...`` / a changed seed) exists so CI can
prove the detector detects: a seeded fault plan must make the replay
exit nonzero with a structured diff.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..core.errors import LedgerError, ReproError
from .events import event_stream
from .ledger import RunLedger, database_digest

__all__ = [
    "Divergence",
    "ReplayReport",
    "resolve_runnable",
    "replay_run",
    "replay_from_ledger",
    "bundle_run_pointer",
]


@dataclass(frozen=True)
class Divergence:
    """One structured difference between the recording and the replay."""

    kind: str
    detail: str
    recorded: object = None
    replayed: object = None

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "recorded": self.recorded,
            "replayed": self.replayed,
        }


@dataclass
class ReplayReport:
    """What one replay found; ``ok`` iff nothing diverged."""

    run_id: str
    workload: str
    engine: str
    divergences: list[Divergence] = field(default_factory=list)
    recorded_sha: str | None = None
    replayed_sha: str | None = None
    elapsed_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_json(self) -> dict:
        return {
            "run_id": self.run_id,
            "workload": self.workload,
            "engine": self.engine,
            "ok": self.ok,
            "recorded_sha256": self.recorded_sha,
            "replayed_sha256": self.replayed_sha,
            "elapsed_ms": self.elapsed_ms,
            "divergences": [d.to_json() for d in self.divergences],
        }

    def render(self) -> str:
        lines = [
            f"replay of {self.run_id} ({self.workload}, {self.engine} engine)"
        ]
        if self.ok:
            lines.append(
                f"  identical: result sha256 {self.recorded_sha} reproduced "
                f"in {self.elapsed_ms:.0f}ms"
            )
        else:
            lines.append(f"  DIVERGED: {len(self.divergences)} difference(s)")
            for divergence in self.divergences:
                lines.append(f"  - [{divergence.kind}] {divergence.detail}")
                if divergence.recorded is not None or divergence.replayed is not None:
                    lines.append(
                        f"      recorded: {divergence.recorded!r}"
                    )
                    lines.append(
                        f"      replayed: {divergence.replayed!r}"
                    )
        return "\n".join(lines)


def resolve_runnable(spec: str):
    """``(program, db)`` re-derived from a recorded workload spec.

    Specs are the same vocabulary ``repro run`` accepts: ``tc:N``
    workloads or bundled-example names whose pipeline is a TA program.
    Raises :class:`~repro.core.errors.LedgerError` when the spec no
    longer resolves to a runnable program.
    """
    from ..runtime.workloads import parse_workload

    try:
        workload = parse_workload(spec)
    except ReproError as err:
        raise LedgerError(f"recorded workload {spec!r} no longer parses: {err}") from err
    if workload is not None:
        _label, program, db = workload
        return program, db
    from .examples import EXAMPLES, ExampleLookupError, resolve_example_strict

    try:
        name = resolve_example_strict(spec)
    except ExampleLookupError as err:
        raise LedgerError(
            f"recorded workload {spec!r} is not a workload or bundled example: "
            f"{err.args[0] if err.args else err}"
        ) from err
    example = EXAMPLES[name]
    if example.setup is None:
        raise LedgerError(
            f"recorded example {spec!r} is not a TA program over a tabular "
            "database; it cannot be replayed"
        )
    db, bound_run = example.setup()
    program = getattr(bound_run, "__self__", None)
    if program is None or not hasattr(program, "statements"):
        raise LedgerError(f"recorded example {spec!r} does not expose a TA program")
    return program, db


def replay_run(manifest: dict, *, faults=None, engine: str | None = None) -> ReplayReport:
    """Re-execute one recorded run and diff it against the recording.

    ``faults`` (a :class:`~repro.runtime.faults.FaultPlan`) and
    ``engine`` deliberately *inject* divergence — they exist so the
    detector can be proven live.  A clean replay passes neither.
    """
    from ..runtime.checkpoint import run_hardened
    from .workload import fingerprint_program

    workload = manifest.get("workload") or {}
    spec = workload.get("spec")
    label = str(workload.get("label", "?"))
    recorded_engine = str(manifest.get("engine", "naive"))
    run_engine = engine if engine is not None else recorded_engine
    report = ReplayReport(
        run_id=str(manifest.get("run_id", "?")),
        workload=label,
        engine=run_engine,
    )
    result = manifest.get("result") or {}
    report.recorded_sha = result.get("sha256")
    if spec is None or report.recorded_sha is None:
        raise LedgerError(
            f"run {report.run_id} was recorded without a replayable workload "
            "spec and result digest (a trace-only or non-TA run)"
        )

    program, db = resolve_runnable(str(spec))

    optimizer = manifest.get("optimizer")
    if optimizer is not None:
        # The run executed a rewritten plan.  Re-derive it from the
        # recorded rule set and the recorded stats snapshot (not a fresh
        # ANALYZE — the plan must be the one that actually ran), so the
        # fingerprint and op-sequence diffs compare like with like.
        from ..engine.optimizer import optimize_program
        from .stats import DatabaseStats

        stats_data = optimizer.get("stats")
        stats = None if stats_data is None else DatabaseStats.from_json(stats_data)
        rules = optimizer.get("rules")
        program = optimize_program(program, stats, rules=rules, cache=None).program

    recorded_fp = (manifest.get("program") or {}).get("fingerprint")
    current_fp = fingerprint_program(program)
    if recorded_fp is not None and current_fp != recorded_fp:
        report.divergences.append(
            Divergence(
                "program_drift",
                f"workload {spec!r} now compiles to a different normalized "
                "program shape",
                recorded=recorded_fp,
                replayed=current_fp,
            )
        )

    started = time.perf_counter()
    op_sequence: list[list] = []
    replayed_db = None
    with event_stream() as bus:
        def _collect(event):
            if event.kind == "span_finish" and event.data.get("ok", True):
                op_sequence.append(
                    [
                        str(event.data.get("op", "?")),
                        int(event.data.get("rows_out", 0) or 0),
                    ]
                )

        bus.attach(_collect)
        try:
            replayed_db = run_hardened(program, db, engine=run_engine, faults=faults)
        except ReproError as err:
            report.divergences.append(
                Divergence(
                    "replay_error",
                    "the replay raised where the recording finished",
                    recorded=(manifest.get("outcome") or {}).get("status"),
                    replayed=f"{type(err).__name__}: {err}",
                )
            )
    report.elapsed_ms = round((time.perf_counter() - started) * 1e3, 3)

    if replayed_db is not None:
        digest, tables, rows, data = database_digest(replayed_db)
        report.replayed_sha = digest
        if digest != report.recorded_sha:
            report.divergences.append(
                Divergence(
                    "result_digest",
                    "serialized result databases differ",
                    recorded=report.recorded_sha,
                    replayed=digest,
                )
            )
            recorded_data = result.get("data")
            if recorded_data is not None:
                report.divergences.extend(_diff_databases(recorded_data, data))
        recorded_ops = manifest.get("op_sequence")
        if recorded_ops is not None and list(map(list, recorded_ops)) != op_sequence:
            report.divergences.append(
                _diff_op_sequences(list(map(list, recorded_ops)), op_sequence)
            )
    return report


def _diff_databases(recorded: list, replayed: list) -> list[Divergence]:
    """Structural drill-down once the digests already disagree."""
    divergences: list[Divergence] = []
    if len(recorded) != len(replayed):
        divergences.append(
            Divergence(
                "table_count",
                "result databases hold different table counts",
                recorded=len(recorded),
                replayed=len(replayed),
            )
        )
    for position, (old, new) in enumerate(zip(recorded, replayed)):
        if old == new:
            continue
        if len(old) != len(new) or (old and new and len(old[0]) != len(new[0])):
            divergences.append(
                Divergence(
                    "table_shape",
                    f"table #{position} changed dimensions",
                    recorded=f"{len(old)}x{len(old[0]) if old else 0}",
                    replayed=f"{len(new)}x{len(new[0]) if new else 0}",
                )
            )
            break
        for r, (old_row, new_row) in enumerate(zip(old, new)):
            if old_row == new_row:
                continue
            for c, (old_cell, new_cell) in enumerate(zip(old_row, new_row)):
                if old_cell != new_cell:
                    divergences.append(
                        Divergence(
                            "cell",
                            f"first differing cell: table #{position}[{r},{c}]",
                            recorded=old_cell,
                            replayed=new_cell,
                        )
                    )
                    break
            break
        break
    return divergences


def _diff_op_sequences(recorded: list, replayed: list) -> Divergence:
    for position, (old, new) in enumerate(zip(recorded, replayed)):
        if old != new:
            return Divergence(
                "op_sequence",
                f"op trace diverges at dispatch #{position}",
                recorded=old,
                replayed=new,
            )
    return Divergence(
        "op_sequence",
        "op trace lengths differ",
        recorded=len(recorded),
        replayed=len(replayed),
    )


def replay_from_ledger(
    ledger: RunLedger, run_id: str, *, faults=None, engine: str | None = None
) -> ReplayReport:
    """Replay one run id out of an open ledger."""
    return replay_run(ledger.get(run_id), faults=faults, engine=engine)


def bundle_run_pointer(bundle: str | Path) -> tuple[str, str]:
    """``(run_id, ledger_directory)`` out of a flight-recorder bundle.

    Postmortem bundles written while a ledger was armed carry the run
    pointer in their ``MANIFEST.json`` (the ``run`` block), so a
    postmortem can be joined back to its ledger record — and replayed —
    without guessing.
    """
    manifest_path = Path(bundle) / "MANIFEST.json"
    try:
        manifest = json.loads(manifest_path.read_text())
    except OSError as err:
        raise LedgerError(f"cannot read bundle manifest {manifest_path}: {err}") from err
    except ValueError as err:
        raise LedgerError(f"bundle manifest {manifest_path} is not JSON: {err}") from err
    run = manifest.get("run") if isinstance(manifest, dict) else None
    if not isinstance(run, dict) or "id" not in run or "ledger" not in run:
        raise LedgerError(
            f"bundle {bundle} carries no run pointer (recorded without a ledger?)"
        )
    return str(run["id"]), str(run["ledger"])
