"""The global observation switch and the ``observation()`` scope.

The engine's instrumentation points (the operation registry, the
interpreter, the compilers, the OLAP/n-dim bridges) all consult one
module-level singleton, :data:`OBS`.  When ``OBS.active`` is False —
the default — every instrumented call site falls through after a single
attribute check, and tracing/metrics code never runs; this is the
"strict no-op" contract the zero-overhead tests pin down.

:func:`observation` is the way to switch collection on::

    from repro.obs import observation

    with observation() as obs:
        program.run(db)
    print(obs.explain())        # nested span tree + per-op metrics table
    data = obs.to_json()        # same report as plain data

Entering the scope installs a fresh :class:`~repro.obs.trace.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry` (either can be switched off)
and restores the previous state on exit, so scopes nest: an inner
``observation()`` shadows the outer one and the outer resumes untouched.
The scope is process-global; threads spawned *inside* it record into the
same collectors (each with its own span stack).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .metrics import MetricsRegistry
from .trace import NULL_SPAN, Span, Tracer

__all__ = ["OBS", "Observation", "observation", "span"]


class _ObsState:
    """The mutable global: one attribute check guards every hot path."""

    __slots__ = ("active", "tracer", "metrics", "lineage")

    def __init__(self):
        self.active = False
        self.tracer: Tracer | None = None
        self.metrics: MetricsRegistry | None = None
        #: The active :class:`repro.obs.lineage.Lineage` scope, or None.
        #: Independent of ``active`` — provenance can run without tracing
        #: and vice versa; both default off.
        self.lineage = None


#: The process-wide observation state consulted by all instrumentation.
OBS = _ObsState()


class Observation:
    """What one ``observation()`` scope collected."""

    __slots__ = ("tracer", "metrics")

    def __init__(self, tracer: Tracer | None, metrics: MetricsRegistry | None):
        self.tracer = tracer
        self.metrics = metrics

    @property
    def spans(self) -> tuple[Span, ...]:
        """Completed top-level spans (empty when tracing was off)."""
        return self.tracer.roots if self.tracer is not None else ()

    def explain(self, timings: bool = True) -> str:
        """The EXPLAIN report: span tree plus metrics tables.

        ``timings=False`` suppresses wall-clock figures, making the text
        deterministic (used by the golden-output tests).
        """
        from .explain import explain_text

        return explain_text(self, timings=timings)

    def to_json(self) -> dict:
        """The same report as JSON-serializable data."""
        from .explain import explain_json

        return explain_json(self)

    def __repr__(self) -> str:
        return f"Observation({len(self.spans)} root spans, metrics={self.metrics!r})"


@contextmanager
def observation(
    trace: bool = True, metrics: bool = True, memory: bool = False
) -> Iterator[Observation]:
    """Enable collection for the duration of the ``with`` block.

    ``memory=True`` asks the tracer to record per-span peak allocations;
    it only takes effect while ``tracemalloc`` is tracing (the
    :func:`repro.obs.profile.profile` scope manages that for you).
    """
    obs = Observation(
        Tracer(memory=memory) if trace else None,
        MetricsRegistry() if metrics else None,
    )
    previous = (OBS.active, OBS.tracer, OBS.metrics)
    OBS.tracer, OBS.metrics = obs.tracer, obs.metrics
    OBS.active = True
    try:
        yield obs
    finally:
        OBS.active, OBS.tracer, OBS.metrics = previous


def span(name: str, **attributes):
    """A span under the active tracer, or the shared no-op span.

    The one-line guard used by the compilers and bridges::

        with _span("compile.schemalog", rules=len(program)):
            ...
    """
    if OBS.active and OBS.tracer is not None:
        return OBS.tracer.span(name, **attributes)
    return NULL_SPAN
