"""Live progress ticker: human-readable lines from the event feed.

``python -m repro run --progress`` attaches a :class:`ProgressTicker`
as a callback subscriber on the event bus.  The ticker renders the
events a human watching a long while-fixpoint cares about:

* **while iterations** — iteration number, the condition's frontier row
  count, and the run's total row delta since the previous tick;
* **budget headroom** — the governor's remaining wall-clock and row
  budget, folded into the same line so a run visibly approaching a kill
  reads as one;
* **checkpoints, faults, kills** — each gets its own line the moment it
  happens;
* **run start/finish** — framing with the final governor counters.

The ticker is throttled (``min_interval_s``) so a tight fixpoint cannot
flood a terminal, but kills/faults/finish lines always print.  It holds
no references into the engine: everything rendered comes from event
payloads, which is exactly the property that lets the same feed drive a
WebSocket client instead (see :class:`~repro.obs.events.JsonlEventWriter`).
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

from .events import Event

__all__ = ["ProgressTicker"]


class ProgressTicker:
    """Callback subscriber rendering progress lines to a stream."""

    __slots__ = ("_stream", "min_interval_s", "_last_line_at", "_budget", "lines")

    def __init__(self, stream: TextIO | None = None, min_interval_s: float = 0.0):
        self._stream = stream if stream is not None else sys.stdout
        self.min_interval_s = min_interval_s
        self._last_line_at = 0.0
        #: The latest ``governor_budget`` payload, folded into tick lines.
        self._budget: dict | None = None
        #: Lines emitted (throttled ticks excluded), for tests/summaries.
        self.lines = 0

    # -- rendering helpers ---------------------------------------------

    def _write(self, text: str) -> None:
        self._stream.write(text + "\n")
        flush = getattr(self._stream, "flush", None)
        if flush is not None:
            flush()
        self.lines += 1
        self._last_line_at = time.monotonic()

    def _headroom(self) -> str:
        budget = self._budget
        if not budget:
            return ""
        parts = []
        deadline = budget.get("deadline_s")
        elapsed = budget.get("elapsed_s")
        if deadline is not None and elapsed is not None:
            remaining = max(0.0, float(deadline) - float(elapsed))
            parts.append(f"deadline {remaining * 1e3:.0f}ms left")
        cap = budget.get("max_total_rows")
        rows = budget.get("rows_emitted")
        if cap is not None and rows is not None:
            parts.append(f"rows {rows}/{cap}")
        iteration_cap = budget.get("max_while_iterations")
        iteration = budget.get("iteration")
        if iteration_cap is not None and iteration is not None:
            parts.append(f"iter {iteration}/{iteration_cap}")
        return f"  [budget: {', '.join(parts)}]" if parts else ""

    # -- the subscriber ------------------------------------------------

    def __call__(self, event: Event) -> None:
        kind = event.kind
        data = event.data
        if kind == "governor_budget":
            # Folded into the next tick line rather than printed alone.
            self._budget = data
            return
        if kind == "while_iteration":
            if (
                self.min_interval_s > 0.0
                and time.monotonic() - self._last_line_at < self.min_interval_s
            ):
                return
            delta = data.get("delta_rows")
            delta_text = f"  {'+' if delta >= 0 else ''}{delta} rows" if isinstance(delta, int) else ""
            self._write(
                f"iter {data.get('iteration')}: frontier {data.get('condition')} "
                f"= {data.get('frontier_rows')} row(s), total {data.get('total_rows')}"
                f"{delta_text}{self._headroom()}"
            )
            return
        if kind == "governor_kill":
            self._write(
                f"KILLED: {data.get('kind')} budget tripped "
                f"(limit={data.get('limit')}, used={data.get('used')})"
            )
            return
        if kind == "fault_injected":
            self._write(
                f"fault: {data.get('fault')} injected at {data.get('op')} "
                f"(occurrence {data.get('occurrence')})"
            )
            return
        if kind == "checkpoint_write":
            # Quiet unless it marks completion: per-statement checkpoints
            # are too chatty for a terminal feed.
            if data.get("done"):
                self._write(f"checkpoint: done, written to {data.get('path')}")
            return
        if kind == "checkpoint_restore":
            self._write(
                f"resumed from {data.get('path')} at statement "
                f"{data.get('statement_index')}, iteration {data.get('iteration')}"
            )
            return
        if kind == "run_start":
            self._write(
                f"run: {data.get('workload', 'program')} "
                f"({data.get('statements')} top-level statement(s))"
            )
            return
        if kind == "run_finish":
            governor = data.get("governor") or {}
            self._write(
                f"finished: {governor.get('ops_dispatched')} ops, "
                f"{governor.get('rows_emitted')} rows in "
                f"{float(governor.get('elapsed_s') or 0.0) * 1e3:.0f}ms"
            )
            return
        # span_start/span_finish/engine_* are too fine-grained for a
        # terminal ticker; the JSONL stream carries them for machines.
