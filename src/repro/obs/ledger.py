"""The persistent run ledger: durable, append-only cross-run memory.

Every other observability surface — spans, events, q-error scores,
fallback reasons, budget outcomes — evaporates at process exit.  The
ledger is the piece that survives: an **append-only, schema-versioned
on-disk journal** of run manifests, one JSON line per run, written to
rotating segment files with a compacted index.  It is the durable
substrate two ROADMAP items read from: the multi-tenant service's
per-tenant accounting and the cost-based optimizer's per-fingerprint
latency/q-error feedback loop.

Layout of a ledger directory::

    ledger/
    ├── LEDGER.json          # header: {"format": 1, "created": ...}
    ├── segment-000001.jsonl # run manifests, one JSON object per line
    ├── segment-000002.jsonl # opened when the previous segment filled
    └── index.json           # compacted per-run summaries (a cache —
                             # rebuilt from the segments when missing)

Durability rules:

* appends are serialized under one lock (the event-bus thread and the
  driver may record concurrently) and each line is flushed before the
  append returns;
* a **torn final line** — the process died mid-write — is skipped with
  a warning on reopen, never a crash; every intact line before it is
  recovered;
* a ledger whose header carries a *different* schema version is
  **rejected** with a typed :class:`~repro.core.errors.LedgerError`
  rather than silently reinterpreted, and so is an individual record
  whose ``v`` disagrees with the header;
* ``index.json`` is a cache: deleting it loses nothing (reopen rebuilds
  it from the segments).

The manifests themselves are built by :class:`RunRecorder`, a
:class:`~repro.obs.events.RingSubscriber` on the live event bus — the
engine hot path publishes the same events it always did and the ledger
listens, so recording adds **no new hooks** to op dispatch.  Like
``OBS``/``GOV``/``EVT``/``EST``, the module-level :data:`LEDGER`
singleton guards the feature: when ``LEDGER.active`` is False — the
default — nothing consults the ledger and the zero-allocation audit
holds.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from ..core.errors import BudgetExceededError, CancelledError, LedgerError
from .events import EventBus, RingSubscriber

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "RECORD_KINDS",
    "DEFAULT_SEGMENT_RECORDS",
    "DEFAULT_SEGMENT_BYTES",
    "DEFAULT_RESULT_BYTES_CAP",
    "RunLedger",
    "RunRecorder",
    "LEDGER",
    "ledger_scope",
    "new_run_id",
    "database_digest",
]

#: Version stamp carried by the ledger header and by every record.
#: Bump when a manifest field changes shape (adding fields is backward
#: compatible and does not bump the version).
LEDGER_SCHEMA_VERSION = 1

#: The record vocabulary.  Every ledger line carries a ``kind`` (absent
#: means ``"run"``, the original manifest shape, so pre-supervisor
#: ledgers reopen unchanged):
#:
#: * ``run`` — a closed run manifest (indexed, listed by ``runs()``);
#: * ``run_start`` — supervisor admission stamp written *before*
#:   execution; a start with no later ``run``/``orphan`` record for the
#:   same run id marks a crashed run (``open_runs()``);
#: * ``orphan`` — crash recovery gave up on an open run (reason inside);
#: * ``breaker`` — a circuit-breaker state transition, keyed by workload
#:   fingerprint rather than run id (latest per fingerprint wins).
RECORD_KINDS = frozenset({"run", "run_start", "orphan", "breaker"})

#: Records per segment before rotation.
DEFAULT_SEGMENT_RECORDS = 256

#: Bytes per segment before rotation (whichever threshold trips first).
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

#: Serialized result databases larger than this are recorded as digest
#: only; replay then compares digests instead of structural diffs.
DEFAULT_RESULT_BYTES_CAP = 1 * 1024 * 1024

#: Process-wide run counter folded into generated run ids so two runs
#: starting in the same nanosecond window never collide.
_RUN_COUNTER_LOCK = threading.Lock()
_RUN_COUNTER = 0


def new_run_id() -> str:
    """A unique, sortable run id: UTC second + pid + process counter."""
    global _RUN_COUNTER
    with _RUN_COUNTER_LOCK:
        _RUN_COUNTER += 1
        count = _RUN_COUNTER
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"r-{stamp}-{os.getpid():05d}-{count:04d}"


def database_digest(db) -> tuple[str, int, int, list]:
    """``(sha256, tables, rows, data)`` of one serialized database.

    Serialization reuses the checkpoint encoding, so the digest covers
    exactly the state a resume would restore — byte-identical results
    have byte-identical digests across processes.
    """
    from ..runtime.checkpoint import database_to_data

    data = database_to_data(db)
    payload = json.dumps(data, separators=(",", ":"), sort_keys=True)
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    rows = sum(len(table) for table in data)
    return digest, len(data), rows, data


# ----------------------------------------------------------------------
# The on-disk ledger
# ----------------------------------------------------------------------

_HEADER_NAME = "LEDGER.json"
_INDEX_NAME = "index.json"
_SEGMENT_PREFIX = "segment-"


def _summarize(manifest: dict) -> dict:
    """The compacted index row for one manifest (what ``runs()`` lists)."""
    outcome = manifest.get("outcome") or {}
    estimates = manifest.get("estimates") or {}
    spans = manifest.get("spans") or {}
    fallbacks = manifest.get("fallbacks") or {}
    result = manifest.get("result") or {}
    return {
        "run_id": manifest["run_id"],
        "ts": manifest.get("ts"),
        "workload": (manifest.get("workload") or {}).get("label"),
        "fingerprint": (manifest.get("program") or {}).get("fingerprint"),
        "engine": manifest.get("engine"),
        "outcome": outcome.get("status"),
        "elapsed_ms": manifest.get("elapsed_ms"),
        "ops": sum(record.get("calls", 0) for record in spans.values()),
        "fallbacks": sum(fallbacks.values()),
        "q_mean": estimates.get("q_mean"),
        "q_max": estimates.get("q_max"),
        "result_sha256": result.get("sha256"),
        "dropped_events": (manifest.get("events") or {}).get("dropped"),
    }


class RunLedger:
    """One ledger directory: append runs, list runs, read runs back.

    Thread-safe: :meth:`record` may be called from the bus thread while
    another thread records or rotates.  Open is recovery: segments are
    scanned, torn tails skipped (with a warning), and the in-memory
    index rebuilt, so a ledger left behind by a killed process reopens
    cleanly.
    """

    def __init__(
        self,
        directory: str | Path,
        max_segment_records: int = DEFAULT_SEGMENT_RECORDS,
        max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        result_bytes_cap: int = DEFAULT_RESULT_BYTES_CAP,
    ):
        if max_segment_records < 1:
            raise LedgerError(
                f"segment rotation needs >= 1 record, got {max_segment_records}"
            )
        self.directory = Path(directory)
        self.max_segment_records = max_segment_records
        self.max_segment_bytes = max_segment_bytes
        self.result_bytes_cap = result_bytes_cap
        #: Recovery notes from the last open (torn tails, unreadable lines).
        self.warnings: list[str] = []
        self._lock = threading.Lock()
        #: run_id -> (segment name, compacted summary); "run" records only
        self._index: dict[str, tuple[str, dict]] = {}
        self._order: list[str] = []
        #: run_id -> latest "run_start" record (supervisor admission)
        self._starts: dict[str, dict] = {}
        #: run_id -> "orphan" record (recovery gave this run up)
        self._orphans: dict[str, dict] = {}
        #: fingerprint -> latest "breaker" record (circuit-breaker state)
        self._breakers: dict[str, dict] = {}
        self._segment_records = 0
        self._segment_bytes = 0
        self._open()

    # -- open / recovery ------------------------------------------------

    def _open(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        header_path = self.directory / _HEADER_NAME
        if header_path.exists():
            try:
                header = json.loads(header_path.read_text())
            except (OSError, ValueError) as err:
                raise LedgerError(
                    f"cannot read ledger header {header_path}: {err}"
                ) from err
            if not isinstance(header, dict) or header.get("format") != LEDGER_SCHEMA_VERSION:
                found = header.get("format") if isinstance(header, dict) else "?"
                raise LedgerError(
                    f"ledger {self.directory} has schema version {found!r}; "
                    f"this build reads version {LEDGER_SCHEMA_VERSION} "
                    "(refusing to reinterpret a foreign format)"
                )
        else:
            header_path.write_text(
                json.dumps(
                    {"format": LEDGER_SCHEMA_VERSION, "created": round(time.time(), 3)}
                )
                + "\n"
            )
        self._recover()

    def _segments(self) -> list[Path]:
        return sorted(self.directory.glob(f"{_SEGMENT_PREFIX}*.jsonl"))

    def _recover(self) -> None:
        """Rebuild the in-memory index by scanning every segment."""
        self._index.clear()
        self._order.clear()
        self._starts.clear()
        self._orphans.clear()
        self._breakers.clear()
        self.warnings = []
        admitted_per_segment: dict[str, int] = {}
        segments = self._segments()
        for segment in segments:
            try:
                text = segment.read_text()
            except OSError as err:
                raise LedgerError(f"cannot read ledger segment {segment}: {err}") from err
            lines = text.split("\n")
            # A file ending in "\n" splits into lines + [""]; anything
            # else has a torn tail from a mid-write death.
            torn = lines[-1] != ""
            body = lines[:-1]
            for lineno, line in enumerate(body, start=1):
                if not line.strip():
                    continue
                try:
                    manifest = json.loads(line)
                except ValueError:
                    message = (
                        f"{segment.name}:{lineno}: unparseable record skipped "
                        "(torn mid-file line)"
                    )
                    self.warnings.append(message)
                    warnings.warn(f"ledger recovery: {message}", stacklevel=2)
                    continue
                self._admit(manifest, segment.name)
                admitted_per_segment[segment.name] = (
                    admitted_per_segment.get(segment.name, 0) + 1
                )
            if torn:
                message = (
                    f"{segment.name}: torn final line skipped "
                    f"({len(lines[-1])} byte(s) of partial write)"
                )
                self.warnings.append(message)
                warnings.warn(f"ledger recovery: {message}", stacklevel=2)
        if segments:
            active = segments[-1]
            self._segment_records = admitted_per_segment.get(active.name, 0)
            self._segment_bytes = active.stat().st_size
        else:
            self._segment_records = 0
            self._segment_bytes = 0
        self._write_index()

    def _admit(self, manifest: dict, segment_name: str) -> None:
        """Index one parsed record, rejecting foreign schema versions."""
        if not isinstance(manifest, dict):
            raise LedgerError(
                f"ledger segment {segment_name} holds a non-manifest record"
            )
        version = manifest.get("v")
        if version != LEDGER_SCHEMA_VERSION:
            raise LedgerError(
                f"record {manifest.get('run_id')!r} in {segment_name} carries "
                f"schema version {version!r}; this build reads "
                f"{LEDGER_SCHEMA_VERSION}"
            )
        kind = manifest.get("kind", "run")
        if kind not in RECORD_KINDS:
            raise LedgerError(
                f"record in {segment_name} carries unknown kind {kind!r}; "
                f"this build reads {sorted(RECORD_KINDS)}"
            )
        if kind == "breaker":
            if "fingerprint" not in manifest:
                raise LedgerError(
                    f"breaker record in {segment_name} has no fingerprint"
                )
            self._breakers[str(manifest["fingerprint"])] = manifest
            return
        if "run_id" not in manifest:
            raise LedgerError(
                f"{kind} record in {segment_name} has no run_id"
            )
        run_id = str(manifest["run_id"])
        if kind == "run_start":
            self._starts[run_id] = manifest
        elif kind == "orphan":
            self._orphans[run_id] = manifest
        else:
            if run_id not in self._index:
                self._order.append(run_id)
            self._index[run_id] = (segment_name, _summarize(manifest))

    # -- appending ------------------------------------------------------

    def _active_segment(self) -> Path:
        segments = self._segments()
        if segments:
            return segments[-1]
        return self.directory / f"{_SEGMENT_PREFIX}000001.jsonl"

    def _next_segment(self, current: Path) -> Path:
        number = int(current.stem[len(_SEGMENT_PREFIX):]) + 1
        return self.directory / f"{_SEGMENT_PREFIX}{number:06d}.jsonl"

    def record(self, manifest: dict) -> str:
        """Append one run manifest; returns its run id.

        The manifest must carry ``run_id`` (use :func:`new_run_id`) and
        is stamped with the schema version here, so every line on disk
        is self-describing.  Rotation happens before the append when the
        active segment is full — one record never spans two segments.
        """
        if "run_id" not in manifest:
            raise LedgerError("a run manifest needs a run_id (see new_run_id())")
        self._append(manifest)
        return str(manifest["run_id"])

    def record_start(self, manifest: dict) -> str:
        """Journal a supervisor admission stamp *before* execution.

        A ``run_start`` with no later closing record for the same run id
        is what :meth:`open_runs` (and crash recovery) finds.
        """
        if "run_id" not in manifest:
            raise LedgerError("a run_start record needs a run_id")
        self._append({**manifest, "kind": "run_start"})
        return str(manifest["run_id"])

    def record_orphan(self, manifest: dict) -> str:
        """Stamp an open run as unrecoverable (reason in the record)."""
        if "run_id" not in manifest:
            raise LedgerError("an orphan record needs a run_id")
        self._append({**manifest, "kind": "orphan"})
        return str(manifest["run_id"])

    def record_breaker(self, manifest: dict) -> str:
        """Persist a circuit-breaker transition, keyed by fingerprint.

        The latest record per fingerprint wins on reopen, which is how
        breaker state survives process restarts.
        """
        if "fingerprint" not in manifest:
            raise LedgerError("a breaker record needs a workload fingerprint")
        self._append({**manifest, "kind": "breaker"})
        return str(manifest["fingerprint"])

    def _append(self, manifest: dict) -> None:
        manifest = dict(manifest)
        manifest["v"] = LEDGER_SCHEMA_VERSION
        line = json.dumps(manifest, separators=(",", ":"), sort_keys=True) + "\n"
        encoded = line.encode("utf-8")
        with self._lock:
            segment = self._active_segment()
            if segment.exists() and (
                self._segment_records >= self.max_segment_records
                or self._segment_bytes + len(encoded) > self.max_segment_bytes > 0
            ):
                segment = self._next_segment(segment)
                self._segment_records = 0
                self._segment_bytes = 0
            try:
                with segment.open("ab") as handle:
                    handle.write(encoded)
                    handle.flush()
                    os.fsync(handle.fileno())
            except OSError as err:
                raise LedgerError(f"cannot append to {segment}: {err}") from err
            self._segment_records += 1
            self._segment_bytes += len(encoded)
            self._admit(manifest, segment.name)
            self._write_index()

    def _write_index(self) -> None:
        """Rewrite the compacted index (atomically; it is only a cache)."""
        index_path = self.directory / _INDEX_NAME
        payload = {
            "format": LEDGER_SCHEMA_VERSION,
            "runs": [
                {"segment": self._index[run_id][0], **self._index[run_id][1]}
                for run_id in self._order
            ],
        }
        tmp = index_path.with_suffix(".json.tmp")
        try:
            tmp.write_text(json.dumps(payload, indent=2) + "\n")
            tmp.replace(index_path)
        except OSError:
            # The index is a cache; a failed rewrite costs a rescan later.
            pass

    # -- reading --------------------------------------------------------

    def runs(
        self,
        fingerprint: str | None = None,
        workload: str | None = None,
        outcome: str | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        """Compacted run summaries, oldest first, optionally filtered."""
        with self._lock:
            rows = [self._index[run_id][1] for run_id in self._order]
        if fingerprint is not None:
            rows = [r for r in rows if r.get("fingerprint") == fingerprint]
        if workload is not None:
            rows = [r for r in rows if r.get("workload") == workload]
        if outcome is not None:
            rows = [r for r in rows if r.get("outcome") == outcome]
        if limit is not None:
            rows = rows[-limit:]
        return rows

    def get(self, run_id: str) -> dict:
        """The full manifest of one run (reads its segment back)."""
        with self._lock:
            entry = self._index.get(run_id)
        if entry is None:
            raise LedgerError(f"no run {run_id!r} in ledger {self.directory}")
        segment = self.directory / entry[0]
        try:
            text = segment.read_text()
        except OSError as err:
            raise LedgerError(f"cannot read ledger segment {segment}: {err}") from err
        for line in text.split("\n"):
            if not line.strip():
                continue
            try:
                manifest = json.loads(line)
            except ValueError:
                continue  # torn line; recovery already warned about it
            if (
                isinstance(manifest, dict)
                and manifest.get("run_id") == run_id
                and manifest.get("kind", "run") == "run"
            ):
                if manifest.get("v") != LEDGER_SCHEMA_VERSION:
                    raise LedgerError(
                        f"run {run_id!r} carries schema version "
                        f"{manifest.get('v')!r}; this build reads "
                        f"{LEDGER_SCHEMA_VERSION}"
                    )
                return manifest
        raise LedgerError(
            f"run {run_id!r} is indexed in {entry[0]} but its record is gone "
            "(segment truncated after indexing?)"
        )

    def open_runs(self) -> list[dict]:
        """Admission stamps of runs that never closed, oldest first.

        A run is *open* when its ``run_start`` record has no later
        closing ``run`` manifest and no ``orphan`` stamp — the recording
        process died mid-run.  This is crash recovery's work queue.
        """
        with self._lock:
            return [
                dict(start)
                for run_id, start in self._starts.items()
                if run_id not in self._index and run_id not in self._orphans
            ]

    def orphans(self) -> list[dict]:
        """Orphan stamps (open runs recovery gave up on), oldest first."""
        with self._lock:
            return [dict(record) for record in self._orphans.values()]

    def breaker_states(self) -> dict[str, dict]:
        """Latest persisted breaker record per workload fingerprint."""
        with self._lock:
            return {fp: dict(record) for fp, record in self._breakers.items()}

    def aggregates(self) -> list[dict]:
        """Per-fingerprint cross-run aggregates, busiest shape first.

        This is the read surface the cost-based optimizer's feedback
        loop consumes: measured latency percentiles, q-error, and
        fallback rates per normalized program shape.
        """
        groups: dict[str, list[dict]] = {}
        for row in self.runs():
            groups.setdefault(row.get("fingerprint") or "?", []).append(row)
        out = []
        for fingerprint, rows in groups.items():
            latencies = sorted(
                float(r["elapsed_ms"]) for r in rows if r.get("elapsed_ms") is not None
            )
            q_means = [float(r["q_mean"]) for r in rows if r.get("q_mean") is not None]
            ops = sum(int(r.get("ops") or 0) for r in rows)
            fallbacks = sum(int(r.get("fallbacks") or 0) for r in rows)
            outcomes: dict[str, int] = {}
            for r in rows:
                key = str(r.get("outcome"))
                outcomes[key] = outcomes.get(key, 0) + 1
            out.append(
                {
                    "fingerprint": fingerprint,
                    "runs": len(rows),
                    "workloads": sorted({str(r.get("workload")) for r in rows}),
                    "outcomes": outcomes,
                    "latency_ms": {
                        "p50": round(_percentile(latencies, 0.50), 3),
                        "p95": round(_percentile(latencies, 0.95), 3),
                        "max": round(latencies[-1], 3) if latencies else 0.0,
                    },
                    "q_error_mean": (
                        round(sum(q_means) / len(q_means), 3) if q_means else None
                    ),
                    "ops": ops,
                    "fallback_rate": round(fallbacks / ops, 4) if ops else 0.0,
                }
            )
        out.sort(key=lambda record: (-record["runs"], record["fingerprint"]))
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._order)

    def __repr__(self) -> str:
        return f"RunLedger({self.directory}, {len(self)} run(s))"


def _percentile(ordered, fraction: float) -> float:
    if not ordered:
        return 0.0
    import math

    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


# ----------------------------------------------------------------------
# The recorder: event tail -> run manifest
# ----------------------------------------------------------------------

class RunRecorder:
    """Builds one run manifest from the live event bus.

    A bounded :class:`~repro.obs.events.RingSubscriber` retains the
    run's events; :meth:`finish` drains it and folds the tail into the
    manifest — per-op span summaries, est-vs-actual q-errors, fallback
    reasons, while-iteration counts, checkpoint pointer, governor kills
    — then appends to the ledger.  The ring's own drop count is recorded
    in the manifest (``events.dropped``), so silently truncated
    telemetry is visible to every later consumer.
    """

    __slots__ = ("ring", "ledger", "run_id", "_bus", "_started")

    def __init__(
        self,
        bus: EventBus,
        ledger: RunLedger | None = None,
        capacity: int = 4096,
        run_id: str | None = None,
    ):
        self.ring: RingSubscriber = bus.ring(capacity)
        self.ledger = ledger
        self.run_id = run_id if run_id is not None else new_run_id()
        self._bus = bus
        self._started = time.perf_counter()

    def detach(self) -> None:
        self._bus.detach(self.ring)

    def finish(
        self,
        *,
        workload: str,
        program=None,
        engine: str = "naive",
        seed: int = 0,
        result_db=None,
        error: BaseException | None = None,
        limits: dict | None = None,
        attempts: int = 1,
        kills: list[str] | None = None,
        stats=None,
        replay_spec: str | None = None,
        result_bytes_cap: int | None = None,
        supervisor: dict | None = None,
        optimizer: dict | None = None,
    ) -> dict:
        """Drain the ring, build the manifest, append it to the ledger.

        ``replay_spec`` names how to re-derive the program and input
        database (a workload spec or example name); runs without one are
        recorded but marked non-replayable.  ``optimizer`` records that
        the run executed a rewritten plan (enabled rules + the stats
        snapshot the plan was chosen from), so replay can re-derive the
        same plan instead of diverging on the program fingerprint.  The
        recorder detaches from the bus, so a recorder finishes exactly
        once.
        """
        elapsed_ms = round((time.perf_counter() - self._started) * 1e3, 3)
        events = self.ring.drain()
        self.detach()

        spans: dict[str, dict] = {}
        op_sequence: list[list] = []
        estimates_by_op: dict[str, dict] = {}
        fallbacks: dict[str, int] = {}
        while_iterations = 0
        checkpoint = None
        governor_kills: list[dict] = []
        outcome_event = None
        q_sum = 0.0
        q_max = 0.0
        q_count = 0
        for event in events:
            kind = event.kind
            data = event.data
            if kind == "span_finish":
                op = str(data.get("op", "?"))
                record = spans.get(op)
                if record is None:
                    record = spans[op] = {
                        "calls": 0, "errors": 0, "rows_out": 0, "ms": 0.0
                    }
                record["calls"] += 1
                record["ms"] = round(
                    record["ms"] + float(data.get("duration_ms", 0.0) or 0.0), 3
                )
                if data.get("ok", True):
                    rows_out = int(data.get("rows_out", 0) or 0)
                    record["rows_out"] += rows_out
                    op_sequence.append([op, rows_out])
                else:
                    record["errors"] += 1
            elif kind == "op_estimate":
                op = str(data.get("op", "?"))
                q = float(data.get("q_error", 1.0))
                record = estimates_by_op.get(op)
                if record is None:
                    record = estimates_by_op[op] = {"count": 0, "q_max": 0.0}
                record["count"] += 1
                if q > record["q_max"]:
                    record["q_max"] = round(q, 4)
                q_sum += q
                q_count += 1
                if q > q_max:
                    q_max = q
            elif kind == "engine_fallback":
                reason = str(data.get("reason", "?"))
                fallbacks[reason] = fallbacks.get(reason, 0) + 1
            elif kind == "while_iteration":
                while_iterations += 1
            elif kind == "checkpoint_write":
                path = data.get("path")
                checkpoint = str(path) if path is not None else checkpoint
            elif kind == "governor_kill":
                governor_kills.append(
                    {
                        "kind": str(data.get("kind")),
                        "limit": data.get("limit"),
                        "used": data.get("used"),
                    }
                )
            elif kind == "run_finish":
                outcome_event = data

        if error is not None:
            if isinstance(error, (BudgetExceededError, CancelledError)):
                status = "killed"
            else:
                status = "error"
        elif outcome_event is not None and outcome_event.get("outcome") not in (
            None, "ok"
        ):
            status = str(outcome_event["outcome"])
        else:
            status = "ok"
        outcome: dict = {"status": status, "attempts": attempts}
        if kills:
            outcome["kills"] = list(kills)
        if error is not None:
            outcome["error_type"] = type(error).__name__
            outcome["error"] = str(error)
            outcome["error_context"] = dict(getattr(error, "context", {}) or {})
        if governor_kills:
            outcome["governor_kills"] = governor_kills

        result: dict | None = None
        if result_db is not None:
            digest, tables, rows, data = database_digest(result_db)
            result = {"sha256": digest, "tables": tables, "rows": rows}
            cap = (
                result_bytes_cap
                if result_bytes_cap is not None
                else (
                    self.ledger.result_bytes_cap
                    if self.ledger is not None
                    else DEFAULT_RESULT_BYTES_CAP
                )
            )
            payload = json.dumps(data, separators=(",", ":"))
            if len(payload) <= cap:
                result["data"] = data
            else:
                result["data"] = None
                result["bytes"] = len(payload)

        program_block: dict | None = None
        if program is not None:
            from .workload import fingerprint_program, normalize_program

            try:
                normalized = normalize_program(program)
                fingerprint = fingerprint_program(program)
            except Exception:
                normalized = repr(program)
                fingerprint = hashlib.sha256(
                    normalized.encode("utf-8")
                ).hexdigest()[:16]
            program_block = {
                "repr": repr(program),
                "normalized": normalized,
                "fingerprint": fingerprint,
            }
        else:
            program_block = {
                "repr": None,
                "normalized": workload,
                "fingerprint": hashlib.sha256(
                    workload.encode("utf-8")
                ).hexdigest()[:16],
            }

        manifest = {
            "run_id": self.run_id,
            "ts": round(time.time(), 3),
            "workload": {
                "label": workload,
                "spec": replay_spec,
                "replayable": replay_spec is not None and result is not None,
            },
            "program": program_block,
            "engine": engine,
            "seed": seed,
            "limits": limits,
            "outcome": outcome,
            "elapsed_ms": elapsed_ms,
            "result": result,
            "spans": spans,
            "op_sequence": op_sequence,
            "estimates": {
                "count": q_count,
                "q_mean": round(q_sum / q_count, 4) if q_count else None,
                "q_max": round(q_max, 4) if q_count else None,
                "by_op": estimates_by_op,
            },
            "fallbacks": fallbacks,
            "while_iterations": while_iterations,
            "checkpoint": checkpoint,
            "stats_fingerprint": getattr(stats, "fingerprint", None),
            "events": {
                "published": self._bus.published,
                "received": self.ring.received,
                "dropped": self.ring.dropped,
            },
        }
        if supervisor is not None:
            manifest["supervisor"] = supervisor
        if optimizer is not None:
            manifest["optimizer"] = optimizer
        if self.ledger is not None:
            self.ledger.record(manifest)
        return manifest

    def __repr__(self) -> str:
        return f"RunRecorder({self.run_id}, {self.ring!r})"


# ----------------------------------------------------------------------
# The LEDGER singleton (OBS/GOV/EVT/EST pattern)
# ----------------------------------------------------------------------

class _LedgerState:
    """The mutable global: one attribute check guards every consult site."""

    __slots__ = ("active", "ledger")

    def __init__(self):
        self.active = False
        #: The installed :class:`RunLedger`, or None.
        self.ledger: RunLedger | None = None


#: The process-wide ledger state.  The engine hot path never touches it
#: (recording is bus-fed); drivers check ``LEDGER.active`` to decide
#: whether a finished run should be journaled.
LEDGER = _LedgerState()


@contextmanager
def ledger_scope(directory: str | Path | RunLedger) -> Iterator[RunLedger]:
    """Install a ledger for the duration of the ``with`` block.

    Accepts a directory (opened/created as a :class:`RunLedger`) or an
    already-open ledger; restores the previous state on exit so scopes
    nest exactly like ``observation()``/``event_stream()``.
    """
    ledger = (
        directory if isinstance(directory, RunLedger) else RunLedger(directory)
    )
    previous = (LEDGER.active, LEDGER.ledger)
    LEDGER.ledger = ledger
    LEDGER.active = True
    try:
        yield ledger
    finally:
        LEDGER.active, LEDGER.ledger = previous
