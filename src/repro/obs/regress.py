"""Persistent benchmark trajectory and regression comparison.

The trajectory file (``BENCH_trajectory.json`` at the repository root)
is the committed perf history of the engine: for every benchmark label
it keeps a short list of ``{sha, median_ms, recorded}`` entries, one per
git revision that ran the benchmarks.  ``benchmarks/conftest.py`` rolls
each run's ``report()`` records into it; ``python -m repro bench-compare
<baseline> <current>`` diffs two trajectory files and exits non-zero
when any shared label regressed beyond the tolerance — the CI gate that
stops a slow commit from merging quietly.

The module has no third-party dependencies (stdlib json/subprocess plus
the library's own error taxonomy) so the benchmark conftest and the CLI
can both import it.  External-tool failures — a hung ``git`` in
particular — surface as the typed
:class:`~repro.core.errors.ExternalToolError` in strict mode and degrade
to ``"unknown"`` otherwise, so they can never kill ``bench-compare``.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

__all__ = [
    "TRAJECTORY_FORMAT",
    "MAX_ENTRIES_PER_LABEL",
    "GIT_PROBE_TIMEOUT_S",
    "current_git_sha",
    "load_trajectory",
    "latest_medians",
    "dedupe_trajectory",
    "update_trajectory",
    "compare_trajectories",
    "Comparison",
    "render_comparison",
]

#: Version stamp written into the trajectory file.
TRAJECTORY_FORMAT = 1

#: History kept per benchmark label (oldest entries are dropped).
MAX_ENTRIES_PER_LABEL = 50


#: Wall-clock budget for the git SHA probe.
GIT_PROBE_TIMEOUT_S = 10


def current_git_sha(cwd: str | Path | None = None, strict: bool = False) -> str:
    """The short git SHA of ``cwd``'s checkout, or ``"unknown"``.

    A hung or missing ``git`` must never take ``bench-compare`` or the
    benchmark teardown down with it: the probe's timeout and failures
    are caught here.  ``strict=True`` surfaces them instead as a typed
    :class:`~repro.core.errors.ExternalToolError` (with the tool name
    and timeout in the context) for callers that need the diagnosis.
    """
    from ..core.errors import ExternalToolError

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=GIT_PROBE_TIMEOUT_S,
        )
    except subprocess.TimeoutExpired as err:
        if strict:
            raise ExternalToolError(
                "git SHA probe timed out",
                tool="git rev-parse",
                timeout_s=GIT_PROBE_TIMEOUT_S,
            ) from err
        return "unknown"
    except (OSError, subprocess.SubprocessError) as err:
        if strict:
            raise ExternalToolError(
                f"git SHA probe failed: {err}", tool="git rev-parse"
            ) from err
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def load_trajectory(path: str | Path) -> dict:
    """The parsed trajectory file, or an empty skeleton when unreadable."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        data = None
    if not isinstance(data, dict) or not isinstance(data.get("benchmarks"), dict):
        return {"format": TRAJECTORY_FORMAT, "benchmarks": {}}
    return data


def latest_medians(trajectory: Mapping) -> dict[str, float]:
    """label → most recent ``median_ms`` from one trajectory object."""
    out: dict[str, float] = {}
    for label, entries in trajectory.get("benchmarks", {}).items():
        if isinstance(entries, list) and entries:
            last = entries[-1]
            if isinstance(last, dict) and isinstance(
                last.get("median_ms"), (int, float)
            ):
                out[str(label)] = float(last["median_ms"])
    return out


def dedupe_trajectory(trajectory: dict) -> dict:
    """Collapse same-SHA duplicates in-place, per label (keep the last).

    Trajectory files written before the same-SHA replacement existed (or
    merged from parallel runs) can hold several entries for one revision
    of one label; only the most recent measurement is meaningful.  Order
    is otherwise preserved.  Returns the trajectory for chaining.
    """
    for label, entries in trajectory.get("benchmarks", {}).items():
        if not isinstance(entries, list):
            continue
        kept: list = []
        seen_shas: dict[str, int] = {}
        for entry in entries:
            sha = entry.get("sha") if isinstance(entry, dict) else None
            if sha is not None and sha in seen_shas:
                kept[seen_shas[sha]] = entry
                continue
            if sha is not None:
                seen_shas[sha] = len(kept)
            kept.append(entry)
        if len(kept) != len(entries):
            trajectory["benchmarks"][label] = kept
    return trajectory


def update_trajectory(
    path: str | Path,
    medians: Mapping[str, float],
    sha: str,
    recorded: str,
) -> dict:
    """Fold one run's per-label medians into the trajectory file.

    A label's entry for ``sha`` is replaced if it exists (re-running on
    the same revision refreshes the measurement rather than growing the
    history); per-label history is capped at
    :data:`MAX_ENTRIES_PER_LABEL`.  The whole file is also passed
    through :func:`dedupe_trajectory` on every write, so duplicates that
    predate the replacement rule heal themselves even on labels this run
    did not touch.  Returns the updated object; write failures
    (read-only checkouts) are swallowed.
    """
    path = Path(path)
    trajectory = dedupe_trajectory(load_trajectory(path))
    benchmarks = trajectory["benchmarks"]
    for label, median_ms in sorted(medians.items()):
        entries = [
            entry
            for entry in benchmarks.get(label, [])
            if isinstance(entry, dict) and entry.get("sha") != sha
        ]
        entries.append(
            {"sha": sha, "median_ms": round(float(median_ms), 6), "recorded": recorded}
        )
        benchmarks[label] = entries[-MAX_ENTRIES_PER_LABEL:]
    trajectory["format"] = TRAJECTORY_FORMAT
    try:
        path.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    except OSError:
        pass
    return trajectory


@dataclass(frozen=True)
class Comparison:
    """The outcome of diffing two trajectory files."""

    rows: tuple[dict, ...]  # label, baseline_ms, current_ms, ratio, regressed
    tolerance: float
    only_baseline: tuple[str, ...]
    only_current: tuple[str, ...]

    @property
    def regressions(self) -> tuple[dict, ...]:
        return tuple(row for row in self.rows if row["regressed"])

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_trajectories(
    baseline_path: str | Path,
    current_path: str | Path,
    tolerance: float = 1.5,
) -> Comparison:
    """Diff the latest medians of two trajectory files.

    A shared label regresses when ``current / baseline > tolerance``.
    Labels present on only one side are reported but never fail the
    comparison (new benchmarks appear, old ones retire).
    """
    baseline = latest_medians(load_trajectory(baseline_path))
    current = latest_medians(load_trajectory(current_path))
    rows = []
    for label in sorted(set(baseline) & set(current)):
        base_ms, cur_ms = baseline[label], current[label]
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        rows.append(
            {
                "label": label,
                "baseline_ms": base_ms,
                "current_ms": cur_ms,
                "ratio": ratio,
                "regressed": ratio > tolerance,
            }
        )
    return Comparison(
        rows=tuple(rows),
        tolerance=tolerance,
        only_baseline=tuple(sorted(set(baseline) - set(current))),
        only_current=tuple(sorted(set(current) - set(baseline))),
    )


def render_comparison(comparison: Comparison) -> str:
    """The human-readable diff ``bench-compare`` prints."""
    if not comparison.rows and not comparison.only_baseline and not comparison.only_current:
        return "no benchmark labels to compare"
    lines = []
    if comparison.rows:
        label_width = max(len(row["label"]) for row in comparison.rows)
        lines.append(
            f"{'benchmark':<{label_width}}  {'baseline':>10}  {'current':>10}  ratio"
        )
        for row in comparison.rows:
            flag = "  REGRESSED" if row["regressed"] else ""
            lines.append(
                f"{row['label']:<{label_width}}  "
                f"{row['baseline_ms']:>8.3f}ms  {row['current_ms']:>8.3f}ms  "
                f"{row['ratio']:.2f}x{flag}"
            )
    for label in comparison.only_baseline:
        lines.append(f"(baseline only: {label})")
    for label in comparison.only_current:
        lines.append(f"(current only: {label})")
    regressions = comparison.regressions
    lines.append("")
    if regressions:
        lines.append(
            f"{len(regressions)} regression(s) beyond {comparison.tolerance:.2f}x "
            f"over {len(comparison.rows)} shared label(s)"
        )
    else:
        lines.append(
            f"no regressions beyond {comparison.tolerance:.2f}x "
            f"over {len(comparison.rows)} shared label(s)"
        )
    return "\n".join(lines)
