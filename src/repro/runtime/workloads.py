"""Synthetic long-running workloads for the hardened runtime.

The bundled examples in :mod:`repro.obs.examples` are sized to finish in
milliseconds — perfect for traces, useless for demonstrating deadlines
and checkpoint/resume.  This module builds *parameterized* workloads
whose runtime scales with one knob, without bloating the example
registry (and the lineage audit that walks it).

The flagship is the paper's own fixpoint: transitive closure of an
``n``-node chain in FO+while, compiled to the tabular algebra by the
Theorem 4.1 compiler.  An ``n`` around 12 runs for ~0.5 s — long enough
that a 50 ms deadline reliably kills it mid-fixpoint, short enough that
CI converges quickly even when every resume attempt re-applies the same
50 ms deadline.

``python -m repro run tc:12 ...`` resolves here via :func:`parse_workload`.

Like :mod:`repro.runtime.chaos`, this module imports the engine, so it
must only be imported lazily — never from ``repro.runtime``'s
``__init__``.
"""

from __future__ import annotations

from ..core.errors import ReproError

__all__ = [
    "DEFAULT_TC_NODES",
    "DEFAULT_CHAIN_ROWS",
    "transitive_closure_workload",
    "chain_join_workload",
    "parse_workload",
]

#: Chain length used when ``tc`` is requested without a size.
DEFAULT_TC_NODES = 12

#: Per-table rows used when ``chain`` is requested without a size.
DEFAULT_CHAIN_ROWS = 8


def transitive_closure_workload(nodes: int = DEFAULT_TC_NODES):
    """``(program, db)`` computing the transitive closure of a chain.

    The FO+while source is the same Delta-driven fixpoint as the
    ``fo-while`` bundled example; ``nodes`` is the chain length, so the
    loop runs ``nodes - 2`` iterations and the closure holds
    ``nodes * (nodes - 1) / 2`` edges.
    """
    from ..relational import (
        Assign,
        Difference,
        FWProgram,
        Join,
        Project,
        Rel,
        Relation,
        RelationalDatabase,
        RenameAttr,
        Union,
        WhileNotEmpty,
        compile_program,
        relational_to_tabular,
    )

    if nodes < 2:
        raise ReproError(f"transitive-closure workload needs >= 2 nodes, got {nodes}")
    step = Project(
        Join(RenameAttr(Rel("TC"), "Dst", "Mid"), RenameAttr(Rel("E"), "Src", "Mid")),
        ["Src", "Dst"],
    )
    fw = FWProgram(
        [
            Assign("TC", Rel("E")),
            Assign("Delta", Rel("E")),
            WhileNotEmpty(
                "Delta",
                [
                    Assign("New", step),
                    Assign("Delta", Difference(Rel("New"), Rel("TC"))),
                    Assign("TC", Union(Rel("TC"), Rel("Delta"))),
                ],
            ),
        ]
    )
    program = compile_program(fw, {"E": ("Src", "Dst")})
    edges = Relation("E", ["Src", "Dst"], [(i, i + 1) for i in range(1, nodes)])
    db = relational_to_tabular(RelationalDatabase([edges]))
    return program, db


def chain_join_workload(rows: int = DEFAULT_CHAIN_ROWS):
    """``(program, db)``: a 4-way PRODUCT chain with late selections.

    Four tables ``A``–``D`` of ``rows`` rows, one distinct-valued data
    column each (``A0``–``D0``, values ``0..rows-1``).  The program folds
    them left-to-right and only then applies the two selections::

        T ← A × B × C × D;  T ← σ_{A0≈D0}(T);  T ← σ_{B0≈C0}(T)

    Evaluated syntactically the intermediate reaches ``rows⁴`` rows; an
    order that pairs ``A`` with ``D`` and ``B`` with ``C`` early keeps
    every intermediate at ``rows²`` — the workload the cost-based
    optimizer exists to win, and the benchmark/golden-plan fixture for
    the estimate-driven join order (final result: ``rows²`` rows).
    """
    from ..algebra.programs.statements import Program, assign
    from ..core import TabularDatabase, make_table

    if rows < 1:
        raise ReproError(f"chain workload needs >= 1 row, got {rows}")
    tables = []
    for name in ("A", "B", "C", "D"):
        attr = f"{name}0"
        tables.append(
            make_table(name, [attr], [[f"v{i}"] for i in range(rows)])
        )
    db = TabularDatabase(tables)
    program = Program(
        [
            assign("T", "PRODUCT", "A", "B"),
            assign("T", "PRODUCT", "T", "C"),
            assign("T", "PRODUCT", "T", "D"),
            assign("T", "SELECT", "T", left="A0", right="D0"),
            assign("T", "SELECT", "T", left="B0", right="C0"),
        ]
    )
    return program, db


def parse_workload(spec: str):
    """Resolve a workload spec to ``(label, program, db)``, or None.

    Recognized specs: ``tc`` / ``tc:N`` (transitive closure of an N-node
    chain) and ``chain`` / ``chain:N`` (a 4-way product chain with late
    selections over N-row tables).  Anything else returns None so the
    caller can fall back to the bundled-example registry.  A
    recognized-but-malformed size raises
    :class:`~repro.core.errors.ReproError`.
    """
    name, _, size = spec.partition(":")
    if name == "tc":
        if not size:
            nodes = DEFAULT_TC_NODES
        else:
            try:
                nodes = int(size)
            except ValueError:
                raise ReproError(
                    f"malformed workload size in {spec!r}; expected tc:N"
                ) from None
        program, db = transitive_closure_workload(nodes)
        return f"tc:{nodes}", program, db
    if name == "chain":
        if not size:
            rows = DEFAULT_CHAIN_ROWS
        else:
            try:
                rows = int(size)
            except ValueError:
                raise ReproError(
                    f"malformed workload size in {spec!r}; expected chain:N"
                ) from None
        program, db = chain_join_workload(rows)
        return f"chain:{rows}", program, db
    return None
