"""Synthetic long-running workloads for the hardened runtime.

The bundled examples in :mod:`repro.obs.examples` are sized to finish in
milliseconds — perfect for traces, useless for demonstrating deadlines
and checkpoint/resume.  This module builds *parameterized* workloads
whose runtime scales with one knob, without bloating the example
registry (and the lineage audit that walks it).

The flagship is the paper's own fixpoint: transitive closure of an
``n``-node chain in FO+while, compiled to the tabular algebra by the
Theorem 4.1 compiler.  An ``n`` around 12 runs for ~0.5 s — long enough
that a 50 ms deadline reliably kills it mid-fixpoint, short enough that
CI converges quickly even when every resume attempt re-applies the same
50 ms deadline.

``python -m repro run tc:12 ...`` resolves here via :func:`parse_workload`.

Like :mod:`repro.runtime.chaos`, this module imports the engine, so it
must only be imported lazily — never from ``repro.runtime``'s
``__init__``.
"""

from __future__ import annotations

from ..core.errors import ReproError

__all__ = [
    "DEFAULT_TC_NODES",
    "transitive_closure_workload",
    "parse_workload",
]

#: Chain length used when ``tc`` is requested without a size.
DEFAULT_TC_NODES = 12


def transitive_closure_workload(nodes: int = DEFAULT_TC_NODES):
    """``(program, db)`` computing the transitive closure of a chain.

    The FO+while source is the same Delta-driven fixpoint as the
    ``fo-while`` bundled example; ``nodes`` is the chain length, so the
    loop runs ``nodes - 2`` iterations and the closure holds
    ``nodes * (nodes - 1) / 2`` edges.
    """
    from ..relational import (
        Assign,
        Difference,
        FWProgram,
        Join,
        Project,
        Rel,
        Relation,
        RelationalDatabase,
        RenameAttr,
        Union,
        WhileNotEmpty,
        compile_program,
        relational_to_tabular,
    )

    if nodes < 2:
        raise ReproError(f"transitive-closure workload needs >= 2 nodes, got {nodes}")
    step = Project(
        Join(RenameAttr(Rel("TC"), "Dst", "Mid"), RenameAttr(Rel("E"), "Src", "Mid")),
        ["Src", "Dst"],
    )
    fw = FWProgram(
        [
            Assign("TC", Rel("E")),
            Assign("Delta", Rel("E")),
            WhileNotEmpty(
                "Delta",
                [
                    Assign("New", step),
                    Assign("Delta", Difference(Rel("New"), Rel("TC"))),
                    Assign("TC", Union(Rel("TC"), Rel("Delta"))),
                ],
            ),
        ]
    )
    program = compile_program(fw, {"E": ("Src", "Dst")})
    edges = Relation("E", ["Src", "Dst"], [(i, i + 1) for i in range(1, nodes)])
    db = relational_to_tabular(RelationalDatabase([edges]))
    return program, db


def parse_workload(spec: str):
    """Resolve a workload spec to ``(label, program, db)``, or None.

    Recognized specs: ``tc`` and ``tc:N`` (transitive closure of an
    N-node chain).  Anything else returns None so the caller can fall
    back to the bundled-example registry.  A recognized-but-malformed
    size raises :class:`~repro.core.errors.ReproError`.
    """
    name, _, size = spec.partition(":")
    if name != "tc":
        return None
    if not size:
        nodes = DEFAULT_TC_NODES
    else:
        try:
            nodes = int(size)
        except ValueError:
            raise ReproError(f"malformed workload size in {spec!r}; expected tc:N") from None
    program, db = transitive_closure_workload(nodes)
    return f"tc:{nodes}", program, db
