"""Declarative supervision policy: retry/backoff rules and circuit breakers.

This module holds the *decisions* of the fault-tolerant supervisor —
pure data and pure functions, importable without loading the engine —
while :mod:`repro.runtime.supervisor` holds the *mechanics* (driving
:func:`~repro.runtime.checkpoint.run_hardened` under these rules).

Three pieces:

* :class:`RetryPolicy` — a frozen, JSON-round-trippable description of
  how hard to try: attempt cap, exponential backoff with **seeded
  deterministic jitter** (two supervisors with the same seed sleep the
  same schedule, so chaos tests replay exactly), per-attempt and total
  wall-clock deadlines, and the degradation-ladder switches;
* :func:`classify_error` — the error taxonomy mapped to supervision
  decisions.  The Conjunctive Table Algebras axioms make a re-executed
  program equivalent to the original run, which is what licenses the
  retryable classes: a transient injected fault (``retry``), a budget
  kill with checkpointed progress (``resume``), and a vector-engine
  failure (``degrade`` to the naive backend).  Everything rooted in the
  *workload itself* — non-termination, usage errors, verification
  mismatch — is terminal (``fail``): retrying a wrong program yields
  the same wrong answer, deterministically;
* :class:`CircuitBreaker` — per-workload-fingerprint quarantine with
  the classic closed → open → half-open state machine.  State is plain
  data (:meth:`CircuitBreaker.states`) so the run ledger can persist it
  as ``breaker`` records and a restarted supervisor resumes exactly
  where the dead one left off.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace

from ..core.errors import (
    BudgetExceededError,
    CancelledError,
    CheckpointError,
    FaultInjectedError,
    LimitExceededError,
    NonTerminationError,
    QuarantinedError,
    ReproError,
)
from ..obs import events as _ev

__all__ = [
    "DECISIONS",
    "BREAKER_STATES",
    "RetryPolicy",
    "classify_error",
    "BreakerPolicy",
    "CircuitBreaker",
]

#: The supervision-decision vocabulary (what :func:`classify_error`
#: returns and what ``retry_scheduled`` events / attempt records carry).
DECISIONS = ("retry", "resume", "degrade", "fail")

#: The circuit-breaker state machine's states.
BREAKER_STATES = ("closed", "open", "half_open")


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """How hard the supervisor tries before declaring a run dead.

    * ``max_attempts`` — total executions, including the first (1 = no
      retries at all);
    * ``base_backoff_s`` / ``backoff_factor`` / ``max_backoff_s`` — the
      exponential schedule for ``retry`` decisions (``resume`` decisions
      continue immediately: checkpointed progress means waiting buys
      nothing);
    * ``jitter`` — fractional spread (0.1 = ±10%) applied with a
      ``random.Random`` seeded from ``(seed, attempt)``, so the schedule
      is fully deterministic per seed yet de-synchronized across seeds;
    * ``attempt_deadline_s`` — wall-clock cap folded into each attempt's
      governor limits (the per-attempt kill that makes ``resume`` loops
      converge);
    * ``total_deadline_s`` — wall-clock cap over the *whole* supervised
      run, all attempts and backoffs included;
    * ``degrade_engine`` — whether a vector-engine failure retries the
      attempt on the naive backend (with a ``degraded`` stamp);
    * ``shed_obs`` — whether a memory-budget kill sheds the optional
      observability layers (events/metrics/estimation) on the retry.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.01
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0
    jitter: float = 0.1
    seed: int = 0
    attempt_deadline_s: float | None = None
    total_deadline_s: float | None = None
    degrade_engine: bool = True
    shed_obs: bool = True

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ReproError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ReproError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ReproError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if not (0.0 <= self.jitter <= 1.0):
            raise ReproError(f"jitter must be within [0, 1], got {self.jitter}")

    def backoff_s(self, attempt: int) -> float:
        """Seconds to sleep after ``attempt`` (1-based) fails retryably.

        Exponential in the attempt number, capped, with deterministic
        jitter: the RNG is seeded from an integer mix of the policy seed
        and the attempt number (``PYTHONHASHSEED``-independent), so the
        full schedule replays bit-for-bit for a given policy seed.
        """
        base = min(
            self.base_backoff_s * self.backoff_factor ** (attempt - 1),
            self.max_backoff_s,
        )
        if base <= 0.0 or self.jitter == 0.0:
            return base
        rng = random.Random(self.seed * 1_000_003 + attempt)
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def to_json(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_backoff_s": self.base_backoff_s,
            "backoff_factor": self.backoff_factor,
            "max_backoff_s": self.max_backoff_s,
            "jitter": self.jitter,
            "seed": self.seed,
            "attempt_deadline_s": self.attempt_deadline_s,
            "total_deadline_s": self.total_deadline_s,
            "degrade_engine": self.degrade_engine,
            "shed_obs": self.shed_obs,
        }

    @classmethod
    def from_json(cls, data: dict) -> "RetryPolicy":
        if not isinstance(data, dict):
            raise ReproError(f"a retry policy is a JSON object, got {data!r}")
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ReproError(f"unknown retry-policy field(s) {sorted(unknown)}")
        try:
            return cls(**known)
        except TypeError as err:
            raise ReproError(f"malformed retry policy: {err}") from err


def classify_error(error: BaseException, engine: str = "naive") -> str:
    """Map one attempt's error to a supervision decision.

    * ``retry``   — transient by construction: an injected fault
      (:class:`FaultInjectedError`).  A fresh attempt past the fired
      occurrence converges;
    * ``resume``  — a budget kill (deadline/rows/cells/memory) or
      cooperative cancel: progress up to the last checkpoint is valid
      and determinacy makes resumption equivalent to the original run;
    * ``degrade`` — the attempt died on the vector engine in a way the
      naive backend cannot reproduce: a kernel crash (a non-
      :class:`~repro.core.errors.ReproError` exception) or a structural
      error produced mid-kernel.  Retry the attempt one rung down the
      ladder;
    * ``fail``    — everything rooted in the workload itself:
      non-termination, SETNEW guard trips, checkpoint misuse, usage and
      evaluation errors.  Deterministic programs fail deterministically;
      retrying burns budget without changing the answer.
    """
    if isinstance(error, FaultInjectedError):
        return "retry"
    if isinstance(error, (NonTerminationError, LimitExceededError)):
        return "fail"
    if isinstance(error, (BudgetExceededError, CancelledError)):
        return "resume"
    if isinstance(error, (CheckpointError, QuarantinedError)):
        return "fail"
    if engine == "vector":
        # Any other failure on the vector backend — a kernel bug, a
        # corrupt kernel output rejected by Table validation — may be
        # backend-specific: give the naive engine one shot at it.
        return "degrade"
    return "fail"


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BreakerPolicy:
    """Thresholds of the per-fingerprint circuit breaker.

    ``failure_threshold`` consecutive terminal failures open the
    breaker; after ``cooldown_s`` one half-open probe is admitted — its
    success closes the breaker, its failure re-opens it (and restarts
    the cool-down).
    """

    failure_threshold: int = 3
    cooldown_s: float = 30.0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ReproError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_s < 0:
            raise ReproError(f"cooldown_s must be >= 0, got {self.cooldown_s}")

    def to_json(self) -> dict:
        return {
            "failure_threshold": self.failure_threshold,
            "cooldown_s": self.cooldown_s,
        }


@dataclass
class _BreakerEntry:
    """One fingerprint's live breaker state."""

    state: str = "closed"
    failures: int = 0
    opened_ts: float | None = None
    updated_ts: float = 0.0

    def to_json(self) -> dict:
        return {
            "state": self.state,
            "failures": self.failures,
            "opened_ts": self.opened_ts,
            "updated_ts": self.updated_ts,
        }


class CircuitBreaker:
    """Per-workload-fingerprint quarantine (closed / open / half-open).

    ``ledger`` (a :class:`~repro.obs.ledger.RunLedger`), when given,
    does two things: previously persisted ``breaker`` records seed the
    in-memory state at construction (quarantine survives restarts), and
    every transition appends a fresh record.  ``clock`` is wall-clock
    (:func:`time.time`) because the cool-down must survive a process
    restart; tests inject a fake.
    """

    def __init__(self, policy: BreakerPolicy | None = None, ledger=None, clock=time.time):
        self.policy = policy if policy is not None else BreakerPolicy()
        self.ledger = ledger
        self.clock = clock
        self._entries: dict[str, _BreakerEntry] = {}
        #: Transition counts keyed by ``(from_state, to_state)``.
        self.transitions: dict[tuple[str, str], int] = {}
        if ledger is not None:
            for fingerprint, record in ledger.breaker_states().items():
                state = str(record.get("state", "closed"))
                if state not in BREAKER_STATES:
                    continue
                self._entries[fingerprint] = _BreakerEntry(
                    state=state,
                    failures=int(record.get("failures", 0) or 0),
                    opened_ts=record.get("opened_ts"),
                    updated_ts=float(record.get("updated_ts", 0.0) or 0.0),
                )

    # -- reads ----------------------------------------------------------

    def state(self, fingerprint: str) -> str:
        """The current state for one fingerprint (``closed`` if unseen)."""
        entry = self._entries.get(fingerprint)
        return entry.state if entry is not None else "closed"

    def states(self) -> dict[str, dict]:
        """Every tracked fingerprint's state as plain data."""
        return {fp: entry.to_json() for fp, entry in self._entries.items()}

    # -- the state machine ----------------------------------------------

    def _transition(self, fingerprint: str, entry: _BreakerEntry, to_state: str) -> None:
        from_state = entry.state
        entry.state = to_state
        entry.updated_ts = self.clock()
        if to_state == "open":
            entry.opened_ts = entry.updated_ts
        elif to_state == "closed":
            entry.opened_ts = None
            entry.failures = 0
        key = (from_state, to_state)
        self.transitions[key] = self.transitions.get(key, 0) + 1
        if _ev.EVT.active:
            _ev.emit(
                "breaker_transition",
                fingerprint=fingerprint,
                from_state=from_state,
                to_state=to_state,
                failures=entry.failures,
            )
        self._persist(fingerprint, entry)

    def _persist(self, fingerprint: str, entry: _BreakerEntry) -> None:
        if self.ledger is not None:
            self.ledger.record_breaker(
                {"fingerprint": fingerprint, **entry.to_json()}
            )

    def admit(self, fingerprint: str, workload: str | None = None) -> str:
        """Gate one submission; returns the admitting state.

        ``closed`` and ``half_open`` admit (half-open admits exactly the
        probe: the breaker moves to half-open as the probe enters, so a
        concurrent second submission still sees ``open``).  ``open``
        raises a typed :class:`~repro.core.errors.QuarantinedError`
        until the cool-down has elapsed.
        """
        entry = self._entries.get(fingerprint)
        if entry is None or entry.state == "closed":
            return "closed"
        if entry.state == "half_open":
            return "half_open"
        # state == "open"
        elapsed = self.clock() - (entry.opened_ts or 0.0)
        if elapsed >= self.policy.cooldown_s:
            self._transition(fingerprint, entry, "half_open")
            return "half_open"
        retry_after = round(self.policy.cooldown_s - elapsed, 3)
        raise QuarantinedError(
            "workload quarantined by open circuit breaker",
            fingerprint=fingerprint,
            workload=workload,
            state="open",
            failures=entry.failures,
            retry_after_s=retry_after,
        )

    def record_success(self, fingerprint: str) -> None:
        """A supervised run of this fingerprint completed correctly."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            return
        if entry.state == "half_open":
            self._transition(fingerprint, entry, "closed")
        elif entry.failures:
            entry.failures = 0
            entry.updated_ts = self.clock()
            # Persist the reset: the failure streak it clears was
            # persisted, so a restart must not resurrect it.
            self._persist(fingerprint, entry)

    def record_failure(self, fingerprint: str) -> None:
        """A supervised run of this fingerprint failed terminally."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            entry = self._entries[fingerprint] = _BreakerEntry()
        entry.failures += 1
        entry.updated_ts = self.clock()
        if entry.state == "half_open":
            self._transition(fingerprint, entry, "open")
        elif entry.state == "closed" and entry.failures >= self.policy.failure_threshold:
            self._transition(fingerprint, entry, "open")
        else:
            # Below-threshold failures must survive restarts too, or a
            # poison workload resubmitted across processes never trips
            # the breaker.
            self._persist(fingerprint, entry)

    def __repr__(self) -> str:
        open_count = sum(1 for e in self._entries.values() if e.state == "open")
        return (
            f"CircuitBreaker({len(self._entries)} fingerprint(s), "
            f"{open_count} open)"
        )


def merge_attempt_limits(limits, policy: RetryPolicy, remaining_total_s: float | None):
    """Fold the policy's deadlines into one attempt's governor limits.

    The effective per-attempt deadline is the tightest of the caller's
    ``limits.deadline_s``, the policy's ``attempt_deadline_s``, and the
    remaining share of the total deadline.  Returns a
    :class:`~repro.runtime.governor.Limits` (possibly the input object
    unchanged when the policy adds nothing).
    """
    from .governor import Limits

    candidates = [
        s
        for s in (
            limits.deadline_s if limits is not None else None,
            policy.attempt_deadline_s,
            remaining_total_s,
        )
        if s is not None
    ]
    if not candidates:
        return limits if limits is not None else Limits()
    deadline = min(candidates)
    if limits is None:
        return Limits(deadline_s=deadline)
    if limits.deadline_s == deadline:
        return limits
    return replace(limits, deadline_s=deadline)
