"""Checkpoint/resume for tabular algebra programs.

A checkpoint captures the complete interpreter environment at a
statement boundary — the database, the fresh-value source's next tag,
the index of the next top-level statement, and the while-iteration count
— as a JSON file.  Because TA execution is deterministic given those
four pieces (the paper's transformation condition (iv): determinacy up
to the choice of new values, which the fresh source fixes), a
deadline-killed or cancelled run restarted from its last checkpoint
produces the *identical* final database, bit for bit, tagged values
included.

Granularity: checkpoints are written after every completed **top-level**
statement, and — inside a **top-level** while loop — after every
completed statement of the loop body (the paper's programs put the
fixpoint loop at the top level, so this is where the long-running work
lives, and a compiled fixpoint body is a long straight-line block of
small TA assignments).  Statements nested any deeper commit atomically
with their enclosing body statement.  This keeps the inter-checkpoint
stride small enough that even a tight deadline re-applied on every
resume still makes forward progress.

:func:`run_hardened` is the driver: it steps a
:class:`~repro.algebra.programs.statements.Program` statement by
statement under an optional :func:`~repro.runtime.governor.governed`
scope, writes checkpoints, applies snapshot-and-commit semantics to the
fresh-value source (a failed statement's minted tags are rolled back),
and on ``resume=True`` restores state from the checkpoint file instead
of starting over.
"""

from __future__ import annotations

import hashlib
import json
import os
import weakref
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path

from ..core.database import TabularDatabase
from ..core.errors import CheckpointError
from ..core.symbols import NULL, FreshValueSource, Name, Symbol, TaggedValue, Value
from ..core.table import Table
from ..obs import events as _ev
from .faults import FaultPlan
from .governor import Limits, ResourceGovernor, governed

__all__ = [
    "CHECKPOINT_FORMAT",
    "Checkpoint",
    "symbol_to_data",
    "symbol_from_data",
    "table_to_data",
    "table_from_data",
    "database_to_data",
    "database_from_data",
    "program_fingerprint",
    "save_checkpoint",
    "load_checkpoint",
    "run_hardened",
]

#: Version stamp written into checkpoint files.
CHECKPOINT_FORMAT = 1


# ----------------------------------------------------------------------
# Symbol / table / database serialization
# ----------------------------------------------------------------------

def symbol_to_data(symbol: Symbol) -> list:
    """A JSON-stable encoding of one symbol: ``[sort, payload?]``."""
    if symbol.is_null:
        return ["0"]
    if isinstance(symbol, Name):
        return ["n", symbol.text]
    if isinstance(symbol, TaggedValue):
        return ["t", symbol.payload]
    if isinstance(symbol, Value):
        payload = symbol.payload
        if not isinstance(payload, (str, int, float, bool)):
            raise CheckpointError(
                f"cannot checkpoint a Value with non-JSON payload {payload!r}"
            )
        return ["v", payload]
    raise CheckpointError(f"cannot checkpoint symbol {symbol!r}")


def symbol_from_data(data: list) -> Symbol:
    """Invert :func:`symbol_to_data`."""
    try:
        sort = data[0]
        if sort == "0":
            return NULL
        if sort == "n":
            return Name(data[1])
        if sort == "t":
            return TaggedValue(data[1])
        if sort == "v":
            return Value(data[1])
    except (IndexError, TypeError, ValueError) as err:
        raise CheckpointError(f"malformed symbol encoding {data!r}") from err
    raise CheckpointError(f"unknown symbol sort in {data!r}")


#: Encoded-grid memo, keyed by table object identity and validated (and
#: evicted) through weak references.  Checkpoints are written after
#: *every* statement, but a statement replaces only the tables carrying
#: its target name — the rest of the database is the same objects, and a
#: while-fixpoint re-serializing its whole database each body statement
#: would otherwise redo that encoding work quadratically.  The cap is a
#: backstop only; dead tables evict themselves.
_TABLE_DATA_CACHE: dict[int, tuple[weakref.ref, list]] = {}
_TABLE_DATA_CACHE_CAP = 8192


def table_to_data(table: Table) -> list:
    """One table as its encoded grid (row-major), memoized per object.

    Tables are immutable and hash-caching, so the encoding of a given
    object never changes; callers must treat the returned structure as
    read-only (``json.dumps`` does).
    """
    key = id(table)
    hit = _TABLE_DATA_CACHE.get(key)
    if hit is not None and hit[0]() is table:
        return hit[1]
    data = [[symbol_to_data(entry) for entry in row] for row in table.grid]
    if len(_TABLE_DATA_CACHE) >= _TABLE_DATA_CACHE_CAP:
        _TABLE_DATA_CACHE.clear()
    cache = _TABLE_DATA_CACHE

    def _evict(_ref, _key=key, _cache=cache):
        _cache.pop(_key, None)

    try:
        cache[key] = (weakref.ref(table, _evict), data)
    except TypeError:  # pragma: no cover - Table is weak-referenceable
        pass
    return data


def table_from_data(data: list) -> Table:
    if not isinstance(data, list):
        raise CheckpointError(f"malformed table encoding {data!r}")
    return Table([[symbol_from_data(entry) for entry in row] for row in data])


def database_to_data(db: TabularDatabase) -> list:
    return [table_to_data(table) for table in db.tables]


def database_from_data(data: list) -> TabularDatabase:
    if not isinstance(data, list):
        raise CheckpointError(f"malformed database encoding {data!r}")
    return TabularDatabase(table_from_data(entry) for entry in data)


def program_fingerprint(program) -> str:
    """A stable digest of the program text, pinned into every checkpoint.

    Resuming under a *different* program would silently produce garbage;
    the fingerprint turns that into a typed :class:`CheckpointError`.
    """
    return hashlib.sha256(repr(program).encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Checkpoint files
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Checkpoint:
    """One restorable execution state at a statement boundary.

    ``statement_index`` is the top-level statement to (re-)enter;
    ``body_index`` is non-zero only inside a top-level while loop, where
    it names the next statement of the loop body (0 = at the loop
    boundary, about to re-test the condition).
    """

    statement_index: int
    iterations: int
    next_tag: int
    db: TabularDatabase
    fingerprint: str
    body_index: int = 0
    done: bool = False

    def to_json(self) -> dict:
        return {
            "format": CHECKPOINT_FORMAT,
            "fingerprint": self.fingerprint,
            "statement_index": self.statement_index,
            "body_index": self.body_index,
            "iterations": self.iterations,
            "next_tag": self.next_tag,
            "done": self.done,
            "database": database_to_data(self.db),
        }


def save_checkpoint(path: str | Path, checkpoint: Checkpoint) -> Path:
    """Write one checkpoint crash-atomically.

    The payload goes to a sibling temp file, is fsynced, and then
    renamed over the target: a ``kill -9`` at any instant leaves either
    the previous complete checkpoint or the new complete one — never a
    truncated file.  (The directory entry itself is not fsynced: losing
    the *rename* to a power cut re-exposes the previous checkpoint,
    which is still a valid resume point; what must never exist is a torn
    file, and the data fsync before the rename guarantees that.)
    """
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    payload = json.dumps(checkpoint.to_json()) + "\n"
    try:
        with tmp.open("w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as err:
        raise CheckpointError(f"cannot write checkpoint {path}: {err}") from err
    return path


def load_checkpoint(path: str | Path, program=None) -> Checkpoint:
    """Read one checkpoint; verify format and (optionally) the program.

    ``program``, when given, must fingerprint-match the checkpoint —
    resuming a checkpoint under a different program raises.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as err:
        raise CheckpointError(f"cannot read checkpoint {path}: {err}") from err
    except ValueError as err:
        raise CheckpointError(f"checkpoint {path} is not valid JSON: {err}") from err
    if not isinstance(data, dict) or data.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint {path} has format {data.get('format') if isinstance(data, dict) else '?'!r}; "
            f"expected {CHECKPOINT_FORMAT}"
        )
    fingerprint = str(data.get("fingerprint", ""))
    if program is not None and fingerprint != program_fingerprint(program):
        raise CheckpointError(
            f"checkpoint {path} was taken from a different program "
            f"(fingerprint {fingerprint} != {program_fingerprint(program)})"
        )
    try:
        return Checkpoint(
            statement_index=int(data["statement_index"]),
            iterations=int(data["iterations"]),
            next_tag=int(data["next_tag"]),
            db=database_from_data(data["database"]),
            fingerprint=fingerprint,
            body_index=int(data.get("body_index", 0)),
            done=bool(data.get("done", False)),
        )
    except (KeyError, TypeError, ValueError) as err:
        raise CheckpointError(f"checkpoint {path} is malformed: {err}") from err


# ----------------------------------------------------------------------
# The hardened driver
# ----------------------------------------------------------------------

def run_hardened(
    program,
    db: TabularDatabase,
    *,
    fresh: FreshValueSource | None = None,
    limits: Limits | None = None,
    faults: FaultPlan | None = None,
    governor: ResourceGovernor | None = None,
    checkpoint_path: str | Path | None = None,
    resume: bool = False,
    max_while_iterations: int = 10_000,
    engine: str | None = None,
    optimize: bool = False,
    stats=None,
) -> TabularDatabase:
    """Run a TA program under the governor with checkpoint/resume.

    Equivalent to ``program.run(db)`` — same semantics, same result —
    but stepped at top-level statement (and top-level while-iteration)
    boundaries so that:

    * a :class:`~repro.runtime.governor.ResourceGovernor` over ``limits``
      (and/or a :class:`~repro.runtime.faults.FaultPlan`) is installed
      around the whole run;
    * after every completed boundary the environment is serialized to
      ``checkpoint_path`` (when given);
    * ``resume=True`` restores the environment from ``checkpoint_path``
      and continues from the recorded boundary — a killed run re-driven
      this way yields the identical final database;
    * a statement that raises rolls the fresh-value source back to its
      pre-statement tag (snapshot-and-commit), so the checkpointed
      environment is never partially mutated;
    * ``engine="vector"`` plans the program (product/select fusion) and
      routes operation dispatch through the vectorized kernels; the
      checkpoint fingerprint covers the *planned* program, so a resume
      must use the same engine the original run did;
    * ``optimize=True`` runs the program through the cost-based
      optimizer (:mod:`repro.engine.optimizer`) first, ordering joins
      with ``stats`` when given; the fingerprint covers the *optimized*
      program, so a resume must use the same optimizer settings (and
      the same stats snapshot) the original run did.
    """
    from ..algebra.programs.statements import Interpreter, Program, While

    if not isinstance(program, Program):
        raise CheckpointError(f"run_hardened drives TA Programs, got {program!r}")

    if optimize:
        from ..engine.optimizer import optimize_program

        program = optimize_program(program, stats).program

    if engine in (None, "naive"):
        scope = nullcontext()
    elif engine == "vector":
        from ..engine import plan_program
        from ..engine.runtime import engine_scope

        program = plan_program(program)
        scope = engine_scope()
    else:
        raise CheckpointError(f"unknown engine {engine!r}; expected naive or vector")

    interp = Interpreter(fresh=fresh, max_while_iterations=max_while_iterations)
    fingerprint = program_fingerprint(program)
    start_index = 0
    start_body = 0
    start_iteration = 0

    if resume:
        if checkpoint_path is None:
            raise CheckpointError("resume=True requires a checkpoint_path")
        checkpoint = load_checkpoint(checkpoint_path, program)
        db = checkpoint.db
        start_index = checkpoint.statement_index
        start_body = checkpoint.body_index
        start_iteration = checkpoint.iterations
        interp.fresh.reset_to(checkpoint.next_tag)
        if _ev.EVT.active:
            _ev.emit(
                "checkpoint_restore",
                path=str(checkpoint_path),
                statement_index=start_index,
                body_index=start_body,
                iteration=start_iteration,
                done=checkpoint.done,
            )
        if checkpoint.done:
            return db

    interp.fresh.advance_past(db.symbols())

    def write(database: TabularDatabase, index: int, body_index: int = 0,
              iteration: int = 0, done: bool = False) -> None:
        if checkpoint_path is not None:
            save_checkpoint(
                checkpoint_path,
                Checkpoint(
                    statement_index=index,
                    iterations=iteration,
                    next_tag=interp.fresh.next_tag,
                    db=database,
                    fingerprint=fingerprint,
                    body_index=body_index,
                    done=done,
                ),
            )
            if _ev.EVT.active:
                _ev.emit(
                    "checkpoint_write",
                    path=str(checkpoint_path),
                    statement_index=index,
                    body_index=body_index,
                    iteration=iteration,
                    done=done,
                )

    def committed(statement, database: TabularDatabase) -> TabularDatabase:
        """Execute one statement with fresh-source snapshot-and-commit."""
        mark = interp.fresh.next_tag
        try:
            return statement.execute(database, interp)
        except BaseException:
            interp.fresh.reset_to(mark)
            raise

    with scope, governed(limits, faults=faults, governor=governor) as gov:
        if _ev.EVT.active:
            _ev.emit(
                "run_start",
                statements=len(program.statements),
                resume=resume,
                engine=engine or "naive",
                start_index=start_index,
            )
        # Boundary zero: resume works even if killed before any progress.
        write(db, start_index, body_index=start_body, iteration=start_iteration)
        try:
            db = _drive(
                program, db, interp, gov, write, committed,
                start_index, start_body, start_iteration,
            )
        except BaseException as err:
            # Outcome stamping: the bus sees *every* run end, not just
            # the clean ones, so a ledger recorder can attribute the
            # outcome without being handed the exception out of band.
            if _ev.EVT.active:
                from ..core.errors import BudgetExceededError, CancelledError

                outcome = (
                    "killed"
                    if isinstance(err, (BudgetExceededError, CancelledError))
                    else "error"
                )
                _ev.emit(
                    "run_finish",
                    governor=gov.snapshot(),
                    outcome=outcome,
                    error_type=type(err).__name__,
                )
            raise
        write(db, len(program.statements), done=True)
        if _ev.EVT.active:
            _ev.emit("run_finish", governor=gov.snapshot(), outcome="ok")
    return db


def _drive(program, db, interp, gov, write, committed,
           start_index, start_body, start_iteration):
    """The statement-stepping loop of :func:`run_hardened`."""
    from ..algebra.programs.statements import While

    for index in range(start_index, len(program.statements)):
        statement = program.statements[index]
        previous_statement, gov.statement = gov.statement, index
        try:
            if isinstance(statement, While):
                # Step the fixpoint one body statement at a time so
                # every completed body statement is a restart point.
                body = statement.body.statements
                if index == start_index:
                    # A mid-body resume re-enters iteration
                    # `start_iteration` at statement `start_body`
                    # without re-testing the condition.
                    iteration, body_pos = start_iteration, start_body
                else:
                    iteration, body_pos = 0, 0
                prev_rows = prev_cells = 0
                if _ev.EVT.active:
                    prev_rows = sum(t.height for t in db.tables)
                    prev_cells = sum(t.nrows * t.ncols for t in db.tables)
                while True:
                    if body_pos == 0:
                        if not statement._holds(db, interp):
                            break
                        iteration += 1
                        if iteration > interp.max_while_iterations:
                            raise _non_termination(statement, iteration, interp)
                        gov.while_tick(
                            str(statement.condition), iteration, statement=index
                        )
                        if _ev.EVT.active:
                            # Same fixpoint-frontier event While.execute
                            # publishes: the hardened driver steps the
                            # loop itself, so it reports the ticks too.
                            total_rows = sum(t.height for t in db.tables)
                            total_cells = sum(
                                t.nrows * t.ncols for t in db.tables
                            )
                            _ev.emit(
                                "while_iteration",
                                condition=str(statement.condition),
                                iteration=iteration,
                                frontier_rows=statement._condition_rows(
                                    db, interp
                                ),
                                total_rows=total_rows,
                                total_cells=total_cells,
                                delta_rows=total_rows - prev_rows,
                                delta_cells=total_cells - prev_cells,
                            )
                            prev_rows, prev_cells = total_rows, total_cells
                    for position in range(body_pos, len(body)):
                        db = committed(body[position], db)
                        write(
                            db,
                            index,
                            body_index=(position + 1) % len(body),
                            iteration=iteration,
                        )
                    body_pos = 0
            else:
                # Optimizer-produced statements (CHAINJOIN, SELECTUNION)
                # are not Assignments and carry no public spec; their
                # class name is their op name.
                spec = getattr(statement, "spec", None)
                op = spec.name if spec is not None else type(statement).__name__.upper()
                gov.check(op=op)
                db = committed(statement, db)
                write(db, index + 1)
        finally:
            gov.statement = previous_statement
    return db


def _non_termination(statement, iteration: int, interp):
    from ..core.errors import NonTerminationError

    return NonTerminationError(
        f"while loop on {statement.condition} exceeded "
        f"{interp.max_while_iterations} iterations",
        kind="iterations",
        condition=str(statement.condition),
        iteration=iteration,
        limit=interp.max_while_iterations,
    )
