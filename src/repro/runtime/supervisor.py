"""The fault-tolerant job supervisor: admission, retry, recovery.

:class:`Supervisor` owns the full lifecycle of a hardened run:

1. **admission** — the workload's normalized fingerprint is checked
   against the per-fingerprint :class:`~repro.runtime.policy.CircuitBreaker`;
   an open breaker rejects the submission up front with a typed
   :class:`~repro.core.errors.QuarantinedError` instead of burning
   retry budget on a poison workload.  When a ledger is armed, a
   ``run_start`` record is journaled *before* execution, which is what
   makes crash recovery possible;
2. **execution** — attempts run through
   :func:`~repro.runtime.checkpoint.run_hardened` under the declarative
   :class:`~repro.runtime.policy.RetryPolicy`: each attempt's error is
   classified (``retry`` / ``resume`` / ``degrade`` / ``fail``),
   retryable attempts back off deterministically (``retry_scheduled``
   events) or resume immediately from the checkpoint, vector-engine
   failures fall one rung down the degradation ladder onto the naive
   backend (``engine_degraded``, with a ``degraded`` stamp on the
   result), and memory kills optionally shed the observability layers;
3. **outcome** — success feeds the breaker's success path (half-open
   probes close it) and failure its failure path (threshold crossings
   open it, persisted as ``breaker`` ledger records); either way the
   run closes with a ledger manifest carrying the full supervision
   history — no silent partial results.

:meth:`Supervisor.recover` is the crash-recovery half: it scans the
ledger for runs with a ``run_start`` but no closing record, re-derives
each workload from its recorded spec, and either resumes it from its
checkpoint (emitting ``run_recovered``) or stamps it ``orphaned`` with
a machine-readable reason.

Like :mod:`repro.runtime.chaos`, this module reaches the interpreter
and (lazily) the bundled examples, so it must only be imported lazily —
never from ``repro.runtime``'s ``__init__`` at import time (the package
re-exports it through ``__getattr__``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from ..core.errors import (
    BudgetExceededError,
    CancelledError,
    CheckpointError,
    LedgerError,
    QuarantinedError,
    ReproError,
    VerificationError,
)
from ..obs import events as _ev
from .checkpoint import load_checkpoint, run_hardened
from .governor import Limits
from .policy import (
    BreakerPolicy,
    CircuitBreaker,
    RetryPolicy,
    classify_error,
    merge_attempt_limits,
)

__all__ = [
    "AttemptRecord",
    "SupervisedRun",
    "SupervisorStats",
    "RecoveryReport",
    "Supervisor",
    "workload_fingerprint",
]


def workload_fingerprint(program, workload: str = "?") -> str:
    """The breaker key: the normalized program fingerprint.

    Falls back to a digest of the workload label for pipelines the
    normalizer cannot walk — the breaker then still quarantines by
    label instead of not at all.
    """
    import hashlib

    from ..obs.workload import fingerprint_program

    try:
        return fingerprint_program(program)
    except Exception:
        return hashlib.sha256(workload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt's verdict in the supervision history."""

    attempt: int
    engine: str
    resumed: bool
    shed: bool
    error_type: str | None = None
    error: str | None = None
    decision: str | None = None  # retry/resume/degrade/fail; None = succeeded
    backoff_s: float = 0.0

    def to_json(self) -> dict:
        return {
            "attempt": self.attempt,
            "engine": self.engine,
            "resumed": self.resumed,
            "shed": self.shed,
            "error_type": self.error_type,
            "error": self.error,
            "decision": self.decision,
            "backoff_s": round(self.backoff_s, 6),
        }


@dataclass
class SupervisedRun:
    """The outcome of one supervised submission.

    ``outcome`` is ``"ok"`` (``result`` holds the database) or
    ``"failed"`` (``result`` is None and ``error`` holds the terminal
    exception) — a failed supervised run never exposes a partial
    database.  Admission refusal raises
    :class:`~repro.core.errors.QuarantinedError` before a
    ``SupervisedRun`` exists.
    """

    run_id: str
    workload: str
    fingerprint: str
    engine: str  # the engine of the final attempt
    outcome: str = "ok"
    result: object | None = None
    error: BaseException | None = None
    degraded: bool = False
    shed: tuple[str, ...] = ()
    recovered: bool = False
    verified: bool | None = None
    elapsed_s: float = 0.0
    attempts: list[AttemptRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    def history(self) -> dict:
        """The supervision history block stamped into manifests/bundles."""
        return {
            "run_id": self.run_id,
            "fingerprint": self.fingerprint,
            "outcome": self.outcome,
            "engine": self.engine,
            "degraded": self.degraded,
            "shed": list(self.shed),
            "recovered": self.recovered,
            "verified": self.verified,
            "attempts": [a.to_json() for a in self.attempts],
        }


@dataclass
class SupervisorStats:
    """Counters the Prometheus export and tests read off a supervisor."""

    decisions: dict[str, int] = field(default_factory=dict)
    backoff_s_total: float = 0.0
    exhausted: int = 0
    quarantined: int = 0
    degraded: dict[str, int] = field(default_factory=dict)
    recovery: dict[str, int] = field(default_factory=dict)

    def count_decision(self, decision: str) -> None:
        self.decisions[decision] = self.decisions.get(decision, 0) + 1

    def count_degraded(self, mode: str) -> None:
        self.degraded[mode] = self.degraded.get(mode, 0) + 1

    def count_recovery(self, outcome: str) -> None:
        self.recovery[outcome] = self.recovery.get(outcome, 0) + 1


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`Supervisor.recover` found and did."""

    scanned: int
    resumed: tuple[dict, ...]
    orphaned: tuple[dict, ...]
    failed: tuple[dict, ...]

    @property
    def ok(self) -> bool:
        return not self.failed

    def to_json(self) -> dict:
        return {
            "scanned": self.scanned,
            "ok": self.ok,
            "resumed": list(self.resumed),
            "orphaned": list(self.orphaned),
            "failed": list(self.failed),
        }

    def render(self) -> str:
        lines = [
            f"recovery: {self.scanned} open run(s) found — "
            f"{len(self.resumed)} resumed, {len(self.orphaned)} orphaned, "
            f"{len(self.failed)} failed"
        ]
        for entry in self.resumed:
            lines.append(
                f"  resumed   {entry['run_id']}  {entry.get('workload')}  "
                f"({entry.get('attempts')} attempt(s)"
                + (", degraded)" if entry.get("degraded") else ")")
            )
        for entry in self.orphaned:
            lines.append(
                f"  orphaned  {entry['run_id']}  {entry.get('workload')}  "
                f"— {entry.get('reason')}"
            )
        for entry in self.failed:
            lines.append(
                f"  FAILED    {entry['run_id']}  {entry.get('workload')}  "
                f"— {entry.get('error')}"
            )
        return "\n".join(lines)


class _ShedScopes:
    """Temporarily flip the optional observability layers off.

    Under memory pressure the supervisor sheds the layers a run can
    live without — events, metrics/tracing, estimation — while keeping
    the governor (the thing enforcing the budget) fully armed.  The
    previous state is restored on exit, whatever it was.
    """

    def __init__(self):
        self._saved = []

    def __enter__(self):
        from ..obs import estimator as _est
        from ..obs import runtime as _obs

        for state in (_ev.EVT, _obs.OBS, _est.EST):
            self._saved.append((state, state.active))
            state.active = False
        return self

    def __exit__(self, *exc):
        for state, active in reversed(self._saved):
            state.active = active
        self._saved.clear()
        return False


class Supervisor:
    """Drives hardened runs under a retry policy with a circuit breaker.

    ``ledger`` (a :class:`~repro.obs.ledger.RunLedger`) arms persistence:
    ``run_start`` admission records, breaker-transition records, and the
    closing run manifest.  ``sleep`` and ``clock`` are injectable for
    tests (the chaos matrix runs with ``sleep=lambda s: None``).
    """

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        breaker_policy: BreakerPolicy | None = None,
        ledger=None,
        sleep=time.sleep,
        clock=time.monotonic,
    ):
        self.policy = policy if policy is not None else RetryPolicy()
        self.ledger = ledger
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(breaker_policy, ledger=ledger)
        )
        self.sleep = sleep
        self.clock = clock
        self.stats = SupervisorStats()
        #: The most recent :class:`SupervisedRun` (survives a raise).
        self.last_run: SupervisedRun | None = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        program,
        db,
        *,
        workload: str = "?",
        spec: str | None = None,
        limits: Limits | None = None,
        faults=None,
        checkpoint_path: str | Path | None = None,
        resume: bool = False,
        engine: str = "naive",
        verify: bool = False,
        max_while_iterations: int = 10_000,
        run_id: str | None = None,
        recorder=None,
        optimizer: dict | None = None,
        _recovered: bool = False,
    ) -> SupervisedRun:
        """Run one workload to a definitive outcome under the policy.

        Returns a :class:`SupervisedRun` with outcome ``ok`` or
        ``failed``; raises :class:`~repro.core.errors.QuarantinedError`
        when the breaker refuses admission.  ``recorder`` (a
        :class:`~repro.obs.ledger.RunRecorder`) takes over manifest
        writing when the caller already folds the event bus; otherwise
        the supervisor writes its own compact manifest to ``ledger``.
        """
        policy = self.policy
        fingerprint = workload_fingerprint(program, workload)
        try:
            self.breaker.admit(fingerprint, workload=workload)
        except QuarantinedError:
            self.stats.quarantined += 1
            raise

        if run_id is None:
            run_id = (
                recorder.run_id
                if recorder is not None
                else _new_run_id()
            )
        run = SupervisedRun(
            run_id=run_id,
            workload=workload,
            fingerprint=fingerprint,
            engine=engine,
            recovered=_recovered,
        )
        self.last_run = run
        if self.ledger is not None and not _recovered:
            self.ledger.record_start(
                {
                    "run_id": run_id,
                    "ts": round(time.time(), 3),
                    "workload": workload,
                    "spec": spec,
                    "engine": engine,
                    "fingerprint": fingerprint,
                    "checkpoint": (
                        str(checkpoint_path) if checkpoint_path is not None else None
                    ),
                    "limits": _limits_json(limits),
                }
            )

        started = self.clock()
        engine_now = engine
        shed_now = False
        fresh_restart = False  # set after a degrade: the checkpoint is stale
        attempt = 0
        result = None
        terminal: BaseException | None = None
        while True:
            attempt += 1
            remaining = None
            if policy.total_deadline_s is not None:
                remaining = policy.total_deadline_s - (self.clock() - started)
                if remaining <= 0:
                    terminal = BudgetExceededError(
                        "supervised run exceeded its total deadline",
                        kind="total_deadline",
                        limit=policy.total_deadline_s,
                        attempt=attempt,
                    )
                    run.attempts.append(
                        AttemptRecord(
                            attempt=attempt,
                            engine=engine_now,
                            resumed=False,
                            shed=shed_now,
                            error_type=type(terminal).__name__,
                            error=str(terminal),
                            decision="fail",
                        )
                    )
                    break
            attempt_limits = merge_attempt_limits(limits, policy, remaining)
            resume_now = (
                checkpoint_path is not None
                and (resume or attempt > 1)
                and not fresh_restart
            )
            fresh_restart = False
            scope = _ShedScopes() if shed_now else _NullScope()
            try:
                with scope:
                    result = run_hardened(
                        program,
                        db,
                        limits=attempt_limits,
                        faults=faults,
                        checkpoint_path=checkpoint_path,
                        resume=resume_now,
                        engine=engine_now,
                        max_while_iterations=max_while_iterations,
                    )
                run.attempts.append(
                    AttemptRecord(
                        attempt=attempt,
                        engine=engine_now,
                        resumed=resume_now,
                        shed=shed_now,
                    )
                )
                break
            except Exception as err:
                decision = classify_error(err, engine_now)
                attempts_left = attempt < policy.max_attempts
                total_ok = True
                if policy.total_deadline_s is not None:
                    total_ok = (self.clock() - started) < policy.total_deadline_s
                backoff = 0.0
                if decision == "degrade":
                    if (
                        engine_now == "vector"
                        and policy.degrade_engine
                        and attempts_left
                        and total_ok
                    ):
                        self._note_degrade(run, "engine", engine_now, "naive")
                        engine_now = "naive"
                        fresh_restart = True
                    else:
                        decision = "fail"
                elif decision in ("retry", "resume"):
                    if not (attempts_left and total_ok):
                        self.stats.exhausted += 1
                        decision = "fail"
                    else:
                        if decision == "retry":
                            backoff = policy.backoff_s(attempt)
                        if (
                            decision == "resume"
                            and policy.shed_obs
                            and not shed_now
                            and getattr(err, "context", {}).get("kind") == "memory"
                        ):
                            # Rung two of the degradation ladder: a
                            # memory kill retries with the optional obs
                            # layers shed.
                            shed_now = True
                            run.shed = ("events", "observation", "estimation")
                            self._note_degrade(run, "obs_shed", "armed", "shed")
                run.attempts.append(
                    AttemptRecord(
                        attempt=attempt,
                        engine=engine_now if decision != "degrade" else "vector",
                        resumed=resume_now,
                        shed=shed_now,
                        error_type=type(err).__name__,
                        error=str(err),
                        decision=decision,
                        backoff_s=backoff,
                    )
                )
                if decision == "fail":
                    terminal = err
                    break
                self.stats.count_decision(decision)
                if _ev.EVT.active:
                    _ev.emit(
                        "retry_scheduled",
                        attempt=attempt,
                        decision=decision,
                        backoff_s=round(backoff, 6),
                        error_type=type(err).__name__,
                        engine=engine_now,
                    )
                if backoff > 0.0:
                    self.stats.backoff_s_total += backoff
                    self.sleep(backoff)

        run.engine = engine_now
        run.elapsed_s = round(self.clock() - started, 6)

        if terminal is None and verify:
            reference = program.run(db)
            identical = result == reference
            run.verified = identical
            if not identical:
                terminal = VerificationError(
                    "supervised result diverged from the ungoverned reference run",
                    fingerprint=fingerprint,
                    run_id=run_id,
                    engine=engine_now,
                )
                result = None

        if terminal is None:
            run.outcome = "ok"
            run.result = result
            self.breaker.record_success(fingerprint)
            if _recovered and _ev.EVT.active:
                _ev.emit(
                    "run_recovered",
                    run_id=run_id,
                    workload=workload,
                    attempts=attempt,
                )
        else:
            run.outcome = "failed"
            run.result = None
            run.error = terminal
            self.breaker.record_failure(fingerprint)

        self._close(
            run, spec=spec, limits=limits, recorder=recorder, optimizer=optimizer
        )
        return run

    def _note_degrade(self, run: SupervisedRun, mode: str, from_, to) -> None:
        if mode == "engine":
            run.degraded = True
        self.stats.count_degraded(mode)
        if _ev.EVT.active:
            _ev.emit("engine_degraded", mode=mode, **{"from": from_, "to": to})

    def _close(
        self, run: SupervisedRun, *, spec, limits, recorder, optimizer=None
    ) -> None:
        """Journal the definitive outcome (manifest + supervision block)."""
        if recorder is not None:
            recorder.finish(
                workload=run.workload,
                engine=run.engine,
                result_db=run.result,
                error=run.error,
                limits=_limits_json(limits),
                attempts=len(run.attempts),
                kills=[
                    a.error
                    for a in run.attempts
                    if a.error is not None and a.decision in ("resume", "retry")
                ],
                replay_spec=spec,
                supervisor=run.history(),
                optimizer=optimizer,
            )
            return
        if self.ledger is None:
            return
        from ..obs.ledger import database_digest

        if run.error is None:
            status = "ok"
        elif isinstance(run.error, (BudgetExceededError, CancelledError)):
            status = "killed"
        else:
            status = "error"
        outcome: dict = {"status": status, "attempts": len(run.attempts)}
        if run.error is not None:
            outcome["error_type"] = type(run.error).__name__
            outcome["error"] = str(run.error)
        result_block = None
        if run.result is not None:
            digest, tables, rows, data = database_digest(run.result)
            result_block = {"sha256": digest, "tables": tables, "rows": rows}
            import json as _json

            payload = _json.dumps(data, separators=(",", ":"))
            if len(payload) <= self.ledger.result_bytes_cap:
                result_block["data"] = data
            else:
                result_block["data"] = None
                result_block["bytes"] = len(payload)
        self.ledger.record(
            {
                "run_id": run.run_id,
                "ts": round(time.time(), 3),
                "workload": {
                    "label": run.workload,
                    "spec": spec,
                    "replayable": spec is not None and result_block is not None,
                },
                "program": {
                    "repr": None,
                    "normalized": None,
                    "fingerprint": run.fingerprint,
                },
                "engine": run.engine,
                "limits": _limits_json(limits),
                "outcome": outcome,
                "elapsed_ms": round(run.elapsed_s * 1e3, 3),
                "result": result_block,
                "supervisor": run.history(),
            }
        )

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def recover(self, *, verify: bool = False) -> RecoveryReport:
        """Resume or orphan every run left open in the ledger.

        An *open* run has a ``run_start`` record but no closing manifest
        (and no prior ``orphaned`` stamp): the recording process died
        mid-run.  For each one the workload is re-derived from the
        recorded spec and resumed from its checkpoint under this
        supervisor's policy; runs that cannot be resumed — unreplayable
        spec, missing or torn checkpoint — are stamped ``orphaned`` with
        the reason, so nothing stays silently half-done.
        """
        if self.ledger is None:
            raise LedgerError("recovery needs a ledger (Supervisor(ledger=...))")
        resumed: list[dict] = []
        orphaned: list[dict] = []
        failed: list[dict] = []
        starts = self.ledger.open_runs()
        for start in starts:
            run_id = str(start.get("run_id"))
            workload = str(start.get("workload") or "?")
            spec = start.get("spec")
            engine = str(start.get("engine") or "naive")
            checkpoint = start.get("checkpoint")

            def orphan(reason: str) -> None:
                self.ledger.record_orphan(
                    {
                        "run_id": run_id,
                        "ts": round(time.time(), 3),
                        "workload": workload,
                        "reason": reason,
                    }
                )
                self.stats.count_recovery("orphaned")
                orphaned.append(
                    {"run_id": run_id, "workload": workload, "reason": reason}
                )

            derived = _derive_spec(spec)
            if derived is None:
                orphan(f"unreplayable spec {spec!r}")
                continue
            label, program, db = derived
            if checkpoint is None:
                orphan("no checkpoint was configured")
                continue
            if not Path(checkpoint).exists():
                orphan(f"checkpoint file {checkpoint} is gone")
                continue
            try:
                load_checkpoint(checkpoint)
            except CheckpointError as err:
                orphan(f"unusable checkpoint: {err}")
                continue
            try:
                run = self.submit(
                    program,
                    db,
                    workload=label,
                    spec=spec,
                    checkpoint_path=checkpoint,
                    resume=True,
                    engine=engine,
                    verify=verify,
                    run_id=run_id,
                    _recovered=True,
                )
            except ReproError as err:
                self.stats.count_recovery("failed")
                failed.append(
                    {"run_id": run_id, "workload": workload, "error": str(err)}
                )
                continue
            entry = {
                "run_id": run_id,
                "workload": label,
                "attempts": len(run.attempts),
                "degraded": run.degraded,
                "outcome": run.outcome,
            }
            if run.ok:
                self.stats.count_recovery("resumed")
                resumed.append(entry)
            else:
                self.stats.count_recovery("failed")
                entry["error"] = str(run.error)
                failed.append(entry)
        return RecoveryReport(
            scanned=len(starts),
            resumed=tuple(resumed),
            orphaned=tuple(orphaned),
            failed=tuple(failed),
        )


class _NullScope:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


def _new_run_id() -> str:
    from ..obs.ledger import new_run_id

    return new_run_id()


def _limits_json(limits: Limits | None) -> dict | None:
    if limits is None:
        return None
    return {
        "deadline_s": limits.deadline_s,
        "max_rows_per_op": limits.max_rows_per_op,
        "max_cells_per_op": limits.max_cells_per_op,
        "max_total_rows": limits.max_total_rows,
        "max_memory_bytes": limits.max_memory_bytes,
        "max_while_iterations": limits.max_while_iterations,
    }


def _derive_spec(spec):
    """``(label, program, db)`` re-derived from a recorded workload spec.

    Tries the synthetic workloads (``tc:N``) first, then the bundled
    example registry; None when the spec names neither (a trace-only
    label, an ad-hoc program) — the caller orphans the run.
    """
    if not spec:
        return None
    from .workloads import parse_workload

    try:
        workload = parse_workload(str(spec))
    except ReproError:
        return None
    if workload is not None:
        return workload
    from ..obs.examples import EXAMPLES

    example = EXAMPLES.get(str(spec))
    if example is None or example.setup is None:
        return None
    db, bound_run = example.setup()
    program = getattr(bound_run, "__self__", None)
    if program is None or not hasattr(program, "statements"):
        return None
    return str(spec), program, db
