"""The resource governor: deadlines, row/cell/memory budgets, cancellation.

The hardened execution runtime mirrors the observability stack's
architecture (:mod:`repro.obs.runtime`): one module-level singleton,
:data:`GOV`, is consulted at every chokepoint — the op registry's
``dispatch``, the TA interpreter's statements and while loops, the
FO+while budget, and the four frontend compilers.  When ``GOV.active``
is False — the default — every call site falls through after a single
attribute check and no governor code runs; the zero-allocation tests pin
that down exactly like the obs "strict no-op" contract.

:func:`governed` is the way to switch enforcement on::

    from repro.runtime import Limits, governed

    with governed(Limits(deadline_s=0.5, max_total_rows=100_000)):
        program.run(db)      # raises BudgetExceededError when a limit trips

Scopes nest and restore the previous state on exit, so a library callee
installing its own governor cannot clobber the caller's.  A
:class:`~repro.runtime.faults.FaultPlan` rides on the same state
(``GOV.faults``) so fault injection shares the chokepoints.

Budgets raise the structured taxonomy under
:class:`~repro.core.errors.ReproError`:
:class:`~repro.core.errors.BudgetExceededError` (with ``kind``, the
limit, the usage, and op/statement/iteration context) and
:class:`~repro.core.errors.CancelledError` for cooperative cancellation.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from ..core.errors import BudgetExceededError, CancelledError, NonTerminationError
from ..obs import events as _ev
from ..obs import runtime as _obs

__all__ = [
    "GOV",
    "Limits",
    "ResourceGovernor",
    "IterationBudget",
    "governed",
]


class _GovState:
    """The mutable global: one attribute check guards every hot path."""

    __slots__ = ("active", "governor", "faults")

    def __init__(self):
        self.active = False
        #: The installed :class:`ResourceGovernor`, or None.
        self.governor = None
        #: The installed :class:`repro.runtime.faults.FaultPlan`, or None.
        self.faults = None


#: The process-wide governor state consulted by all chokepoints.
GOV = _GovState()


@dataclass(frozen=True)
class Limits:
    """The resource budgets one :class:`ResourceGovernor` enforces.

    Every field defaults to "unlimited"; set only what you need.

    * ``deadline_s`` — wall-clock budget for the whole governed scope;
    * ``max_rows_per_op`` / ``max_cells_per_op`` — blast-radius caps on a
      single op invocation's output (``PRODUCT``/``TUPLENEW`` blowup);
    * ``max_total_rows`` — cumulative rows emitted across all ops;
    * ``max_memory_bytes`` — traced-allocation high-water mark (enforced
      while :mod:`tracemalloc` is tracing, e.g. under the profiler);
    * ``max_while_iterations`` — governor-level cap on any single while
      loop, layered under the interpreter's own per-run budget.
    """

    deadline_s: float | None = None
    max_rows_per_op: int | None = None
    max_cells_per_op: int | None = None
    max_total_rows: int | None = None
    max_memory_bytes: int | None = None
    max_while_iterations: int | None = None


class ResourceGovernor:
    """Enforces one :class:`Limits` over a governed scope.

    The governor is deliberately dumb and fast: chokepoints call
    :meth:`before_op` / :meth:`account` / :meth:`while_tick` /
    :meth:`check`, each a handful of comparisons; any tripped budget
    raises with full context (op name, statement index, iteration, rows
    so far).  ``statement`` is maintained by the interpreter's hardened
    statement loop so errors raised deep inside an op still report which
    program statement was executing.
    """

    __slots__ = (
        "limits",
        "started",
        "deadline_at",
        "cancelled",
        "cancel_reason",
        "rows_emitted",
        "cells_emitted",
        "ops_dispatched",
        "statement",
    )

    def __init__(self, limits: Limits | None = None):
        self.limits = limits if limits is not None else Limits()
        self.started = time.perf_counter()
        self.deadline_at = (
            self.started + self.limits.deadline_s
            if self.limits.deadline_s is not None
            else None
        )
        self.cancelled = False
        self.cancel_reason: str | None = None
        self.rows_emitted = 0
        self.cells_emitted = 0
        self.ops_dispatched = 0
        #: Index of the top-level statement currently executing, or None.
        self.statement: int | None = None

    # -- cooperative cancellation --------------------------------------

    def cancel(self, reason: str = "cancelled by caller") -> None:
        """Request cancellation; safe from other threads/signal handlers.

        The flag is checked at every chokepoint, so a long-running
        program stops at the next op dispatch, statement entry, or while
        tick rather than mid-operation.
        """
        self.cancel_reason = reason
        self.cancelled = True

    # -- chokepoint checks ---------------------------------------------

    def _kill_event(
        self,
        kind: str,
        limit,
        used,
        op: str | None = None,
        iteration: int | None = None,
    ) -> None:
        """Publish a ``governor_kill`` event just before the budget raise."""
        if _ev.EVT.active:
            _ev.emit(
                "governor_kill",
                kind=kind,
                limit=limit,
                used=used,
                op=op,
                statement=self.statement,
                iteration=iteration,
            )

    def check(self, op: str | None = None, iteration: int | None = None) -> None:
        """Deadline + cancellation + memory check (the cheap, common one)."""
        if self.cancelled:
            self._kill_event("cancelled", None, None, op=op, iteration=iteration)
            raise CancelledError(
                self.cancel_reason or "execution cancelled",
                op=op,
                statement=self.statement,
                iteration=iteration,
            )
        if self.deadline_at is not None and time.perf_counter() > self.deadline_at:
            elapsed = round(time.perf_counter() - self.started, 4)
            self._kill_event(
                "deadline", self.limits.deadline_s, elapsed, op=op, iteration=iteration
            )
            raise BudgetExceededError(
                "wall-clock deadline exceeded",
                kind="deadline",
                limit=self.limits.deadline_s,
                elapsed=elapsed,
                op=op,
                statement=self.statement,
                iteration=iteration,
            )
        cap = self.limits.max_memory_bytes
        if cap is not None and tracemalloc.is_tracing():
            current, _peak = tracemalloc.get_traced_memory()
            if current > cap:
                self._kill_event("memory", cap, current, op=op, iteration=iteration)
                raise BudgetExceededError(
                    "memory high-water mark exceeded",
                    kind="memory",
                    limit=cap,
                    used=current,
                    op=op,
                    statement=self.statement,
                    iteration=iteration,
                )

    def before_op(self, op: str) -> None:
        """Called by the registry before dispatching one op invocation."""
        self.ops_dispatched += 1
        self.check(op=op)

    def account(self, op: str, rows: int, cells: int) -> None:
        """Charge one op invocation's output against the row/cell budgets."""
        self.rows_emitted += rows
        self.cells_emitted += cells
        limits = self.limits
        if limits.max_rows_per_op is not None and rows > limits.max_rows_per_op:
            self._kill_event("rows", limits.max_rows_per_op, rows, op=op)
            raise BudgetExceededError(
                f"{op} produced too many rows in one invocation",
                kind="rows",
                limit=limits.max_rows_per_op,
                used=rows,
                op=op,
                statement=self.statement,
            )
        if limits.max_cells_per_op is not None and cells > limits.max_cells_per_op:
            self._kill_event("cells", limits.max_cells_per_op, cells, op=op)
            raise BudgetExceededError(
                f"{op} produced too many cells in one invocation",
                kind="cells",
                limit=limits.max_cells_per_op,
                used=cells,
                op=op,
                statement=self.statement,
            )
        if (
            limits.max_total_rows is not None
            and self.rows_emitted > limits.max_total_rows
        ):
            self._kill_event(
                "total_rows", limits.max_total_rows, self.rows_emitted, op=op
            )
            raise BudgetExceededError(
                "cumulative row budget exhausted",
                kind="total_rows",
                limit=limits.max_total_rows,
                used=self.rows_emitted,
                op=op,
                statement=self.statement,
            )
        # A delayed op (fault injection, genuinely slow operator) must not
        # slip past the deadline just because no further op is dispatched.
        self.check(op=op)

    def while_tick(
        self, condition: str, iteration: int, statement: int | None = None
    ) -> None:
        """Called once per while-loop iteration by both interpreters."""
        if _ev.EVT.active:
            # Budget headroom, once per tick: the progress feed's view of
            # how close the loop is to a deadline / row-cap kill.
            _ev.emit(
                "governor_budget",
                condition=condition,
                iteration=iteration,
                elapsed_s=round(time.perf_counter() - self.started, 6),
                deadline_s=self.limits.deadline_s,
                rows_emitted=self.rows_emitted,
                max_total_rows=self.limits.max_total_rows,
                max_while_iterations=self.limits.max_while_iterations,
            )
        self.check(op=None, iteration=iteration)
        cap = self.limits.max_while_iterations
        if cap is not None and iteration > cap:
            self._kill_event("iterations", cap, iteration, iteration=iteration)
            raise NonTerminationError(
                f"while loop on {condition} exceeded the governor's iteration budget",
                kind="iterations",
                condition=condition,
                iteration=iteration,
                limit=cap,
                statement=statement if statement is not None else self.statement,
            )

    # -- reporting ------------------------------------------------------

    def snapshot(self) -> dict:
        """The governor's counters, for trace spans and CLI summaries."""
        return {
            "ops_dispatched": self.ops_dispatched,
            "rows_emitted": self.rows_emitted,
            "cells_emitted": self.cells_emitted,
            "elapsed_s": round(time.perf_counter() - self.started, 6),
            "cancelled": self.cancelled,
        }

    def __repr__(self) -> str:
        return (
            f"ResourceGovernor(ops={self.ops_dispatched}, "
            f"rows={self.rows_emitted}, cancelled={self.cancelled})"
        )


class IterationBudget:
    """Shared while-iteration budget, delegating to the installed governor.

    Both budget mechanisms — the FO+while interpreter's program-wide
    ``_Budget`` and the TA interpreter's per-loop counter — route through
    this class, so one governed scope sees every loop tick regardless of
    which language is executing.  Exhaustion raises
    :class:`~repro.core.errors.NonTerminationError` with structured
    context instead of a bare string.
    """

    __slots__ = ("limit", "used", "label")

    def __init__(self, limit: int, label: str = "while"):
        self.limit = limit
        self.used = 0
        self.label = label

    @property
    def remaining(self) -> int:
        """Ticks left before exhaustion (compat with the old ``_Budget``)."""
        return self.limit - self.used

    def tick(self, condition: str | None = None) -> None:
        self.used += 1
        gov = GOV
        if gov.active and gov.governor is not None:
            gov.governor.while_tick(
                condition if condition is not None else self.label, self.used
            )
        if self.used > self.limit:
            raise NonTerminationError(
                f"{self.label} iteration budget exhausted",
                kind="iterations",
                condition=condition,
                iteration=self.used,
                limit=self.limit,
            )


@contextmanager
def governed(
    limits: Limits | None = None,
    faults=None,
    governor: ResourceGovernor | None = None,
) -> Iterator[ResourceGovernor]:
    """Enable resource governance (and/or fault injection) for a scope.

    Installs a fresh :class:`ResourceGovernor` over ``limits`` (or the
    given ``governor``) plus an optional fault plan, restoring the
    previous state on exit so scopes nest.  When an observation scope is
    also active, the whole governed region is wrapped in a ``governed``
    trace span carrying the limits on entry and the governor's counters
    on exit — budget trips therefore surface as errored spans in EXPLAIN.
    """
    gov = governor if governor is not None else ResourceGovernor(limits)
    previous = (GOV.active, GOV.governor, GOV.faults)
    GOV.governor, GOV.faults = gov, faults
    GOV.active = True
    obs = _obs.OBS
    cm = (
        obs.tracer.span(
            "governed",
            limits={
                k: v
                for k, v in (
                    ("deadline_s", gov.limits.deadline_s),
                    ("max_rows_per_op", gov.limits.max_rows_per_op),
                    ("max_cells_per_op", gov.limits.max_cells_per_op),
                    ("max_total_rows", gov.limits.max_total_rows),
                    ("max_memory_bytes", gov.limits.max_memory_bytes),
                    ("max_while_iterations", gov.limits.max_while_iterations),
                )
                if v is not None
            },
        )
        if obs.active and obs.tracer is not None
        else None
    )
    try:
        if cm is not None:
            with cm as sp:
                yield gov
                sp.set(governor=gov.snapshot())
        else:
            yield gov
    finally:
        GOV.active, GOV.governor, GOV.faults = previous
