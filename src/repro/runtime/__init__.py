"""Hardened execution runtime: governor, fault injection, checkpoint/resume.

The paper's TA programs are Turing-complete transformations (the
FO+while+new embedding of Theorem 4.1), so non-termination and resource
blowup are intrinsic to the language, not edge cases.  This package is
the production safety net around the engine:

* :mod:`repro.runtime.governor` — the :data:`~repro.runtime.governor.GOV`
  singleton and :class:`~repro.runtime.governor.ResourceGovernor`:
  wall-clock deadlines, per-op and per-program row/cell budgets, memory
  high-water checks, and cooperative cancellation, enforced at the same
  chokepoints the observability stack instruments and zero-cost when
  disabled;
* :mod:`repro.runtime.faults` — deterministic, seeded fault injection
  (``raise`` / ``delay`` / ``corrupt``) at op boundaries;
* :mod:`repro.runtime.checkpoint` — environment serialization at
  statement boundaries and :func:`~repro.runtime.checkpoint.run_hardened`,
  the deterministic kill-and-resume driver;
* :mod:`repro.runtime.chaos` — the injection-matrix harness behind
  ``python -m repro chaos`` (imported lazily: it loads the engine);
* :mod:`repro.runtime.policy` — the declarative
  :class:`~repro.runtime.policy.RetryPolicy` (error classification,
  seeded exponential backoff) and the per-workload-fingerprint
  :class:`~repro.runtime.policy.CircuitBreaker`;
* :mod:`repro.runtime.supervisor` — the fault-tolerant
  :class:`~repro.runtime.supervisor.Supervisor` driving retry, resume,
  graceful degradation, quarantine, and ledger-based crash recovery
  (imported lazily: it reaches the engine through ``run_hardened``).

Everything raises inside the :class:`~repro.core.errors.ReproError`
taxonomy: :class:`~repro.core.errors.BudgetExceededError`,
:class:`~repro.core.errors.CancelledError`,
:class:`~repro.core.errors.FaultInjectedError`,
:class:`~repro.core.errors.CheckpointError`.
"""

from .faults import FAULT_KINDS, FaultPlan, FaultRule
from .governor import GOV, IterationBudget, Limits, ResourceGovernor, governed

__all__ = [
    "GOV",
    "Limits",
    "ResourceGovernor",
    "IterationBudget",
    "governed",
    "FaultPlan",
    "FaultRule",
    "FAULT_KINDS",
    # lazily re-exported from .checkpoint (see __getattr__):
    "Checkpoint",
    "run_hardened",
    "save_checkpoint",
    "load_checkpoint",
    "program_fingerprint",
    # lazily re-exported from .policy / .supervisor:
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "classify_error",
    "Supervisor",
    "SupervisedRun",
    "RecoveryReport",
]

_LAZY_EXPORTS = {
    "Checkpoint": "checkpoint",
    "run_hardened": "checkpoint",
    "save_checkpoint": "checkpoint",
    "load_checkpoint": "checkpoint",
    "program_fingerprint": "checkpoint",
    "RetryPolicy": "policy",
    "BreakerPolicy": "policy",
    "CircuitBreaker": "policy",
    "classify_error": "policy",
    "Supervisor": "supervisor",
    "SupervisedRun": "supervisor",
    "RecoveryReport": "supervisor",
}


def __getattr__(name: str):
    # checkpoint (and through it the supervisor) imports the
    # interpreter, which imports the op registry, which imports this
    # package — loading these lazily keeps the import graph acyclic
    # (same pattern as repro.obs deferring examples).
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        import importlib

        module = importlib.import_module(f".{module_name}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
