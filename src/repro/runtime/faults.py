"""Deterministic fault injection at op boundaries (chaos engineering).

A :class:`FaultPlan` is installed alongside the governor
(``governed(faults=plan)`` or ``GOV.faults``) and consulted by the op
registry around every dispatch.  Three fault kinds:

* ``raise``   — the op boundary raises a typed
  :class:`~repro.core.errors.FaultInjectedError` *before* the op runs;
* ``delay``   — the boundary sleeps, so a governed deadline trips as a
  typed :class:`~repro.core.errors.BudgetExceededError` at the same
  op's accounting check;
* ``corrupt`` — the op's output is rebuilt with a structurally invalid
  grid (one cell torn out of a seeded-random data row), which the core
  model's own validation rejects as a typed
  :class:`~repro.core.errors.SchemaError` — silent corruption cannot
  cross an op boundary because :class:`~repro.core.table.Table`
  re-validates on construction.

Every kind therefore surfaces as a :class:`~repro.core.errors.ReproError`
subclass, and because the interpreter's snapshot-and-commit statement
semantics discard partial results (including fresh-value tags) on any
raise, no fault leaves the environment partially mutated — the chaos
suite proves both properties over a matrix of injection points.

Rules fire deterministically: ``occurrence`` counts matching dispatches
of the rule's op (1-based), and the only randomness — which cell a
``corrupt`` fault tears out — comes from a :class:`random.Random` seeded
from the plan's ``seed``, so a failing chaos point replays exactly.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.errors import EvaluationError, FaultInjectedError
from ..obs import events as _ev
from ..obs import runtime as _obs

__all__ = ["FaultRule", "FaultPlan", "FAULT_KINDS"]

#: The supported fault kinds.
FAULT_KINDS = ("raise", "delay", "corrupt")


@dataclass(frozen=True)
class FaultRule:
    """One fault: fire ``kind`` at the ``occurrence``-th dispatch of ``op``.

    ``op`` is the registry op name (upper-cased; ``"*"`` matches every
    op); ``delay_s`` only applies to ``delay`` faults.
    """

    op: str
    kind: str
    occurrence: int = 1
    delay_s: float = 0.05

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise EvaluationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.occurrence < 1:
            raise EvaluationError(f"fault occurrence is 1-based; got {self.occurrence}")
        object.__setattr__(self, "op", self.op.upper())

    def to_json(self) -> dict:
        return {
            "op": self.op,
            "kind": self.kind,
            "occurrence": self.occurrence,
            "delay_s": self.delay_s,
        }


class FaultPlan:
    """A seeded set of :class:`FaultRule` plus per-op dispatch counting.

    The plan also serves as a passive probe: with no rules it simply
    counts op dispatches, which is how the chaos runner discovers the
    injection points of a pipeline before building its matrix.
    """

    def __init__(self, rules: Iterable[FaultRule] = (), seed: int = 0):
        self.rules = tuple(rules)
        self.seed = seed
        self._rng = random.Random(seed)
        self._counts: dict[str, int] = {}
        #: Records of fired faults: ``{"op", "kind", "occurrence"}`` dicts.
        self.fired: list[dict] = []

    # -- construction ---------------------------------------------------

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        """Build a plan from the documented JSON format (docs/ROBUSTNESS.md)."""
        if not isinstance(data, dict) or not isinstance(data.get("rules"), list):
            raise EvaluationError(
                'a fault plan is {"seed": int, "rules": [{"op", "kind", ...}]}'
            )
        rules = []
        for entry in data["rules"]:
            if not isinstance(entry, dict) or "op" not in entry or "kind" not in entry:
                raise EvaluationError(f"malformed fault rule {entry!r}")
            rules.append(
                FaultRule(
                    op=str(entry["op"]),
                    kind=str(entry["kind"]),
                    occurrence=int(entry.get("occurrence", 1)),
                    delay_s=float(entry.get("delay_s", 0.05)),
                )
            )
        return cls(rules, seed=int(data.get("seed", 0)))

    def to_json(self) -> dict:
        return {"seed": self.seed, "rules": [rule.to_json() for rule in self.rules]}

    # -- lifecycle ------------------------------------------------------

    def reset(self) -> None:
        """Restore the initial state (counts, RNG, fired log) for a re-run."""
        self._rng = random.Random(self.seed)
        self._counts.clear()
        self.fired.clear()

    def dispatch_counts(self) -> dict[str, int]:
        """Per-op dispatch counts observed so far (probe mode)."""
        return dict(self._counts)

    # -- the op-boundary hooks (called by the registry) -----------------

    def _matches(self, op: str, count: int, kind: str) -> FaultRule | None:
        for rule in self.rules:
            if rule.kind != kind:
                continue
            if rule.op != "*" and rule.op != op:
                continue
            if rule.occurrence == count:
                return rule
        return None

    def _record(self, op: str, kind: str, count: int) -> None:
        self.fired.append({"op": op, "kind": kind, "occurrence": count})
        if _ev.EVT.active:
            _ev.emit(
                "fault_injected", op=op, fault=kind, occurrence=count, seed=self.seed
            )
        obs = _obs.OBS
        if obs.active and obs.tracer is not None:
            with obs.tracer.span("fault", op=op, kind=kind, occurrence=count):
                pass
        if obs.active and obs.metrics is not None:
            obs.metrics.count("faults_injected")

    def before(self, op: str) -> None:
        """Pre-dispatch hook: counts the dispatch, fires raise/delay faults."""
        count = self._counts.get(op, 0) + 1
        self._counts[op] = count
        rule = self._matches(op, count, "delay")
        if rule is not None:
            self._record(op, "delay", count)
            time.sleep(rule.delay_s)
        rule = self._matches(op, count, "raise")
        if rule is not None:
            self._record(op, "raise", count)
            raise FaultInjectedError(
                "injected fault",
                op=op,
                kind="raise",
                occurrence=count,
                seed=self.seed,
            )

    def after(self, op: str, produced: Sequence) -> tuple:
        """Post-dispatch hook: fires corrupt faults on the op's output.

        Corruption rebuilds one produced table with a cell torn out of a
        seeded-random data row; :class:`~repro.core.table.Table` rejects
        the ragged grid, so the corruption surfaces immediately as a
        typed :class:`~repro.core.errors.SchemaError` rather than
        propagating silently into the database.
        """
        count = self._counts.get(op, 0)
        rule = self._matches(op, count, "corrupt")
        if rule is None or not produced:
            return tuple(produced)
        self._record(op, "corrupt", count)
        from ..core.table import Table

        victim = produced[0]
        grid = [list(row) for row in victim.grid]
        if len(grid) > 1 and len(grid[0]) > 1:
            row = 1 + self._rng.randrange(len(grid) - 1)
            grid[row] = grid[row][:-1]  # tear one cell out: ragged grid
        else:
            grid = []  # degenerate table: corrupt to the empty grid
        corrupted = Table(grid)  # raises SchemaError — by design
        return (corrupted,) + tuple(produced[1:])  # pragma: no cover

    def __repr__(self) -> str:
        return f"FaultPlan({len(self.rules)} rule(s), seed={self.seed})"
