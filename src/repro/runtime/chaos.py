"""The chaos harness: a fault-injection matrix over bundled pipelines.

For each target pipeline the harness first runs a *probe* pass (a
rule-less :class:`~repro.runtime.faults.FaultPlan` simply counts op
dispatches) to discover the injection points, then replays the pipeline
once per ``(op, fault kind)`` matrix point with a single-rule plan
installed.  Each point must:

* surface as a typed :class:`~repro.core.errors.ReproError` subclass
  (never a bare ``Exception``, never silent success);
* carry op context (``raise`` faults name the op and occurrence);
* leave no partial mutation behind — the pipeline re-runs cleanly
  afterwards and reproduces the reference result exactly.

``python -m repro chaos`` drives this over the bundled examples (the CI
chaos-smoke job's first half); the report renders as a matrix table with
one verdict per point.

This module imports the engine via :mod:`repro.obs.examples`, so — like
that module — it must only be imported lazily (from the CLI or tests),
never from :mod:`repro.runtime`'s ``__init__``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import (
    BudgetExceededError,
    FaultInjectedError,
    ReproError,
    SchemaError,
)
from .faults import FaultPlan, FaultRule
from .governor import Limits, governed

__all__ = ["ChaosPoint", "ChaosReport", "run_chaos_matrix", "render_chaos_report"]

#: Deadline/delay pairing for ``delay`` faults: the injected sleep must
#: overshoot the governed deadline by a comfortable CI-safe margin.
DELAY_DEADLINE_S = 0.05
DELAY_SLEEP_S = 0.25

#: Expected error taxonomy per fault kind.
EXPECTED_ERRORS = {
    "raise": FaultInjectedError,
    "delay": BudgetExceededError,
    "corrupt": SchemaError,
}


@dataclass(frozen=True)
class ChaosPoint:
    """One matrix point's verdict."""

    example: str
    op: str
    kind: str
    error_type: str | None  # the raised ReproError subclass, or None
    typed: bool  # raised and isinstance of the expected type
    context_ok: bool  # structured context present where promised
    atomic: bool  # clean re-run still reproduces the reference

    @property
    def ok(self) -> bool:
        return self.typed and self.context_ok and self.atomic


@dataclass(frozen=True)
class ChaosReport:
    points: tuple[ChaosPoint, ...]
    seed: int

    @property
    def failures(self) -> tuple[ChaosPoint, ...]:
        return tuple(p for p in self.points if not p.ok)

    @property
    def ok(self) -> bool:
        return not self.failures


def _chaos_targets(names=None) -> dict:
    """The setup-capable bundled examples (db + run separable)."""
    from ..obs.examples import EXAMPLES, resolve_example_strict

    if names:
        resolved = [resolve_example_strict(n) for n in names]
    else:
        resolved = [n for n, ex in EXAMPLES.items() if ex.setup is not None]
    out = {}
    for name in resolved:
        example = EXAMPLES[name]
        if example.setup is None:
            raise ReproError(
                f"example {name!r} is not chaos-capable (no setup hook)"
            )
        out[name] = example
    return out


def _probe(example) -> tuple[dict[str, int], object]:
    """Dispatch counts and the reference result of one clean run."""
    probe_plan = FaultPlan()
    db, run = example.setup()
    with governed(faults=probe_plan):
        reference = run(db)
    return probe_plan.dispatch_counts(), reference


def _run_point(example, rule: FaultRule, seed: int):
    """One injected run; returns the raised error (or None)."""
    plan = FaultPlan([rule], seed=seed)
    limits = Limits(deadline_s=DELAY_DEADLINE_S) if rule.kind == "delay" else None
    db, run = example.setup()
    try:
        with governed(limits, faults=plan):
            run(db)
    except ReproError as err:
        return err
    return None


def run_chaos_matrix(names=None, kinds=None, seed: int = 0) -> ChaosReport:
    """Run the full injection matrix; see the module docstring."""
    kinds = tuple(kinds) if kinds else ("raise", "delay", "corrupt")
    points: list[ChaosPoint] = []
    for name, example in _chaos_targets(names).items():
        counts, reference = _probe(example)
        for op in sorted(counts):
            for kind in kinds:
                rule = FaultRule(
                    op=op, kind=kind, occurrence=1, delay_s=DELAY_SLEEP_S
                )
                err = _run_point(example, rule, seed)
                expected = EXPECTED_ERRORS[kind]
                typed = isinstance(err, expected)
                context_ok = True
                if kind == "raise":
                    context_ok = (
                        typed
                        and getattr(err, "op", None) == op
                        and getattr(err, "occurrence", None) == 1
                    )
                elif kind == "delay":
                    context_ok = typed and getattr(err, "kind", None) == "deadline"
                # Atomicity at the process level: nothing the fault touched
                # may leak into a later run — the clean pipeline must still
                # reproduce the reference exactly.
                db, run = example.setup()
                atomic = run(db) == reference
                points.append(
                    ChaosPoint(
                        example=name,
                        op=op,
                        kind=kind,
                        error_type=type(err).__name__ if err is not None else None,
                        typed=typed,
                        context_ok=context_ok,
                        atomic=atomic,
                    )
                )
    return ChaosReport(points=tuple(points), seed=seed)


def render_chaos_report(report: ChaosReport) -> str:
    """The matrix table ``python -m repro chaos`` prints."""
    lines = []
    width_example = max([len(p.example) for p in report.points] or [7])
    width_op = max([len(p.op) for p in report.points] or [2])
    lines.append(
        f"{'':4}  {'example':<{width_example}}  {'op':<{width_op}}  "
        f"{'fault':<7}  surfaced as"
    )
    for point in report.points:
        verdict = "ok  " if point.ok else "FAIL"
        detail = point.error_type or "no error raised"
        notes = []
        if point.error_type and not point.typed:
            notes.append("wrong type")
        if point.typed and not point.context_ok:
            notes.append("missing context")
        if not point.atomic:
            notes.append("not atomic")
        suffix = f"  ({', '.join(notes)})" if notes else ""
        lines.append(
            f"{verdict}  {point.example:<{width_example}}  "
            f"{point.op:<{width_op}}  {point.kind:<7}  {detail}{suffix}"
        )
    lines.append("")
    lines.append(
        f"{len(report.points) - len(report.failures)}/{len(report.points)} "
        f"injection points surfaced as typed errors with no partial mutation "
        f"(seed={report.seed})"
    )
    return "\n".join(lines)
