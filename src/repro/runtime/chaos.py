"""The chaos harness: a fault-injection matrix over bundled pipelines.

For each target pipeline the harness first runs a *probe* pass (a
rule-less :class:`~repro.runtime.faults.FaultPlan` simply counts op
dispatches) to discover the injection points, then replays the pipeline
once per ``(op, fault kind)`` matrix point with a single-rule plan
installed.  Each point must:

* surface as a typed :class:`~repro.core.errors.ReproError` subclass
  (never a bare ``Exception``, never silent success);
* carry op context (``raise`` faults name the op and occurrence);
* leave no partial mutation behind — the pipeline re-runs cleanly
  afterwards and reproduces the reference result exactly.

``python -m repro chaos`` drives this over the bundled examples (the CI
chaos-smoke job's first half); the report renders as a matrix table with
one verdict per point.

This module imports the engine via :mod:`repro.obs.examples`, so — like
that module — it must only be imported lazily (from the CLI or tests),
never from :mod:`repro.runtime`'s ``__init__``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import (
    BudgetExceededError,
    FaultInjectedError,
    ReproError,
    SchemaError,
)
from .faults import FaultPlan, FaultRule
from .governor import Limits, governed

__all__ = [
    "ChaosPoint",
    "ChaosReport",
    "run_chaos_matrix",
    "render_chaos_report",
    "SupervisorPoint",
    "SupervisorReport",
    "run_supervisor_matrix",
    "render_supervisor_report",
]

#: Deadline/delay pairing for ``delay`` faults: the injected sleep must
#: overshoot the governed deadline by a comfortable CI-safe margin.
DELAY_DEADLINE_S = 0.05
DELAY_SLEEP_S = 0.25

#: Expected error taxonomy per fault kind.
EXPECTED_ERRORS = {
    "raise": FaultInjectedError,
    "delay": BudgetExceededError,
    "corrupt": SchemaError,
}


@dataclass(frozen=True)
class ChaosPoint:
    """One matrix point's verdict."""

    example: str
    op: str
    kind: str
    error_type: str | None  # the raised ReproError subclass, or None
    typed: bool  # raised and isinstance of the expected type
    context_ok: bool  # structured context present where promised
    atomic: bool  # clean re-run still reproduces the reference

    @property
    def ok(self) -> bool:
        return self.typed and self.context_ok and self.atomic


@dataclass(frozen=True)
class ChaosReport:
    points: tuple[ChaosPoint, ...]
    seed: int

    @property
    def failures(self) -> tuple[ChaosPoint, ...]:
        return tuple(p for p in self.points if not p.ok)

    @property
    def ok(self) -> bool:
        return not self.failures


def _chaos_targets(names=None) -> dict:
    """The setup-capable bundled examples (db + run separable)."""
    from ..obs.examples import EXAMPLES, resolve_example_strict

    if names:
        resolved = [resolve_example_strict(n) for n in names]
    else:
        resolved = [n for n, ex in EXAMPLES.items() if ex.setup is not None]
    out = {}
    for name in resolved:
        example = EXAMPLES[name]
        if example.setup is None:
            raise ReproError(
                f"example {name!r} is not chaos-capable (no setup hook)"
            )
        out[name] = example
    return out


def _probe(example) -> tuple[dict[str, int], object]:
    """Dispatch counts and the reference result of one clean run."""
    probe_plan = FaultPlan()
    db, run = example.setup()
    with governed(faults=probe_plan):
        reference = run(db)
    return probe_plan.dispatch_counts(), reference


def _run_point(example, rule: FaultRule, seed: int):
    """One injected run; returns the raised error (or None)."""
    plan = FaultPlan([rule], seed=seed)
    limits = Limits(deadline_s=DELAY_DEADLINE_S) if rule.kind == "delay" else None
    db, run = example.setup()
    try:
        with governed(limits, faults=plan):
            run(db)
    except ReproError as err:
        return err
    return None


def run_chaos_matrix(names=None, kinds=None, seed: int = 0) -> ChaosReport:
    """Run the full injection matrix; see the module docstring."""
    kinds = tuple(kinds) if kinds else ("raise", "delay", "corrupt")
    points: list[ChaosPoint] = []
    for name, example in _chaos_targets(names).items():
        counts, reference = _probe(example)
        for op in sorted(counts):
            for kind in kinds:
                rule = FaultRule(
                    op=op, kind=kind, occurrence=1, delay_s=DELAY_SLEEP_S
                )
                err = _run_point(example, rule, seed)
                expected = EXPECTED_ERRORS[kind]
                typed = isinstance(err, expected)
                context_ok = True
                if kind == "raise":
                    context_ok = (
                        typed
                        and getattr(err, "op", None) == op
                        and getattr(err, "occurrence", None) == 1
                    )
                elif kind == "delay":
                    context_ok = typed and getattr(err, "kind", None) == "deadline"
                # Atomicity at the process level: nothing the fault touched
                # may leak into a later run — the clean pipeline must still
                # reproduce the reference exactly.
                db, run = example.setup()
                atomic = run(db) == reference
                points.append(
                    ChaosPoint(
                        example=name,
                        op=op,
                        kind=kind,
                        error_type=type(err).__name__ if err is not None else None,
                        typed=typed,
                        context_ok=context_ok,
                        atomic=atomic,
                    )
                )
    return ChaosReport(points=tuple(points), seed=seed)


# ----------------------------------------------------------------------
# The supervisor decision matrix
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SupervisorPoint:
    """One (error class × policy × engine) cell's verdict.

    ``expected``/``observed`` are supervision decisions: ``retried``
    (a transient fault was retried to success), ``resumed`` (a budget
    kill resumed from the checkpoint), ``degraded`` (a vector-engine
    failure fell back to the naive backend), ``failed`` (a terminal
    error was surfaced typed, with no result), ``quarantined`` (an open
    breaker refused admission).  ``identical`` asserts no silent partial
    results: a successful cell's database is byte-identical to the
    unfaulted reference, and a failed cell exposes *no* database while a
    clean re-run still reproduces the reference.
    """

    cell: str
    error_class: str
    policy: str
    engine: str
    expected: str
    observed: str
    error_type: str | None
    identical: bool

    @property
    def ok(self) -> bool:
        return self.observed == self.expected and self.identical


@dataclass(frozen=True)
class SupervisorReport:
    points: tuple[SupervisorPoint, ...]
    seed: int

    @property
    def failures(self) -> tuple[SupervisorPoint, ...]:
        return tuple(p for p in self.points if not p.ok)

    @property
    def ok(self) -> bool:
        return not self.failures


def _observed_decision(run) -> str:
    """Collapse one SupervisedRun into the matrix's decision vocabulary."""
    if not run.ok:
        return "failed"
    if run.degraded:
        return "degraded"
    decisions = {a.decision for a in run.attempts if a.decision is not None}
    if "resume" in decisions:
        return "resumed"
    if "retry" in decisions:
        return "retried"
    return "clean"


def run_supervisor_matrix(seed: int = 0, nodes: int = 8) -> SupervisorReport:
    """Prove every supervision path on one deterministic workload.

    Each cell pairs an error class (injected fault, deadline kill via an
    injected delay, corrupt kernel output, non-termination, poison
    workload) with a retry policy and an engine, submits ``tc:nodes``
    through a fresh :class:`~repro.runtime.supervisor.Supervisor`, and
    asserts the documented decision *and* byte-identical results (or a
    typed failure with no result at all).  Deadline cells trigger the
    kill with a ``delay`` fault that overshoots the governed deadline,
    so the matrix stays deterministic on any machine: fault occurrence
    counts persist across attempts inside one plan, which is also why a
    retried/resumed attempt converges instead of re-dying.
    """
    import tempfile
    from pathlib import Path

    from ..core.errors import QuarantinedError
    from ..obs.ledger import database_digest
    from .policy import BreakerPolicy, RetryPolicy
    from .supervisor import Supervisor
    from .workloads import transitive_closure_workload

    retrying = RetryPolicy(
        max_attempts=300, base_backoff_s=0.0, seed=seed, jitter=0.0
    )
    single = RetryPolicy(max_attempts=1, seed=seed)

    def raise_plan():
        return FaultPlan([FaultRule(op="DIFFERENCE", kind="raise")], seed=seed)

    def delay_plan():
        return FaultPlan(
            [FaultRule(op="DIFFERENCE", kind="delay", delay_s=DELAY_SLEEP_S)],
            seed=seed,
        )

    def corrupt_plan():
        return FaultPlan([FaultRule(op="DIFFERENCE", kind="corrupt")], seed=seed)

    deadline = Limits(deadline_s=DELAY_DEADLINE_S)
    cells = [
        # (cell, error class, policy label, engine, faults, policy,
        #  limits, max_while, expected decision)
        ("raise/retry/naive", "FaultInjected", "retry", "naive",
         raise_plan, retrying, None, 10_000, "retried"),
        ("raise/retry/vector", "FaultInjected", "retry", "vector",
         raise_plan, retrying, None, 10_000, "retried"),
        ("raise/single/naive", "FaultInjected", "no-retry", "naive",
         raise_plan, single, None, 10_000, "failed"),
        ("deadline/retry/naive", "BudgetExceeded", "retry", "naive",
         delay_plan, retrying, deadline, 10_000, "resumed"),
        ("deadline/retry/vector", "BudgetExceeded", "retry", "vector",
         delay_plan, retrying, deadline, 10_000, "resumed"),
        ("deadline/single/naive", "BudgetExceeded", "no-retry", "naive",
         delay_plan, single, deadline, 10_000, "failed"),
        ("corrupt/retry/vector", "SchemaError", "retry", "vector",
         corrupt_plan, retrying, None, 10_000, "degraded"),
        ("corrupt/retry/naive", "SchemaError", "retry", "naive",
         corrupt_plan, retrying, None, 10_000, "failed"),
        ("nontermination/retry/naive", "NonTermination", "retry", "naive",
         None, retrying, None, 3, "failed"),
    ]

    label = f"tc:{nodes}"
    program, db = transitive_closure_workload(nodes)
    reference = program.run(db)
    reference_digest = database_digest(reference)[0]

    points: list[SupervisorPoint] = []
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        for index, (cell, error_class, policy_label, engine, plan_factory,
                    policy, limits, max_while, expected) in enumerate(cells):
            supervisor = Supervisor(policy=policy, sleep=lambda s: None)
            checkpoint = str(Path(tmp) / f"cell-{index}.json")
            run = supervisor.submit(
                program,
                db,
                workload=label,
                limits=limits,
                faults=plan_factory() if plan_factory is not None else None,
                checkpoint_path=checkpoint,
                engine=engine,
                max_while_iterations=max_while,
            )
            observed = _observed_decision(run)
            if run.ok:
                identical = database_digest(run.result)[0] == reference_digest
            else:
                # A failed cell must expose no partial database, and the
                # fault must not have leaked into shared state: a clean
                # re-run still reproduces the reference.
                identical = (
                    run.result is None
                    and database_digest(program.run(db))[0] == reference_digest
                )
            points.append(
                SupervisorPoint(
                    cell=cell,
                    error_class=error_class,
                    policy=policy_label,
                    engine=engine,
                    expected=expected,
                    observed=observed,
                    error_type=(
                        type(run.error).__name__ if run.error is not None else None
                    ),
                    identical=identical,
                )
            )

        # The quarantine cell needs memory across submissions: a poison
        # workload (every attempt dies immediately) trips the breaker at
        # the threshold, and the next submission must be refused typed.
        breaker_supervisor = Supervisor(
            policy=single,
            breaker_policy=BreakerPolicy(failure_threshold=2, cooldown_s=3600.0),
            sleep=lambda s: None,
        )
        for _ in range(2):
            poison = FaultPlan([FaultRule(op="*", kind="raise")], seed=seed)
            breaker_supervisor.submit(
                program, db, workload=label, faults=poison
            )
        try:
            breaker_supervisor.submit(program, db, workload=label)
            observed = "clean"
            error_type = None
        except QuarantinedError as err:
            observed = "quarantined"
            error_type = type(err).__name__
        points.append(
            SupervisorPoint(
                cell="poison/breaker/naive",
                error_class="Quarantined",
                policy="breaker(2)",
                engine="naive",
                expected="quarantined",
                observed=observed,
                error_type=error_type,
                identical=database_digest(program.run(db))[0] == reference_digest,
            )
        )
    return SupervisorReport(points=tuple(points), seed=seed)


def render_supervisor_report(report: SupervisorReport) -> str:
    """The decision table ``python -m repro chaos --supervisor`` prints."""
    lines = []
    width_cell = max(len(p.cell) for p in report.points)
    lines.append(
        f"{'':4}  {'cell':<{width_cell}}  {'expected':<11}  "
        f"{'observed':<11}  surfaced as"
    )
    for point in report.points:
        verdict = "ok  " if point.ok else "FAIL"
        notes = []
        if point.observed != point.expected:
            notes.append("wrong decision")
        if not point.identical:
            notes.append("result not byte-identical")
        suffix = f"  ({', '.join(notes)})" if notes else ""
        lines.append(
            f"{verdict}  {point.cell:<{width_cell}}  {point.expected:<11}  "
            f"{point.observed:<11}  {point.error_type or '-'}{suffix}"
        )
    lines.append("")
    lines.append(
        f"{len(report.points) - len(report.failures)}/{len(report.points)} "
        f"supervision paths ended in the documented decision with "
        f"byte-identical results or a typed refusal (seed={report.seed})"
    )
    return "\n".join(lines)


def render_chaos_report(report: ChaosReport) -> str:
    """The matrix table ``python -m repro chaos`` prints."""
    lines = []
    width_example = max([len(p.example) for p in report.points] or [7])
    width_op = max([len(p.op) for p in report.points] or [2])
    lines.append(
        f"{'':4}  {'example':<{width_example}}  {'op':<{width_op}}  "
        f"{'fault':<7}  surfaced as"
    )
    for point in report.points:
        verdict = "ok  " if point.ok else "FAIL"
        detail = point.error_type or "no error raised"
        notes = []
        if point.error_type and not point.typed:
            notes.append("wrong type")
        if point.typed and not point.context_ok:
            notes.append("missing context")
        if not point.atomic:
            notes.append("not atomic")
        suffix = f"  ({', '.join(notes)})" if notes else ""
        lines.append(
            f"{verdict}  {point.example:<{width_example}}  "
            f"{point.op:<{width_op}}  {point.kind:<7}  {detail}{suffix}"
        )
    lines.append("")
    lines.append(
        f"{len(report.points) - len(report.failures)}/{len(report.points)} "
        f"injection points surfaced as typed errors with no partial mutation "
        f"(seed={report.seed})"
    )
    return "\n".join(lines)
