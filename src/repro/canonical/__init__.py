"""Canonical representations of tabular databases (paper, Section 4.1).

``encode`` / ``decode`` realize the semantic content of the paper's
programs ``P_Rep`` and ``P_Rep⁻`` (Lemmas 4.2 and 4.3): every tabular
database maps to a fixed-scheme relational encoding — the ``Rep`` scheme —
and back, up to row/column permutations and the choice of occurrence
identifiers.  This is the pivot of the completeness proof (Theorem 4.4).
"""

from .decode import decode, validate_rep
from .encode import encode
from .rep_schema import COL, DATA, DATA_COLUMNS, ENTRY, ID, MAP, MAP_COLUMNS, ROW, TBL, VAL

__all__ = [
    "encode",
    "decode",
    "validate_rep",
    "DATA",
    "MAP",
    "TBL",
    "ROW",
    "COL",
    "VAL",
    "ID",
    "ENTRY",
    "DATA_COLUMNS",
    "MAP_COLUMNS",
]
