"""The canonical representation scheme ``Rep`` (paper, Section 4.1).

A canonical representation of a tabular database ``D`` is a relational
database over::

    Rep = { Data(Tbl, Row, Col, Val),  Map(Id, Entry) }

with the functional dependencies ``Id → Entry`` and ``Tbl, Row, Col → Val``,
such that a table ρ of D has ``ρ_0^0``, ``ρ_i^0``, ``ρ_0^j`` and ``ρ_i^j``
at the indicated positions iff there exist occurrence identifiers
``id1..id4`` with ``(id_k, entry_k) ∈ Map`` and ``(id1, id2, id3, id4) ∈
Data``.  Every *occurrence* — a table, a row of a table, a column of a
table, a grid position — gets its own identifier; ``Map`` resolves
identifiers to the symbols occupying them.

Although tables have variable width, the canonical representation always
has fixed-width relations — the linchpin of the completeness proof.

Here the canonical representation lives inside the tabular model itself
(relation-style tables named ``Data`` and ``Map``), which is exactly the
"natural representation in the tabular model of the canonical
representation" that Lemmas 4.2 and 4.3 speak about.
"""

from __future__ import annotations

from ..core import Name

__all__ = [
    "DATA",
    "MAP",
    "TBL",
    "ROW",
    "COL",
    "VAL",
    "ID",
    "ENTRY",
    "DATA_COLUMNS",
    "MAP_COLUMNS",
]

#: Relation names of the Rep scheme.
DATA = Name("Data")
MAP = Name("Map")

#: Attributes of ``Data(Tbl, Row, Col, Val)``.
TBL = Name("Tbl")
ROW = Name("Row")
COL = Name("Col")
VAL = Name("Val")

#: Attributes of ``Map(Id, Entry)``.
ID = Name("Id")
ENTRY = Name("Entry")

DATA_COLUMNS = (TBL, ROW, COL, VAL)
MAP_COLUMNS = (ID, ENTRY)
