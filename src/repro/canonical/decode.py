"""Decoding a canonical representation back into tables (Lemma 4.3).

``decode`` realizes the paper's inverse program ``P_Rep⁻``: for an instance
over the ``Rep`` scheme it rebuilds the represented tabular database, so
that ``decode(encode(D))`` equals D up to permutations of rows and columns
(and, from the other side, ``encode(decode(R))`` re-represents R up to the
choice of occurrence identifiers).

Degenerate tables — width 0 or height 0 — produce no ``Data`` tuples, so
their shape is not recoverable from a canonical representation; this is a
property of the paper's scheme (``Data`` is the only link between a table
and its rows/columns), and the round-trip guarantees therefore hold for
databases whose tables all have at least one data row and one data column.
``encode`` still accepts degenerate tables (their name occurrence lands in
``Map``), but ``decode`` reconstructs only what ``Data`` describes.
"""

from __future__ import annotations

from ..core import (
    SchemaError,
    Symbol,
    Table,
    TabularDatabase,
)
from .rep_schema import DATA, ENTRY, ID, MAP

__all__ = ["decode", "validate_rep"]


def _column_index(table: Table, attribute: Symbol) -> int:
    columns = table.columns_named(attribute)
    if len(columns) != 1:
        raise SchemaError(
            f"{table.name!s} must have exactly one {attribute!s} column, found {len(columns)}"
        )
    return columns[0]


def _read_map(map_table: Table) -> dict[Symbol, Symbol]:
    """Read Map(Id, Entry), enforcing the FD Id → Entry."""
    id_col = _column_index(map_table, ID)
    entry_col = _column_index(map_table, ENTRY)
    mapping: dict[Symbol, Symbol] = {}
    for i in map_table.data_row_indices():
        occurrence = map_table.entry(i, id_col)
        entry = map_table.entry(i, entry_col)
        if occurrence in mapping and mapping[occurrence] != entry:
            raise SchemaError(
                f"Map violates Id → Entry: id {occurrence!s} maps to both "
                f"{mapping[occurrence]!s} and {entry!s}"
            )
        mapping[occurrence] = entry
    return mapping


def _read_data(
    data_table: Table,
) -> dict[Symbol, dict[tuple[Symbol, Symbol], Symbol]]:
    """Read Data(Tbl, Row, Col, Val) grouped per table occurrence,
    enforcing the FD Tbl, Row, Col → Val."""
    from .rep_schema import COL, ROW, TBL, VAL

    tbl_col = _column_index(data_table, TBL)
    row_col = _column_index(data_table, ROW)
    col_col = _column_index(data_table, COL)
    val_col = _column_index(data_table, VAL)
    per_table: dict[Symbol, dict[tuple[Symbol, Symbol], Symbol]] = {}
    for i in data_table.data_row_indices():
        tbl = data_table.entry(i, tbl_col)
        key = (data_table.entry(i, row_col), data_table.entry(i, col_col))
        val = data_table.entry(i, val_col)
        cells = per_table.setdefault(tbl, {})
        if key in cells and cells[key] != val:
            raise SchemaError(
                f"Data violates Tbl,Row,Col → Val for table id {tbl!s} at {key}"
            )
        cells[key] = val
    return per_table


def validate_rep(db: TabularDatabase) -> None:
    """Check that ``db`` is a well-formed ``Rep`` instance.

    Verifies the presence of the ``Data`` and ``Map`` tables, both
    functional dependencies, that every identifier used in ``Data``
    resolves through ``Map``, and that every table occurrence is
    *rectangular* (each of its rows meets each of its columns exactly
    once).  Raises :class:`~repro.core.SchemaError` otherwise.
    """
    mapping = _read_map(db.table(MAP))
    per_table = _read_data(db.table(DATA))
    for tbl, cells in per_table.items():
        rows = _ordered_firsts(r for (r, _c) in cells)
        cols = _ordered_firsts(c for (_r, c) in cells)
        for identifier in [tbl, *rows, *cols, *cells.values()]:
            if identifier not in mapping:
                raise SchemaError(f"Data references id {identifier!s} absent from Map")
        missing = [(r, c) for r in rows for c in cols if (r, c) not in cells]
        if missing:
            raise SchemaError(
                f"table id {tbl!s} is not rectangular: {len(missing)} missing positions"
            )


def _ordered_firsts(items) -> list:
    seen = []
    lookup = set()
    for item in items:
        if item not in lookup:
            lookup.add(item)
            seen.append(item)
    return seen


def decode(db: TabularDatabase) -> TabularDatabase:
    """Rebuild the tabular database a ``Rep`` instance represents."""
    validate_rep(db)
    mapping = _read_map(db.table(MAP))
    per_table = _read_data(db.table(DATA))
    tables = []
    for tbl, cells in sorted(per_table.items(), key=lambda kv: kv[0].sort_key()):
        rows = _ordered_firsts(r for (r, _c) in cells)
        cols = _ordered_firsts(c for (_r, c) in cells)
        grid = [[mapping[tbl]] + [mapping[c] for c in cols]]
        for r in rows:
            grid.append([mapping[r]] + [mapping[cells[(r, c)]] for c in cols])
        tables.append(Table(grid))
    return TabularDatabase(tables)
