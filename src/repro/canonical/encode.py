"""Encoding a tabular database into its canonical representation (Lemma 4.2).

``encode`` realizes the semantic content of the paper's program ``P_Rep``:
for every tabular database D over a scheme N it yields the canonical
representation of D — the relation-style tables ``Data`` and ``Map`` over
the :mod:`rep scheme <repro.canonical.rep_schema>`.

Occurrence identifiers are fresh tagged values (one per table, one per
grid row of a table, one per grid column, one per grid position), which
makes the representation "unique up to the particular choice of occurrence
identifiers", exactly as the paper notes.
"""

from __future__ import annotations

from ..core import (
    NULL,
    FreshValueSource,
    Symbol,
    Table,
    TabularDatabase,
)
from .rep_schema import DATA, DATA_COLUMNS, MAP, MAP_COLUMNS

__all__ = ["encode"]


def _relation(name: Symbol, columns, rows) -> Table:
    grid = [[name, *columns]]
    for row in rows:
        grid.append([NULL, *row])
    return Table(grid)


def encode(
    db: TabularDatabase, source: FreshValueSource | None = None
) -> TabularDatabase:
    """The canonical representation of ``db`` as a tabular database.

    Returns a database holding exactly two relation-style tables, ``Data``
    and ``Map``.  Identifier choice comes from ``source`` (a fresh one by
    default, advanced past every tagged value in ``db`` so identifiers
    never collide with existing symbols).
    """
    src = source if source is not None else FreshValueSource()
    src.advance_past(db.symbols())

    data_rows: list[tuple[Symbol, Symbol, Symbol, Symbol]] = []
    map_rows: list[tuple[Symbol, Symbol]] = []

    for table in db.tables:
        table_id = src.fresh()
        map_rows.append((table_id, table.name))
        row_ids = {}
        for i in table.data_row_indices():
            row_ids[i] = src.fresh()
            map_rows.append((row_ids[i], table.entry(i, 0)))
        col_ids = {}
        for j in table.data_col_indices():
            col_ids[j] = src.fresh()
            map_rows.append((col_ids[j], table.entry(0, j)))
        for i in table.data_row_indices():
            for j in table.data_col_indices():
                value_id = src.fresh()
                map_rows.append((value_id, table.entry(i, j)))
                data_rows.append((table_id, row_ids[i], col_ids[j], value_id))

    return TabularDatabase(
        [
            _relation(DATA, DATA_COLUMNS, data_rows),
            _relation(MAP, MAP_COLUMNS, map_rows),
        ]
    )
