"""repro — a reproduction of *Tables as a Paradigm for Querying and
Restructuring* (Gyssens, Lakshmanan, Subramanian; PODS 1996).

The package implements the tabular database model, the tabular algebra and
its program layer, the canonical representation and transformation theory
behind the completeness theorem, the FO+while+new / SchemaLog / GOOD
embeddings, and an OLAP layer built on the tabular model.

Quickstart::

    from repro.core import make_table
    from repro.algebra import group_compact

    sales = make_table("Sales", ["Part", "Region", "Sold"],
                       [("nuts", "east", 50), ("bolts", "east", 70)])
    pivoted = group_compact(sales, by="Region", on="Sold")
    print(pivoted)
"""

__version__ = "1.0.0"

from . import (
    algebra,
    canonical,
    core,
    data,
    federation,
    good,
    ndim,
    obs,
    olap,
    relational,
    schemalog,
    schemasql,
    transform,
)

__all__ = [
    "algebra",
    "canonical",
    "core",
    "data",
    "federation",
    "good",
    "ndim",
    "obs",
    "olap",
    "relational",
    "schemalog",
    "schemasql",
    "transform",
    "__version__",
]
