"""The n-dimensional generalization of the tabular model."""

from .bridge import cube_to_ndtable, ndtable_to_cube
from .ndtable import NDTable

__all__ = ["NDTable", "cube_to_ndtable", "ndtable_to_cube"]
