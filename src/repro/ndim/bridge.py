"""Bridges between n-dimensional tables and OLAP cubes.

A cube is exactly an n-dimensional table whose attribute hyperplanes hold
the coordinate values and whose name cell holds the measure name — the
"natural fit between (2- or n-dimensional) tables and OLAP matrices" of
Section 4.3, at full generality.
"""

from __future__ import annotations

from itertools import product as iter_product

from ..core import Name, SchemaError, Symbol
from ..obs.runtime import OBS as _OBS, span as _span
from ..obs.trace import NULL_SPAN as _NULL_SPAN
from ..olap import Cube
from .ndtable import NDTable

__all__ = ["cube_to_ndtable", "ndtable_to_cube"]


def cube_to_ndtable(cube: Cube) -> NDTable:
    """Materialize a cube as an n-dimensional table.

    Axis k's attribute hyperplane lists dimension k's coordinates; the
    name cell holds the measure name; data cells hold the measure values
    (⊥ where inapplicable).

    Requires arity ≥ 2: in a one-dimensional table every nonzero position
    is simultaneously attribute hyperplane *and* data, so coordinates and
    values would collide (the same degeneracy that makes a width-0 table
    carry no data in the 2-d model).
    """
    if cube.arity < 2:
        raise SchemaError(
            "one-dimensional cubes have no faithful NDTable embedding "
            "(attribute and data positions coincide)"
        )
    with (_span("bridge.cube_to_ndtable", arity=cube.arity, cells=len(cube.cells)) if _OBS.active else _NULL_SPAN):
        return _cube_to_ndtable(cube)


def _cube_to_ndtable(cube: Cube) -> NDTable:
    shape = tuple(len(cube.coords[d]) + 1 for d in cube.dims)
    cells: dict[tuple[int, ...], Symbol] = {
        (0,) * cube.arity: Name(cube.measure)
    }
    positions: dict[str, dict[Symbol, int]] = {}
    for axis, dim in enumerate(cube.dims):
        positions[dim] = {}
        for index, coordinate in enumerate(cube.coords[dim], start=1):
            positions[dim][coordinate] = index
            hyper = tuple(index if k == axis else 0 for k in range(cube.arity))
            cells[hyper] = coordinate
    for key, value in cube.cells.items():
        cells[tuple(positions[d][c] for d, c in zip(cube.dims, key))] = value
    return NDTable(shape, cells)


def ndtable_to_cube(table: NDTable, dims: tuple[str, ...] | None = None) -> Cube:
    """Read a cube back out of an n-dimensional table.

    ``dims`` names the dimensions (defaults to ``D0 … Dn-1``); the measure
    name comes from the table's name cell (``Value`` when it is not a
    name).  Attribute hyperplane entries must be distinct per axis.
    """
    if table.arity < 2:
        raise SchemaError(
            "one-dimensional tables carry no separable data region "
            "(attribute and data positions coincide)"
        )
    with (_span("bridge.ndtable_to_cube", arity=table.arity) if _OBS.active else _NULL_SPAN):
        return _ndtable_to_cube(table, dims)


def _ndtable_to_cube(table: NDTable, dims: tuple[str, ...] | None = None) -> Cube:
    names = dims if dims is not None else tuple(f"D{k}" for k in range(table.arity))
    if len(names) != table.arity:
        raise SchemaError(f"{len(names)} dimension names for arity {table.arity}")
    coords = {}
    for axis, dim in enumerate(names):
        attributes = table.attributes(axis)
        if len(set(attributes)) != len(attributes):
            raise SchemaError(f"axis {axis} attributes are not distinct")
        coords[dim] = attributes
    cells = {}
    for position in table.data_positions():
        value = table[position]
        if not value.is_null:
            key = tuple(
                coords[dim][index - 1] for dim, index in zip(names, position)
            )
            cells[key] = value
    measure = table.name.text if isinstance(table.name, Name) else "Value"
    return Cube(names, coords, cells, measure)
