"""n-dimensional tables (paper, Sections 4.3 and 5).

"The tabular model and language, studied for two dimensions in this
paper, can be easily generalized to n dimensions."  The generalization:
an n-dimensional table is a total mapping from the Cartesian product of n
initial segments of the naturals into 𝒮.  Position ``(0, …, 0)`` holds
the table name; the *axis-k attribute hyperplane* is the set of positions
that are 0 everywhere except along axis k — the direct analogue of the
attribute row and attribute column — and all-positive positions are data.

For n = 2 an :class:`NDTable` is exactly a :class:`~repro.core.Table`
(round-trip converters below); for n = 3 it is the "three-dimensional
table" the paper identifies a tabular *database* with; and the OLAP cube
of :mod:`repro.olap` is the special case whose attribute hyperplanes hold
coordinate values and whose name cell holds the measure name.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Iterable, Iterator, Mapping, Sequence

from ..core import NULL, SchemaError, Symbol, Table, coerce_symbol

__all__ = ["NDTable"]

Position = tuple[int, ...]


class NDTable:
    """An immutable n-dimensional table of symbols.

    ``shape`` gives the extent per axis (``shape[k] = m_k + 1``, counting
    position 0); entries default to ⊥, so construction takes a sparse
    mapping from positions to symbols.
    """

    __slots__ = ("shape", "_cells")

    def __init__(self, shape: Sequence[int], cells: Mapping[Position, object] = ()):
        shape_tuple = tuple(int(s) for s in shape)
        if len(shape_tuple) < 1 or any(s < 1 for s in shape_tuple):
            raise SchemaError(f"invalid shape {shape_tuple}: every axis needs extent >= 1")
        store: dict[Position, Symbol] = {}
        items = cells.items() if isinstance(cells, Mapping) else cells
        for position, value in items:
            pos = tuple(int(i) for i in position)
            if len(pos) != len(shape_tuple) or any(
                not 0 <= i < s for i, s in zip(pos, shape_tuple)
            ):
                raise SchemaError(f"position {pos} outside shape {shape_tuple}")
            symbol = coerce_symbol(value)
            if not symbol.is_null:
                store[pos] = symbol
        object.__setattr__(self, "shape", shape_tuple)
        object.__setattr__(self, "_cells", store)

    def __setattr__(self, key, value):  # pragma: no cover - immutability guard
        raise AttributeError("NDTable is immutable")

    # ------------------------------------------------------------------
    # Shape and access
    # ------------------------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of axes (the paper's n)."""
        return len(self.shape)

    @property
    def name(self) -> Symbol:
        """The table name at the all-zero position."""
        return self[(0,) * self.arity]

    def __getitem__(self, position: Position) -> Symbol:
        pos = tuple(int(i) for i in position)
        if len(pos) != self.arity or any(
            not 0 <= i < s for i, s in zip(pos, self.shape)
        ):
            raise SchemaError(f"position {pos} outside shape {self.shape}")
        return self._cells.get(pos, NULL)

    def attributes(self, axis: int) -> tuple[Symbol, ...]:
        """The axis-``axis`` attribute hyperplane (indices 1…)."""
        self._check_axis(axis)
        out = []
        for i in range(1, self.shape[axis]):
            position = tuple(i if k == axis else 0 for k in range(self.arity))
            out.append(self[position])
        return tuple(out)

    def data_positions(self) -> Iterator[Position]:
        """All-positive positions, in lexicographic order."""
        ranges = [range(1, s) for s in self.shape]
        yield from iter_product(*ranges)

    def data(self) -> dict[Position, Symbol]:
        """The non-⊥ data entries."""
        return {
            pos: sym for pos, sym in self._cells.items() if all(i > 0 for i in pos)
        }

    def _check_axis(self, axis: int) -> None:
        if not 0 <= axis < self.arity:
            raise SchemaError(f"axis {axis} out of range for arity {self.arity}")

    def symbols(self) -> frozenset[Symbol]:
        return frozenset(self._cells.values()) | {NULL}

    # ------------------------------------------------------------------
    # Operations (the n-dimensional analogues)
    # ------------------------------------------------------------------

    def permute_axes(self, order: Sequence[int]) -> "NDTable":
        """Generalized transposition: reorder the axes."""
        perm = tuple(order)
        if sorted(perm) != list(range(self.arity)):
            raise SchemaError(f"{perm} is not a permutation of the {self.arity} axes")
        shape = tuple(self.shape[k] for k in perm)
        cells = {
            tuple(pos[k] for k in perm): sym for pos, sym in self._cells.items()
        }
        return NDTable(shape, cells)

    def slice_axis(self, axis: int, index: int) -> "NDTable":
        """Fix one axis at a data index; the result drops that axis.

        The sliced-out coordinate's attribute becomes unavailable, exactly
        like slicing a cube; index 0 (the attribute hyperplane) cannot be
        sliced away.
        """
        self._check_axis(axis)
        if not 1 <= index < self.shape[axis]:
            raise SchemaError(f"index {index} not a data index of axis {axis}")
        if self.arity == 1:
            raise SchemaError("cannot slice a one-dimensional table away")
        shape = tuple(s for k, s in enumerate(self.shape) if k != axis)
        cells: dict[Position, Symbol] = {}
        # data positions of the result read the slice; hyperplane positions
        # (any zero coordinate, including the name) read the source's
        # hyperplanes, which live at axis-coordinate 0.
        for reduced in iter_product(*[range(s) for s in shape]):
            coordinate = index if all(i > 0 for i in reduced) else 0
            source = reduced[:axis] + (coordinate,) + reduced[axis:]
            symbol = self[source]
            if not symbol.is_null:
                cells[reduced] = symbol
        return NDTable(shape, cells)

    def subtable(self, selections: Sequence[Sequence[int]]) -> "NDTable":
        """The n-dimensional τ_I^J: one index sequence per axis."""
        if len(selections) != self.arity:
            raise SchemaError(f"need {self.arity} index sequences")
        chosen = [list(sel) for sel in selections]
        for axis, sel in enumerate(chosen):
            for i in sel:
                if not 0 <= i < self.shape[axis]:
                    raise SchemaError(f"index {i} outside axis {axis}")
        shape = tuple(len(sel) for sel in chosen)
        cells = {}
        for new_pos in iter_product(*[range(len(sel)) for sel in chosen]):
            old_pos = tuple(chosen[k][i] for k, i in enumerate(new_pos))
            sym = self[old_pos]
            if not sym.is_null:
                cells[new_pos] = sym
        return NDTable(shape, cells)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    @classmethod
    def from_table(cls, table: Table) -> "NDTable":
        """The 2-dimensional case is the ordinary tabular model."""
        cells = {
            (i, j): table.entry(i, j)
            for i in range(table.nrows)
            for j in range(table.ncols)
        }
        return cls((table.nrows, table.ncols), cells)

    def to_table(self) -> Table:
        """Back to an ordinary table (arity 2 only)."""
        if self.arity != 2:
            raise SchemaError(f"to_table needs arity 2, have {self.arity}")
        rows, cols = self.shape
        return Table(
            [[self[(i, j)] for j in range(cols)] for i in range(rows)]
        )

    def slices_to_tables(self, axis: int) -> tuple[Table, ...]:
        """A 3-d table as a set of 2-d tables — "a tabular database can be
        thought of as a three-dimensional table", read in reverse."""
        if self.arity != 3:
            raise SchemaError(f"slices_to_tables needs arity 3, have {self.arity}")
        self._check_axis(axis)
        return tuple(
            self.slice_axis(axis, index).to_table()
            for index in range(1, self.shape[axis])
        )

    # ------------------------------------------------------------------
    # Equality
    # ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, NDTable)
            and other.shape == self.shape
            and other._cells == self._cells
        )

    def __hash__(self) -> int:
        return hash((self.shape, frozenset(self._cells.items())))

    def __repr__(self) -> str:
        shape = "x".join(str(s) for s in self.shape)
        return f"NDTable({shape}; {len(self._cells)} entries)"
