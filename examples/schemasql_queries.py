#!/usr/bin/env python3
"""SchemaSQL_d — SQL with schema variables, on the tabular model.

SchemaSQL (the paper's follow-on work [13]) extends SQL so that FROM items
range over relation names and attribute names, making schema
restructurings one-liners.  This example runs the classic queries over a
small federation, natively and through the tabular algebra compilation.

Run:  python examples/schemasql_queries.py
"""

from repro.core import database, render_table
from repro.relational import Relation, RelationalDatabase, relation_to_table, table_to_relation
from repro.schemalog import SchemaLogDatabase
from repro.schemasql import compile_to_ta, evaluate_query, parse_schemasql

# ---------------------------------------------------------------------------
# 1. Per-region relations: the region lives in the SCHEMA, not the data.
# ---------------------------------------------------------------------------
offices = RelationalDatabase(
    [
        Relation("east", ["part", "sold"], [("nuts", 50), ("bolts", 70)]),
        Relation("west", ["part", "sold"], [("nuts", 60), ("screws", 50)]),
        Relation("north", ["part", "sold"], [("screws", 60), ("bolts", 40)]),
    ]
)
facts = SchemaLogDatabase.from_relational(offices)
print(f"Schema-heterogeneous input: relations "
      f"{[str(r) for r in facts.relations()]}")
print()

QUERIES = {
    "restructure (relation names become data)": """
        SELECT R AS region, T.part AS part, T.sold AS sold
        INTO   sales
        FROM   -> R, R T
    """,
    "schema introspection (attribute names as rows)": """
        SELECT R AS rel, A AS attr
        INTO   catalogue
        FROM   -> R, R -> A
    """,
    "cross-relation join (parts sold in east AND west)": """
        SELECT T.part AS part, T.sold AS east_sold, U.sold AS west_sold
        INTO   both_coasts
        FROM   east T, west U
        WHERE  T.part = U.part
    """,
    "filtered flattening": """
        SELECT R AS region, T.part AS part
        INTO   no_nuts
        FROM   -> R, R T
        WHERE  T.part <> 'nuts'
    """,
}

for label, text in QUERIES.items():
    query = parse_schemasql(text)
    native = evaluate_query(query, facts)
    print(f"--- {label} ---")
    print(render_table(relation_to_table(native)))

    # the same query through the tabular algebra (Theorems 4.1/4.5 route)
    ta_program = compile_to_ta(query)
    out = ta_program.run(database(facts.facts_table()))
    simulated = table_to_relation(
        out.tables_named(query.into)[0], schema=native.schema
    )
    agrees = simulated.tuples == native.tuples
    print(f"tabular algebra compilation agrees: {agrees}")
    print()
