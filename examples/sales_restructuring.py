#!/usr/bin/env python3
"""The full Figure 1 tour — every representation, restructured to every other.

The paper: "it is possible to restructure the data from any of the
representations SalesInfo2–SalesInfo4 in Figure 1 to any other."  This
example materializes all four SalesInfo databases, then walks the
restructurings with *textual tabular algebra programs* run through the
interpreter.

Run:  python examples/sales_restructuring.py
"""

from repro.algebra.programs import parse_program
from repro.core import render_database, render_table
from repro.data import (
    figure4_top,
    sales_info1,
    sales_info2,
    sales_info3,
    sales_info4,
)

print("=" * 72)
print("Figure 1: four tabular databases for the same sales data")
print("=" * 72)
for label, db in [
    ("SalesInfo1 (relational)", sales_info1()),
    ("SalesInfo2 (one Sold column per region)", sales_info2()),
    ("SalesInfo3 (row and column names are data!)", sales_info3()),
    ("SalesInfo4 (one Sales table per region)", sales_info4()),
]:
    print()
    print(render_database(db, title=label))

# ---------------------------------------------------------------------------
# SalesInfo1 -> SalesInfo2: the Section 3.2/3.4 pipeline, exactly as the
# paper states it: GROUP, then CLEAN-UP by Part on ⊥, then PURGE on Sold
# by Region.
# ---------------------------------------------------------------------------
print()
print("=" * 72)
print("SalesInfo1 -> SalesInfo2  (GROUP; CLEAN-UP by Part on ⊥; PURGE)")
print("=" * 72)
program = parse_program(
    """
    Grouped <- GROUP by {Region} on {Sold} (Sales)
    Cleaned <- CLEANUP by {Part} on {null} (Grouped)
    Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
    """
)
result = program.run(sales_info1())
pivot = result.tables_named("Pivot")[0]
print(render_table(pivot))
expected = sales_info2().tables[0].with_name(pivot.name)
print("matches the printed SalesInfo2:", pivot.equivalent(expected))

# ---------------------------------------------------------------------------
# SalesInfo2 -> SalesInfo1: MERGE, then select out the ⊥-Sold tuples.
# ---------------------------------------------------------------------------
print()
print("=" * 72)
print("SalesInfo2 -> SalesInfo1  (MERGE; drop all-null Sold rows)")
print("=" * 72)
program = parse_program(
    """
    Merged   <- MERGE on {Sold} by {Region} (Sales)
    Relation <- DROPNULLROWS attr Sold (Merged)
    """
)
result = program.run(sales_info2())
relation = result.tables_named("Relation")[0]
print(render_table(relation))
print(
    "matches the relational Sales:",
    relation.equivalent(figure4_top().with_name(relation.name)),
)

# ---------------------------------------------------------------------------
# SalesInfo1 -> SalesInfo4 and back: SPLIT / COLLAPSE.
# ---------------------------------------------------------------------------
print()
print("=" * 72)
print("SalesInfo1 -> SalesInfo4  (SPLIT on Region)")
print("=" * 72)
program = parse_program("PerRegion <- SPLIT on {Region} (Sales)")
result = program.run(sales_info1())
per_region = result.tables_named("PerRegion")
print(f"SPLIT produced {len(per_region)} tables (one per region):")
for table in per_region:
    print()
    print(render_table(table))
matches = all(
    any(t.equivalent(x.with_name(t.name)) for x in sales_info4().tables)
    for t in per_region
)
print("matches the printed SalesInfo4:", matches)

print()
print("=" * 72)
print("SalesInfo4 -> SalesInfo1  (COLLAPSE by Region + redundancy removal)")
print("=" * 72)
program = parse_program("Relation <- COLLAPSECOMPACT by {Region} (Sales)")
result = program.run(sales_info4())
rebuilt = result.tables_named("Relation")[0]
print(render_table(rebuilt))
print(
    "matches the relational Sales:",
    rebuilt.equivalent(figure4_top().with_name(rebuilt.name)),
)

# ---------------------------------------------------------------------------
# SalesInfo2 -> SalesInfo3: transpose the pivot and switch the attributes;
# here via the cube bridge, which routes through the algebra.
# ---------------------------------------------------------------------------
print()
print("=" * 72)
print("SalesInfo1 -> SalesInfo3  (pivot with data as attributes)")
print("=" * 72)
from repro.data import BASE_FACTS
from repro.olap import Cube, cube_to_matrix_table

cube = Cube.from_facts(BASE_FACTS, ["Part", "Region"], measure="Sold")
matrix = cube_to_matrix_table(cube, "Region", "Part", "Sales")
print(render_table(matrix))
print(
    "matches the printed SalesInfo3:",
    matrix.equivalent(sales_info3().tables[0]),
)
