#!/usr/bin/env python3
"""GOOD on tables — object-graph restructuring through the tabular model.

Builds a small object base (people, parentage, cities), runs GOOD's
pattern-based operations natively, and replays the additive/deletive
program through its tabular algebra compilation (paper contribution 4).

Run:  python examples/good_objects.py
"""

from repro.core import render_database
from repro.good import (
    Abstraction,
    EdgeAddition,
    GoodEdge,
    GoodNode,
    GoodProgram,
    NodeAddition,
    ObjectGraph,
    Pattern,
    PatternEdge,
    PatternNode,
    compile_to_ta,
    decode_graph,
    encode_graph,
    graphs_isomorphic,
)

# ---------------------------------------------------------------------------
# 1. The object base.
# ---------------------------------------------------------------------------
graph = ObjectGraph(
    [
        GoodNode.make("p1", "Person", "ann"),
        GoodNode.make("p2", "Person", "bob"),
        GoodNode.make("p3", "Person", "cal"),
        GoodNode.make("p4", "Person", "dee"),
        GoodNode.make("c1", "City", "montreal"),
        GoodNode.make("c2", "City", "diepenbeek"),
    ],
    [
        GoodEdge.make("p1", "parent", "p2"),
        GoodEdge.make("p2", "parent", "p3"),
        GoodEdge.make("p1", "parent", "p4"),
        GoodEdge.make("p1", "lives", "c1"),
        GoodEdge.make("p2", "lives", "c1"),
        GoodEdge.make("p3", "lives", "c2"),
        GoodEdge.make("p4", "lives", "c2"),
    ],
)
print(f"Object base: {graph}")
print()

# ---------------------------------------------------------------------------
# 2. A GOOD program: derive grandparents, then materialize Household
#    objects (one per (person, city) pair).
# ---------------------------------------------------------------------------
grandparent = Pattern(
    [
        PatternNode.make("X", "Person"),
        PatternNode.make("Y", "Person"),
        PatternNode.make("Z", "Person"),
    ],
    [PatternEdge.make("X", "parent", "Y"), PatternEdge.make("Y", "parent", "Z")],
)
residence = Pattern(
    [PatternNode.make("P", "Person"), PatternNode.make("C", "City")],
    [PatternEdge.make("P", "lives", "C")],
)
program = GoodProgram(
    (
        EdgeAddition(grandparent, "X", "grandparent", "Z"),
        NodeAddition(residence, "Household", (("head", "P"), ("in", "C"))),
    )
)
native = program.run(graph)
print(f"After the program: {native}")
print(f"  grandparent edges: {[str(e) for e in native.edges_labelled('grandparent')]}")
print(f"  Household objects: {len(native.nodes_labelled('Household'))}")
print()

# ---------------------------------------------------------------------------
# 3. The same program through the tabular algebra.
# ---------------------------------------------------------------------------
encoded = encode_graph(graph)
print("Tabular encoding of the object base:")
print(render_database(encoded))
print()

ta_program = compile_to_ta(program)
print(f"Compiled tabular algebra program: {len(ta_program.statements)} statements")
simulated = decode_graph(ta_program.run(encoded))
print(
    "Simulation agrees up to the choice of new object ids:",
    graphs_isomorphic(simulated, native, fixed=graph.symbols()),
)
print()

# ---------------------------------------------------------------------------
# 4. Abstraction (native): group people by where they live.
# ---------------------------------------------------------------------------
cohorts = GoodProgram(
    (
        Abstraction(
            Pattern([PatternNode.make("P", "Person")]),
            "P",
            "lives",
            "Cohort",
            "member",
        ),
    )
)
abstracted = cohorts.run(graph)
print("Abstraction by residence:")
for cohort in sorted(abstracted.nodes_labelled("Cohort"), key=lambda n: n.id.sort_key()):
    members = sorted(
        str(abstracted.node(m).value) for m in abstracted.neighbors(cohort.id, "member")
    )
    print(f"  {cohort.id!s}: members {members}")
