#!/usr/bin/env python3
"""SchemaLog_d federation — Theorem 4.5 in action.

SchemaLog was proposed for interoperability in federations of databases
whose *schemas* disagree: here three regional offices store the same sales
data with the region encoded in the relation name.  A four-line SchemaLog
program restructures them into one uniform relation — and the same
program, compiled into tabular algebra, computes the same answer.

Run:  python examples/schemalog_federation.py
"""

from repro.core import database, render_table
from repro.relational import Relation, RelationalDatabase, table_to_relation
from repro.schemalog import (
    DERIVED,
    SchemaLogDatabase,
    compile_to_ta,
    evaluate,
    parse_schemalog,
)

# ---------------------------------------------------------------------------
# 1. Three offices, three schemas: region lives in the relation name.
# ---------------------------------------------------------------------------
offices = RelationalDatabase(
    [
        Relation("east", ["part", "sold"], [("nuts", 50), ("bolts", 70)]),
        Relation("west", ["part", "sold"], [("nuts", 60), ("screws", 50)]),
        Relation("north", ["part", "sold"], [("screws", 60), ("bolts", 40)]),
    ]
)
facts = SchemaLogDatabase.from_relational(offices)
print(f"Federation: {facts} across relations "
      f"{[str(r) for r in facts.relations()]}")
print()

# ---------------------------------------------------------------------------
# 2. The restructuring program: schema elements become data.
# ---------------------------------------------------------------------------
PROGRAM = """
% unify the offices: the relation name becomes a region value
sales[T: part -> P]         :- east[T: part -> P].
sales[T: sold -> S]         :- east[T: sold -> S].
sales[T: region -> 'east']  :- east[T: part -> P].
sales[T: part -> P]         :- west[T: part -> P].
sales[T: sold -> S]         :- west[T: sold -> S].
sales[T: region -> 'west']  :- west[T: part -> P].
sales[T: part -> P]         :- north[T: part -> P].
sales[T: sold -> S]         :- north[T: sold -> S].
sales[T: region -> 'north'] :- north[T: part -> P].
"""
program = parse_schemalog(PROGRAM)
print(f"SchemaLog_d program with {len(program)} rules")

# ---------------------------------------------------------------------------
# 3. Native bottom-up evaluation.
# ---------------------------------------------------------------------------
fixpoint = evaluate(program, facts)
sales_table = fixpoint.to_tabular().table("sales")
print()
print("Native fixpoint — the unified sales relation:")
print(render_table(sales_table))

# ---------------------------------------------------------------------------
# 4. The same program through the tabular algebra (Theorem 4.5).
# ---------------------------------------------------------------------------
ta_program = compile_to_ta(program)
print()
print(f"Compiled tabular algebra program: {len(ta_program.statements)} statements")
out = ta_program.run(database(facts.facts_table()))
derived = table_to_relation(out.tables_named(DERIVED)[0]).with_name("Facts")
simulated = SchemaLogDatabase.from_facts_relation(derived)
print("Tabular simulation agrees with the native fixpoint:",
      simulated == fixpoint)

# ---------------------------------------------------------------------------
# 5. Bonus: the syntactically higher-order feature — a variable ranging
#    over *relation names* copies the whole federation in one rule.
# ---------------------------------------------------------------------------
audit = parse_schemalog("audit[T: A -> V] :- R[T: A -> V].")
audited = evaluate(audit, facts)
copied = [f for f in audited if str(f[0]) == "audit"]
print()
print(f"Higher-order audit rule copied {len(copied)} facts "
      f"(one per fact in the federation: {len(facts)})")
