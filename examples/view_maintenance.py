#!/usr/bin/env python3
"""View maintenance over restructuring views.

The introduction lists view maintenance among the applications of
restructuring.  This example defines a pivot *view* over the sales
relation, applies base-table updates, and maintains the view two ways —
full recomputation and a differential check using the algebra's own
difference operation — demonstrating that views across *representations*
(a pivot is a different representation, not just a projection) are still
algebra objects.

Run:  python examples/view_maintenance.py
"""

from repro.algebra import classical_union, difference, group_compact, merge_compact
from repro.core import make_table, render_table
from repro.data import BASE_FACTS

# ---------------------------------------------------------------------------
# 1. Base table and the pivot view over it.
# ---------------------------------------------------------------------------
base = make_table("Sales", ["Part", "Region", "Sold"], BASE_FACTS)


def pivot_view(table):
    return group_compact(table, by="Region", on="Sold", name="PivotView")


view = pivot_view(base)
print("The view (pivot per region):")
print(render_table(view))
print()

# ---------------------------------------------------------------------------
# 2. An update batch arrives: new sales facts.
# ---------------------------------------------------------------------------
delta = make_table(
    "Sales",
    ["Part", "Region", "Sold"],
    [("washers", "east", 30), ("nuts", "north", 20)],
)
print("Update batch:")
print(render_table(delta))
print()

updated_base = classical_union(base, delta, name="Sales")
print(f"Base table: {base.height} rows -> {updated_base.height} rows")
print()

# ---------------------------------------------------------------------------
# 3. Maintain the view by recomputation, then verify it differentially:
#    unpivot the new view and diff against the updated base — the
#    restructuring view is consistent iff both differences are empty.
# ---------------------------------------------------------------------------
new_view = pivot_view(updated_base)
print("Maintained view:")
print(render_table(new_view))
print()

unpivoted = merge_compact(new_view, on="Sold", by="Region", name="Sales")
missing = difference(updated_base, unpivoted)
spurious = difference(unpivoted, updated_base)
print(f"consistency check: missing={missing.height} spurious={spurious.height}")
print("view is consistent with the base:",
      missing.height == 0 and spurious.height == 0)
print()

# ---------------------------------------------------------------------------
# 4. What changed in the view?  The symmetric difference of old and new
#    views, computed with the tabular difference (which never requires
#    union compatibility — the view grew a column for the new region!).
# ---------------------------------------------------------------------------
grew = new_view.width - view.width
print(f"the view grew by {grew} column(s) — 'washers' introduced no new "
      f"region, but the pivot gained a row; widths: {view.width} -> {new_view.width}")
added_rows = difference(new_view, view)
print("rows added or changed in the view:", added_rows.height)
