#!/usr/bin/env python3
"""An OLAP session on the tabular model — Section 4.3 made executable.

Loads a larger synthetic sales workload into a three-dimensional cube
(part × region × quarter), then runs the classic OLAP repertoire: slice,
dice, roll-up, drill-down, the cube operator, classification into zones,
and spreadsheet-style analytics — finishing with the Figure 1 summary
tables regenerated from the data.

Run:  python examples/olap_report.py
"""

import random

from repro.core import render_database, render_table
from repro.data import BASE_FACTS
from repro.olap import (
    Cube,
    agg_avg,
    agg_max,
    append_aggregate_row,
    classify_dimension,
    cube_operator,
    cube_to_grouped_table,
    cube_to_matrix_table,
    drilldown,
    grouped_with_totals,
    mapping_classifier,
    row_arithmetic,
    summary_relations,
)

# ---------------------------------------------------------------------------
# 1. A three-dimensional workload: part x region x quarter.
# ---------------------------------------------------------------------------
rng = random.Random(1996)
parts = ["nuts", "screws", "bolts", "nails", "washers"]
regions = ["east", "west", "north", "south"]
quarters = ["Q1", "Q2", "Q3", "Q4"]
facts = [
    (p, r, q, rng.randrange(10, 100))
    for p in parts
    for r in regions
    for q in quarters
    if rng.random() < 0.8
]
cube = Cube.from_facts(facts, ["Part", "Region", "Quarter"], measure="Sold")
print(f"Workload: {cube} (density {cube.density():.2f})")
print()

# ---------------------------------------------------------------------------
# 2. Slice and dice.
# ---------------------------------------------------------------------------
q1 = cube.slice("Quarter", "Q1")
print(f"Slice Quarter=Q1: {q1}")
coastal = cube.dice({"Region": ["east", "west"]})
print(f"Dice Region in {{east, west}}: {coastal}")
print()

# ---------------------------------------------------------------------------
# 3. Roll-up and drill-down.
# ---------------------------------------------------------------------------
per_part_region = cube.rollup("Quarter")
print("Roll up quarters -> the 2-d part x region cube:")
print(render_table(cube_to_matrix_table(per_part_region, "Part", "Region", "Sales")))
print()
checked = drilldown(per_part_region, cube, "Quarter")
print("Drill-down validated: the quarterly cube refines the annual one.")
print()

# ---------------------------------------------------------------------------
# 4. The cube operator: every subtotal at once.
# ---------------------------------------------------------------------------
extended = cube_operator(per_part_region)
print(
    f"Cube operator: {len(per_part_region.cells)} base cells -> "
    f"{len(extended.cells)} cells including all subtotals"
)
print()

# ---------------------------------------------------------------------------
# 5. Classification: regions -> zones, then re-aggregate.
# ---------------------------------------------------------------------------
zones = mapping_classifier(
    {"east": "coastal", "west": "coastal", "north": "inland", "south": "inland"}
)
zoned = classify_dimension(per_part_region, "Region", zones, "Zone")
print("Classified into zones:")
print(render_table(cube_to_matrix_table(zoned, "Part", "Zone", "Sales")))
print()

# ---------------------------------------------------------------------------
# 6. Spreadsheet analytics: grouped table + derived totals row, and a
#    derived average column via row arithmetic.
# ---------------------------------------------------------------------------
grouped = cube_to_grouped_table(per_part_region, "Part", "Region", "Sales")
with_totals = append_aggregate_row(grouped, "sum", attrs=["Sold"], over_rows=[None])
print("Pivot with a spreadsheet-style Total row:")
print(render_table(with_totals))
print()

# ---------------------------------------------------------------------------
# 7. The paper's own example: the Figure 1 summaries, regenerated.
# ---------------------------------------------------------------------------
paper_cube = Cube.from_facts(BASE_FACTS, ["Part", "Region"], measure="Sold")
print("Figure 1 summary relations (SalesInfo1, regular outline):")
print(render_database(summary_relations(paper_cube)))
print()
print("SalesInfo2 with its absorbed summaries:")
print(render_table(grouped_with_totals(paper_cube, "Part", "Region", "Sales")))
