#!/usr/bin/env python3
"""Quickstart — the tabular model and algebra in five minutes.

Builds the paper's running sales example, shows the four table regions,
runs the headline restructuring (GROUP by Region on Sold — the pivot of
Figure 4), and round-trips back with MERGE.

Run:  python examples/quickstart.py
"""

from repro.algebra import group, group_compact, merge_compact
from repro.core import make_table, render_table

# ---------------------------------------------------------------------------
# 1. A table is a matrix of symbols with four regions (Figure 2):
#    the table name, column attributes, row attributes, and data entries.
# ---------------------------------------------------------------------------
sales = make_table(
    "Sales",
    ["Part", "Region", "Sold"],
    [
        ("nuts", "east", 50),
        ("nuts", "west", 60),
        ("nuts", "south", 40),
        ("screws", "west", 50),
        ("screws", "north", 60),
        ("screws", "south", 50),
        ("bolts", "east", 70),
        ("bolts", "north", 40),
    ],
)

print("The relation-style Sales table (SalesInfo1 / Figure 4 top):")
print(render_table(sales))
print()
print(f"name = {sales.name}, width = {sales.width}, height = {sales.height}")
print(f"column attributes: {[str(a) for a in sales.column_attributes]}")
print()

# ---------------------------------------------------------------------------
# 2. GROUP by Region on Sold — the paper's Figure 4 restructuring.
#    The raw result is deliberately uneconomical: one Sold column per row.
# ---------------------------------------------------------------------------
grouped = group(sales, by="Region", on="Sold")
print(f"GROUP by Region on Sold: {grouped.width} columns, {grouped.height} rows")
print("(the printed Figure 4 bottom — uneconomical by design)")
print()

# ---------------------------------------------------------------------------
# 3. The compact pivot: GROUP + CLEAN-UP + PURGE = the Sales table of
#    SalesInfo2 — one Sold column per region.
# ---------------------------------------------------------------------------
pivot = group_compact(sales, by="Region", on="Sold")
print("The compact pivot (SalesInfo2):")
print(render_table(pivot))
print()

# ---------------------------------------------------------------------------
# 4. And back: MERGE on Sold by Region recovers the relation.
# ---------------------------------------------------------------------------
recovered = merge_compact(pivot, on="Sold", by="Region")
print("MERGE recovers the relation (up to row order):",
      recovered.equivalent(sales))
