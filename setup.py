"""Legacy setup shim.

The environment has no ``wheel`` package and no network, so PEP 517
editable installs (which require building a wheel) fail; this shim lets
``pip install -e . --no-use-pep517`` fall back to ``setup.py develop``.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
