"""Experiment ``governor`` — hardened-runtime overhead on the algebra engine.

Three measurements:

* **disabled** — with no governed scope active, every runtime chokepoint
  is a single ``GOV.active`` check and the engine runs raw (the
  zero-allocation discipline is pinned separately by
  ``tests/runtime/test_disabled_runtime.py``);
* **enabled** — running under a governor with generous limits stays
  within a small constant factor of the raw run: the per-op cost is a
  handful of integer comparisons and two counter increments;
* **hardened driver** — :func:`repro.runtime.checkpoint.run_hardened`
  without a checkpoint file adds only the statement-stepping loop.

The governed run's result is asserted equal to the raw result — limits
that never trip provably do not change semantics.
"""

import time

from repro.algebra.programs import parse_program
from repro.data import sales_info1
from repro.runtime import Limits, governed, run_hardened
from repro.runtime.workloads import transitive_closure_workload

from conftest import report

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``governor/<test name>`` (see conftest).
BENCH_LABEL = "governor"

PIVOT = """
    Grouped <- GROUP by {Region} on {Sold} (Sales)
    Cleaned <- CLEANUP by {Part} on {null} (Grouped)
    Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
"""

#: Limits high enough that nothing ever trips — pure bookkeeping cost.
GENEROUS = Limits(
    deadline_s=3600.0,
    max_rows_per_op=10**9,
    max_cells_per_op=10**9,
    max_total_rows=10**9,
    max_while_iterations=10**6,
)


def run_pivot(db=None):
    return parse_program(PIVOT).run(db if db is not None else sales_info1())


def run_pivot_governed():
    with governed(GENEROUS):
        return run_pivot()


class TestGovernorOverhead:
    def test_disabled_governor_runs_raw(self, benchmark):
        result = benchmark(run_pivot)
        assert "Pivot" in {str(n) for n in result.table_names()}

    def test_enabled_governor_runs_checked(self, benchmark):
        result = benchmark(run_pivot_governed)
        assert result == run_pivot()  # untripped limits never change results

    def test_hardened_driver_fixpoint(self, benchmark):
        program, db = transitive_closure_workload(5)

        def hardened():
            return run_hardened(program, db, limits=GENEROUS)

        result = benchmark(hardened)
        assert result == program.run(db)

    def test_report_overhead_ratio(self):
        """One-shot ratio measurement, recorded to BENCH_obs.json.

        The acceptance bar for the disabled path (<2% overhead) is
        checked against the *chokepoint guard cost*: the pivot program
        ran before this runtime existed with the same three dispatches,
        so raw-vs-governed is the honest comparison available in-tree;
        the disabled cost itself is unmeasurable noise at this scale and
        is pinned structurally by the zero-allocation test instead.
        """

        def clock(fn, repeats=30):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        raw = clock(run_pivot)
        under_governor = clock(run_pivot_governed)
        report(
            "governor-overhead",
            raw_ms=round(raw * 1e3, 3),
            governed_ms=round(under_governor * 1e3, 3),
            ratio=round(under_governor / raw, 2),
        )
        # generous bound: the governor adds integer comparisons per op,
        # not a new algorithm (same spirit as the lineage bound)
        assert under_governor < raw * 10 + 0.05
