"""Experiment ``thm41`` — Theorem 4.1: FO + while + new simulated in TA.

For transitive-closure (the canonical while-program) and an id-creating
program over random graphs of growing size, the natively evaluated result
and the tabular algebra simulation must agree; the benchmark times both
sides, which is the honest cost of the simulation.
"""

import random

import pytest

from repro.relational import (
    Assign,
    AssignNew,
    Difference,
    FWProgram,
    Join,
    Rel,
    Relation,
    RelationalDatabase,
    Union,
    WhileNotEmpty,
    compile_program,
    relational_to_tabular,
    table_to_relation,
)

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``thm41/<test name>`` (see conftest).
BENCH_LABEL = "thm41"

SCHEMAS = {"E": ("A", "B")}


def tc_program() -> FWProgram:
    step = (
        Join(
            Rel("TC").rename("A", "X").rename("B", "Y"),
            Rel("E").rename("A", "Y").rename("B", "Z"),
        )
        .project("X", "Z")
        .rename("X", "A")
        .rename("Z", "B")
    )
    return FWProgram(
        [
            Assign("TC", Rel("E")),
            Assign("Delta", Rel("E")),
            WhileNotEmpty(
                "Delta",
                [
                    Assign("Step", step),
                    Assign("Delta", Difference(Rel("Step"), Rel("TC"))),
                    Assign("TC", Union(Rel("TC"), Rel("Delta"))),
                ],
            ),
        ]
    )


def random_graph(n: int, seed: int) -> RelationalDatabase:
    rng = random.Random(seed)
    edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(2 * n)}
    return RelationalDatabase([Relation("E", ["A", "B"], edges)])


@pytest.fixture(params=(4, 8, 12), ids=lambda n: f"nodes{n}")
def graph(request):
    return random_graph(request.param, seed=request.param)


class TestSimulationAgreement:
    def test_transitive_closure_native(self, benchmark, graph):
        out = benchmark(lambda: tc_program().run(graph))
        assert len(out.relation("TC")) >= len(graph.relation("E"))

    def test_transitive_closure_simulated(self, benchmark, graph):
        native = tc_program().run(graph).relation("TC")
        ta = compile_program(tc_program(), SCHEMAS)
        tabular = relational_to_tabular(graph)

        def simulate():
            out = ta.run(tabular)
            return table_to_relation(out.tables_named("TC")[0])

        simulated = benchmark(simulate)
        assert simulated.tuples == native.tuples

    def test_new_construct_simulated(self, benchmark, graph):
        program = FWProgram([AssignNew("Tagged", Rel("E"), "Id")])
        native = program.run(graph).relation("Tagged")
        ta = compile_program(program, SCHEMAS)
        tabular = relational_to_tabular(graph)

        def simulate():
            out = ta.run(tabular)
            return table_to_relation(out.tables_named("Tagged")[0])

        simulated = benchmark(simulate)
        assert len(simulated) == len(native)
        assert simulated.schema == native.schema
