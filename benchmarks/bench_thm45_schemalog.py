"""Experiment ``thm45`` — Theorem 4.5: SchemaLog_d embeds in TA.

The federation-restructuring program over per-region relations must
evaluate to the same fact set natively (semi-naive bottom-up) and through
its tabular algebra compilation; the sweep grows the number of facts.
"""

import pytest

from repro.core import database
from repro.data import synthetic_sales_facts
from repro.relational import Relation, RelationalDatabase, table_to_relation
from repro.schemalog import (
    DERIVED,
    SchemaLogDatabase,
    compile_to_ta,
    evaluate,
    parse_schemalog,
)

PROGRAM = parse_schemalog(
    """
    sales[T: part -> P]        :- east[T: part -> P].
    sales[T: sold -> S]        :- east[T: sold -> S].
    sales[T: region -> 'east'] :- east[T: part -> P].
    sales[T: part -> P]        :- west[T: part -> P].
    sales[T: sold -> S]        :- west[T: sold -> S].
    sales[T: region -> 'west'] :- west[T: part -> P].
    """
)

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``thm45/<test name>`` (see conftest).
BENCH_LABEL = "thm45"

COPY_ALL = parse_schemalog("all[T: A -> V] :- R[T: A -> V].")


def federation(n_parts: int, seed: int) -> SchemaLogDatabase:
    east = [(p, s) for (p, _r, s) in synthetic_sales_facts(n_parts, 1, 1.0, seed)]
    west = [(p, s) for (p, _r, s) in synthetic_sales_facts(n_parts, 1, 1.0, seed + 1)]
    return SchemaLogDatabase.from_relational(
        RelationalDatabase(
            [
                Relation("east", ["part", "sold"], east),
                Relation("west", ["part", "sold"], west),
            ]
        )
    )


@pytest.fixture(params=(4, 8, 16), ids=lambda n: f"parts{n}")
def facts(request):
    return federation(request.param, seed=request.param)


def simulate(program, db: SchemaLogDatabase) -> SchemaLogDatabase:
    out = compile_to_ta(program).run(database(db.facts_table()))
    derived = table_to_relation(out.tables_named(DERIVED)[0]).with_name("Facts")
    return SchemaLogDatabase.from_facts_relation(derived)


class TestAgreement:
    def test_native_evaluation(self, benchmark, facts):
        out = benchmark(evaluate, PROGRAM, facts)
        assert len(out) > len(facts)

    def test_tabular_simulation(self, benchmark, facts):
        native = evaluate(PROGRAM, facts)
        simulated = benchmark(simulate, PROGRAM, facts)
        assert simulated == native

    def test_higher_order_rule(self, benchmark, facts):
        native = evaluate(COPY_ALL, facts)
        simulated = benchmark(simulate, COPY_ALL, facts)
        assert simulated == native
