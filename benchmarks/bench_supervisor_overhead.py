"""Experiment ``supervisor`` — fault-free supervision overhead.

The supervisor's job is to absorb faults; its admission, attempt loop,
and breaker bookkeeping must cost ~nothing when no fault ever fires.
Two measurements:

* **raw** — :func:`repro.runtime.checkpoint.run_hardened` driving the
  workload directly under generous limits;
* **supervised** — the same workload through
  :meth:`repro.runtime.supervisor.Supervisor.submit` with a default
  retry policy and a circuit breaker armed: one admission check, one
  attempt, one breaker success record.

The supervised result is asserted equal to the raw result — a policy
that never trips provably does not change semantics — and the one-shot
ratio is recorded to ``BENCH_obs.json`` and held under the same
generous bound as the governor bench (the acceptance gate proper is the
1.5x CI comparison over the recorded trajectory).
"""

import time

from repro.runtime import Limits, run_hardened
from repro.runtime.policy import BreakerPolicy, RetryPolicy
from repro.runtime.supervisor import Supervisor
from repro.runtime.workloads import transitive_closure_workload

from conftest import report

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``supervisor/<test name>`` (see conftest).
BENCH_LABEL = "supervisor"

#: Limits high enough that nothing ever trips — pure bookkeeping cost.
GENEROUS = Limits(
    deadline_s=3600.0,
    max_rows_per_op=10**9,
    max_cells_per_op=10**9,
    max_total_rows=10**9,
    max_while_iterations=10**6,
)

NODES = 8


def run_raw():
    program, db = transitive_closure_workload(NODES)
    return run_hardened(program, db, limits=GENEROUS)


def run_supervised():
    program, db = transitive_closure_workload(NODES)
    supervisor = Supervisor(
        policy=RetryPolicy(max_attempts=3),
        breaker_policy=BreakerPolicy(failure_threshold=3, cooldown_s=3600.0),
    )
    run = supervisor.submit(
        program, db, workload=f"tc:{NODES}", limits=GENEROUS
    )
    assert run.ok and len(run.attempts) == 1
    return run.result


class TestSupervisorOverhead:
    def test_raw_hardened_run(self, benchmark):
        program, db = transitive_closure_workload(NODES)
        result = benchmark(run_raw)
        assert result == program.run(db)

    def test_supervised_run_single_attempt(self, benchmark):
        result = benchmark(run_supervised)
        assert result == run_raw()  # an untripped policy never changes results

    def test_report_overhead_ratio(self):
        """One-shot ratio measurement, recorded to BENCH_obs.json.

        The fault-free supervised path adds one breaker admission, one
        deadline check, one limits merge, and one success record on top
        of ``run_hardened`` — constant work independent of the workload
        size, so the ratio shrinks as workloads grow.  The bound here is
        deliberately generous; the 1.5x gate is enforced by the bench
        trajectory comparison in CI.
        """

        def clock(fn, repeats=30):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        raw = clock(run_raw)
        supervised = clock(run_supervised)
        report(
            "supervisor-overhead",
            raw_ms=round(raw * 1e3, 3),
            supervised_ms=round(supervised * 1e3, 3),
            ratio=round(supervised / raw, 2),
        )
        # generous bound: supervision adds constant per-run bookkeeping,
        # not per-op or per-row work (same spirit as the governor bound)
        assert supervised < raw * 10 + 0.05
