"""Experiment ``fig1`` — Figure 1: the four SalesInfo databases.

Checks, against the printed figure: all four representations (bold and
summary-extended) are constructed exactly; every representation
restructures into every other (the paper's closing claim of Section 1);
then times each restructuring direction.
"""

import pytest

from repro.algebra import (
    collapse_compact,
    group_compact,
    merge_compact,
    split,
)
from repro.data import (
    BASE_FACTS,
    figure4_top,
    sales_info1,
    sales_info2,
    sales_info3,
    sales_info4,
)
from repro.olap import Cube, cube_to_matrix_table, matrix_table_to_cube, cube_to_relation_table

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``fig1/<test name>`` (see conftest).
BENCH_LABEL = "fig1"


@pytest.fixture(scope="module")
def relation():
    return figure4_top()


class TestFigure1Exactness:
    """The printed databases, bit for bit."""

    def test_bold_parts_constructed(self):
        assert sales_info1().table("Sales").height == len(BASE_FACTS)
        assert sales_info2().tables[0].width == 5
        assert sales_info3().tables[0].width == 3
        assert len(sales_info4().tables_named("Sales")) == 4

    def test_summary_parts_constructed(self):
        assert len(sales_info1(with_summary=True)) == 4
        assert sales_info2(with_summary=True).tables[0].width == 6
        assert len(sales_info4(with_summary=True).tables_named("Sales")) == 5


class TestRestructurings:
    """Any representation to any other (via the relational hub)."""

    def test_info2_to_relation(self, benchmark, relation):
        pivot = sales_info2().tables[0]
        result = benchmark(merge_compact, pivot, "Sold", "Region")
        assert result.equivalent(relation)

    def test_relation_to_info2(self, benchmark, relation):
        pivot = sales_info2().tables[0]
        result = benchmark(group_compact, relation, "Region", "Sold")
        assert result.equivalent(pivot)

    def test_relation_to_info4(self, benchmark, relation):
        expected = sales_info4().tables
        result = benchmark(split, relation, "Region")
        assert all(any(p.equivalent(t) for t in expected) for p in result)

    def test_info4_to_relation(self, benchmark, relation):
        tables = sales_info4().tables
        result = benchmark(collapse_compact, tables, "Region")
        assert result.equivalent(relation)

    def test_relation_to_info3(self, benchmark, relation):
        expected = sales_info3().tables[0]

        def to_matrix():
            cube = Cube.from_facts(BASE_FACTS, ["Part", "Region"], measure="Sold")
            return cube_to_matrix_table(cube, "Region", "Part", "Sales")

        result = benchmark(to_matrix)
        assert result.equivalent(expected)

    def test_info3_to_relation(self, benchmark, relation):
        matrix = sales_info3().tables[0]

        def to_relation():
            cube = matrix_table_to_cube(matrix, "Region", "Part", "Sold")
            return cube_to_relation_table(cube, "Sales")

        result = benchmark(to_relation)
        # SalesInfo3 has region as the first dimension
        facts = {
            (row[2], row[1], row[3])
            for row in (result.row(i) for i in result.data_row_indices())
        }
        expected_facts = {
            (relation.entry(i, 1), relation.entry(i, 2), relation.entry(i, 3))
            for i in relation.data_row_indices()
        }
        assert facts == expected_facts
