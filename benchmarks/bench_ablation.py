"""Experiment ``ablation`` — design choices called out in DESIGN.md.

* **purge via transposition vs a hypothetical native dual** — the library
  implements PURGE as ``TRANSPOSE ∘ CLEAN-UP ∘ TRANSPOSE`` (faithful to
  the paper's duality); the ablation compares against a hand-fused
  column-wise implementation to quantify the cost of the faithful route;
* **compact pipelines vs raw + removal** — ``group_compact`` against the
  literal GROUP → CLEAN-UP → PURGE chain (they must agree);
* **equivalence checking** — sort-refinement fast path vs the permutation
  backtracking fallback.
"""

import pytest

from repro.algebra import cleanup, group, group_compact, purge, transpose
from repro.core import NULL, Symbol, Table, make_table
from repro.data import synthetic_grouped_table, synthetic_sales_table

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``ablation/<test name>`` (see conftest).
BENCH_LABEL = "ablation"


def fused_purge(table: Table, on, by) -> Table:
    """A hand-fused, column-wise purge (ablation baseline only).

    Semantically identical to the library's transposition-based purge for
    the cases exercised here; not part of the public API.
    """
    from repro.algebra.opshelpers import as_attr_set

    on_set = as_attr_set(on)
    by_set = as_attr_set(by)
    by_rows = [i for i in table.data_row_indices() if table.entry(i, 0) in by_set]

    order: list[tuple] = []
    groups: dict[tuple, list[int]] = {}
    untouched: list[int] = []
    for j in table.data_col_indices():
        attr = table.entry(0, j)
        if attr not in on_set:
            untouched.append(j)
            continue
        key = (attr, tuple(table.entry(i, j) for i in by_rows))
        if key not in groups:
            order.append(key)
            groups[key] = []
        groups[key].append(j)

    def merge_columns(cols: list[int]) -> list[Symbol] | None:
        merged = []
        for i in range(table.nrows):
            candidate: Symbol = NULL
            for j in cols:
                entry = table.entry(i, j)
                if entry.is_null:
                    continue
                if candidate.is_null:
                    candidate = entry
                elif candidate != entry:
                    return None
            merged.append(candidate)
        return merged

    replacement: dict[int, list[Symbol]] = {}
    skip: set[int] = set()
    for key in order:
        cols = groups[key]
        if len(cols) == 1:
            continue
        merged = merge_columns(cols)
        if merged is None:
            continue
        replacement[cols[0]] = merged
        skip.update(cols[1:])

    columns = []
    for j in range(table.ncols):
        if j in skip:
            continue
        if j in replacement:
            columns.append(replacement[j])
        else:
            columns.append([table.entry(i, j) for i in range(table.nrows)])
    return Table(zip(*columns))


@pytest.fixture(params=(10, 40, 160), ids=lambda n: f"parts{n}")
def cleaned_grouped(request):
    table = synthetic_sales_table(request.param, 4, seed=request.param)
    grouped = group(table, by="Region", on="Sold")
    return cleanup(grouped, by="Part", on=[None])


class TestPurgeAblation:
    def test_agreement(self, cleaned_grouped):
        via_transpose = purge(cleaned_grouped, on="Sold", by="Region")
        fused = fused_purge(cleaned_grouped, on="Sold", by="Region")
        assert via_transpose == fused

    def test_purge_via_transposition(self, benchmark, cleaned_grouped):
        result = benchmark(purge, cleaned_grouped, "Sold", "Region")
        assert result.width <= cleaned_grouped.width

    def test_purge_fused(self, benchmark, cleaned_grouped):
        result = benchmark(fused_purge, cleaned_grouped, "Sold", "Region")
        assert result.width <= cleaned_grouped.width


class TestCompactPipelineAblation:
    def test_agreement(self, sized_sales):
        compact = group_compact(sized_sales, by="Region", on="Sold")
        literal = purge(
            cleanup(
                group(sized_sales, by="Region", on="Sold"), by="Part", on=[None]
            ),
            on="Sold",
            by="Region",
        )
        assert compact.equivalent(literal)

    def test_group_compact(self, benchmark, sized_sales):
        result = benchmark(group_compact, sized_sales, "Region", "Sold")
        assert result.height >= 1


class TestOptimizerAblation:
    """Compiled programs, raw vs optimized (dead temps removed)."""

    @pytest.fixture(scope="class")
    def compiled(self):
        from repro.relational import (
            Assign,
            FWProgram,
            Join,
            Project,
            Rel,
            Relation,
            RelationalDatabase,
            compile_program,
            relational_to_tabular,
        )

        expr = (
            Join(
                Rel("E").rename("A", "X").rename("B", "Y"),
                Rel("E").rename("A", "Y").rename("B", "Z"),
            )
            .project("X", "Z")
        )
        fw = FWProgram(
            [
                Assign("Scratch", Project(Rel("E"), ["A"])),
                Assign("Out", expr),
            ]
        )
        program = compile_program(fw, {"E": ("A", "B")})
        db = relational_to_tabular(
            RelationalDatabase(
                [Relation("E", ["A", "B"], [(i, i + 1) for i in range(12)])]
            )
        )
        return program, db

    def test_agreement(self, compiled):
        from repro.algebra.programs import optimize

        program, db = compiled
        lean = optimize(program, ["Out"])
        assert len(lean) < len(program)
        assert program.run(db).tables_named("Out") == lean.run(db).tables_named("Out")

    def test_raw_compiled(self, benchmark, compiled):
        program, db = compiled
        result = benchmark(program.run, db)
        assert result.tables_named("Out")

    def test_optimized_compiled(self, benchmark, compiled):
        from repro.algebra.programs import optimize

        program, db = compiled
        lean = optimize(program, ["Out"])
        result = benchmark(lean.run, db)
        assert result.tables_named("Out")


class TestEquivalenceAblation:
    def test_fast_path(self, benchmark):
        a = synthetic_grouped_table(60, 6, seed=3)
        shuffled = a.subtable(
            [0] + list(reversed(range(1, a.nrows))),
            [0] + list(reversed(range(1, a.ncols))),
        )
        assert benchmark(a.equivalent, shuffled)

    def test_backtracking_path(self, benchmark):
        # repeated attributes with entangled values force the search
        a = make_table("R", ["A"] * 6, [tuple(range(6))] * 3)
        b = make_table("R", ["A"] * 6, [tuple(reversed(range(6)))] * 3)
        assert benchmark(a.equivalent, b)
