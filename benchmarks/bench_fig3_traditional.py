"""Experiment ``fig3`` — Figure 3: union, difference, Cartesian product.

Validates the diagrammatic shape laws of Figure 3 (widths concatenate for
union/product; heights add for union and multiply for product; difference
keeps the left scheme) on the sales tables, then times the traditional
operations over growing synthetic inputs.
"""

import pytest

from repro.algebra import classical_union, difference, product, project, select, union
from repro.data import synthetic_sales_table

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``fig3/<test name>`` (see conftest).
BENCH_LABEL = "fig3"


@pytest.fixture
def pair(sized_sales):
    other = synthetic_sales_table(
        n_parts=max(2, sized_sales.height // 5), n_regions=4, seed=99
    )
    return sized_sales, other


class TestShapeLaws:
    def test_union_shape(self, pair):
        left, right = pair
        u = union(left, right)
        assert u.width == left.width + right.width
        assert u.height == left.height + right.height

    def test_product_shape(self, pair):
        left, right = pair
        small_left = left.subtable(range(0, min(11, left.nrows)), range(left.ncols))
        p = product(small_left, right.subtable(range(0, min(11, right.nrows)), range(right.ncols)))
        assert p.width == left.width + right.width

    def test_difference_scheme(self, pair):
        left, right = pair
        assert difference(left, right).column_attributes == left.column_attributes


class TestTiming:
    def test_union(self, benchmark, pair):
        left, right = pair
        result = benchmark(union, left, right)
        assert result.height == left.height + right.height

    def test_classical_union(self, benchmark, pair):
        left, right = pair
        result = benchmark(classical_union, left, left)
        assert result.width == left.width

    def test_difference_self(self, benchmark, sized_sales):
        result = benchmark(difference, sized_sales, sized_sales)
        assert result.height == 0

    def test_product_small(self, benchmark, sized_sales):
        head = sized_sales.subtable(
            range(0, min(11, sized_sales.nrows)), range(sized_sales.ncols)
        )
        result = benchmark(product, head, head)
        assert result.height == head.height**2

    def test_select(self, benchmark, sized_sales):
        result = benchmark(select, sized_sales, "Part", "Part")
        assert result.height == sized_sales.height

    def test_project(self, benchmark, sized_sales):
        result = benchmark(project, sized_sales, ["Part", "Sold"])
        assert result.width == 2
