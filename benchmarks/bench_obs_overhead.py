"""Experiment ``obs`` — tracing/metrics/event-bus overhead on the engine.

Three guarantees are measured:

* **disabled** — with no observation scope active, the instrumented
  engine must be indistinguishable from the raw one (the guard is a
  single attribute check per call site);
* **enabled** — a full trace + metrics observation of the Figure 4
  pivot pipeline stays within a small constant factor of the raw run;
* **event bus** — the same bar for the live event feed: with no
  ``event_stream`` active the bus costs one ``EVT.active`` check, and
  with the feed on (one bounded ring subscriber) the run stays within
  the 1.5x overhead gate.

The exactness of the traced/evented runs is asserted against the plain
one, so observability provably does not change results.
"""

import time

from repro.algebra.programs import parse_program
from repro.data import sales_info1
from repro.obs import observation
from repro.obs.events import event_stream

from conftest import report

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``obs/<test name>`` (see conftest).
BENCH_LABEL = "obs"

PIVOT = """
    Grouped <- GROUP by {Region} on {Sold} (Sales)
    Cleaned <- CLEANUP by {Part} on {null} (Grouped)
    Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
"""


def run_pivot():
    return parse_program(PIVOT).run(sales_info1())


class TestOverhead:
    def test_disabled_observability_runs_raw(self, benchmark):
        result = benchmark(run_pivot)
        assert "Pivot" in {str(n) for n in result.table_names()}

    def test_enabled_observability_runs_instrumented(self, benchmark):
        def traced():
            with observation() as obs:
                db = run_pivot()
            return db, obs

        (db, obs) = benchmark(traced)
        assert db == run_pivot()  # tracing never changes results
        assert obs.metrics.op("GROUP").calls == 1
        assert obs.metrics.counter("statements") == 3

    def test_report_overhead_ratio(self):
        """One-shot ratio measurement, recorded to BENCH_obs.json."""

        def clock(fn, repeats=20):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        raw = clock(run_pivot)

        def traced():
            with observation():
                run_pivot()

        instrumented = clock(traced)
        with observation() as obs:
            run_pivot()
            # report inside the scope so the metrics snapshot rides along
            report(
                "obs-overhead",
                raw_ms=round(raw * 1e3, 3),
                instrumented_ms=round(instrumented * 1e3, 3),
                ratio=round(instrumented / raw, 2),
            )
        # generous bound: instrumentation is bookkeeping, not work
        assert instrumented < raw * 10 + 0.05


class TestEventBusOverhead:
    def test_events_disabled_runs_raw(self, benchmark):
        """The disabled path: no bus, one attribute check per chokepoint."""
        result = benchmark(run_pivot)
        assert "Pivot" in {str(n) for n in result.table_names()}

    def test_events_enabled_runs_published(self, benchmark):
        def evented():
            with event_stream() as bus:
                ring = bus.ring(capacity=512)
                db = run_pivot()
            return db, bus, ring

        db, bus, ring = benchmark(evented)
        assert db == run_pivot()  # events never change results
        assert bus.published >= 6  # 3 span_start + 3 span_finish
        assert ring.received == bus.published

    def test_report_event_bus_overhead_ratio(self):
        """One-shot on/off/disabled ratios, recorded to the trajectory.

        The 1.5x gate: with one ring subscriber attached, the pivot
        pipeline must stay under 1.5x its plain wall-clock (padded by a
        small absolute constant so sub-millisecond noise cannot flake
        the gate on a loaded CI box).
        """

        def clock(fn, repeats=20):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        disabled = clock(run_pivot)

        def evented():
            with event_stream() as bus:
                bus.ring(capacity=512)
                run_pivot()

        enabled = clock(evented)
        report(
            "event-bus-overhead",
            disabled_ms=round(disabled * 1e3, 3),
            enabled_ms=round(enabled * 1e3, 3),
            ratio=round(enabled / disabled, 2),
        )
        assert enabled < disabled * 1.5 + 0.005


class TestLedgerOverhead:
    """The run ledger rides the event bus; its cost is bus + fsync."""

    def test_ledgered_run_records_and_verifies(self, benchmark, tmp_path):
        from repro.obs.ledger import RunLedger, RunRecorder

        ledger = RunLedger(tmp_path / "led")
        program = parse_program(PIVOT)

        def ledgered():
            with event_stream() as bus:
                recorder = RunRecorder(bus, ledger)
                db = program.run(sales_info1())
                recorder.finish(workload="pivot", program=program, result_db=db)
            return db

        db = benchmark(ledgered)
        assert db == run_pivot()  # journaling never changes results
        assert ledger.runs()[-1]["outcome"] == "ok"

    def test_report_ledger_overhead_ratio(self, tmp_path):
        """One-shot bus-only vs ledgered ratios, recorded + gated.

        The 1.5x gate from the issue: a ledgered run (bus + recorder +
        one fsync'd append) must stay under 1.5x the bus-only run,
        padded by an absolute constant because one fsync is a fixed
        cost that dwarfs a sub-millisecond pipeline.
        """
        from repro.obs.ledger import RunLedger, RunRecorder

        def clock(fn, repeats=20):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        def bus_only():
            with event_stream() as bus:
                bus.ring(capacity=4096)
                run_pivot()

        ledger = RunLedger(tmp_path / "led")
        program = parse_program(PIVOT)

        def ledgered():
            with event_stream() as bus:
                recorder = RunRecorder(bus, ledger)
                recorder.finish(
                    workload="pivot", program=program,
                    result_db=program.run(sales_info1()),
                )

        disabled = clock(run_pivot)
        bus_ms = clock(bus_only)
        enabled = clock(ledgered)
        report(
            "ledger-overhead",
            disabled_ms=round(disabled * 1e3, 3),
            bus_only_ms=round(bus_ms * 1e3, 3),
            enabled_ms=round(enabled * 1e3, 3),
            ratio=round(enabled / bus_ms, 2),
        )
        assert enabled < bus_ms * 1.5 + 0.02
