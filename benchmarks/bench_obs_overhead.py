"""Experiment ``obs`` — tracing/metrics overhead on the algebra engine.

Two guarantees are measured:

* **disabled** — with no observation scope active, the instrumented
  engine must be indistinguishable from the raw one (the guard is a
  single attribute check per call site);
* **enabled** — a full trace + metrics observation of the Figure 4
  pivot pipeline stays within a small constant factor of the raw run.

The exactness of the traced run is asserted against the untraced one,
so observability provably does not change results.
"""

import time

from repro.algebra.programs import parse_program
from repro.data import sales_info1
from repro.obs import observation

from conftest import report

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``obs/<test name>`` (see conftest).
BENCH_LABEL = "obs"

PIVOT = """
    Grouped <- GROUP by {Region} on {Sold} (Sales)
    Cleaned <- CLEANUP by {Part} on {null} (Grouped)
    Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
"""


def run_pivot():
    return parse_program(PIVOT).run(sales_info1())


class TestOverhead:
    def test_disabled_observability_runs_raw(self, benchmark):
        result = benchmark(run_pivot)
        assert "Pivot" in {str(n) for n in result.table_names()}

    def test_enabled_observability_runs_instrumented(self, benchmark):
        def traced():
            with observation() as obs:
                db = run_pivot()
            return db, obs

        (db, obs) = benchmark(traced)
        assert db == run_pivot()  # tracing never changes results
        assert obs.metrics.op("GROUP").calls == 1
        assert obs.metrics.counter("statements") == 3

    def test_report_overhead_ratio(self):
        """One-shot ratio measurement, recorded to BENCH_obs.json."""

        def clock(fn, repeats=20):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        raw = clock(run_pivot)

        def traced():
            with observation():
                run_pivot()

        instrumented = clock(traced)
        with observation() as obs:
            run_pivot()
            # report inside the scope so the metrics snapshot rides along
            report(
                "obs-overhead",
                raw_ms=round(raw * 1e3, 3),
                instrumented_ms=round(instrumented * 1e3, 3),
                ratio=round(instrumented / raw, 2),
            )
        # generous bound: instrumentation is bookkeeping, not work
        assert instrumented < raw * 10 + 0.05
