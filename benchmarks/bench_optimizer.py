"""Experiment ``optimizer`` — cost-based planning wins and its overhead.

Two guarantees, each with an explicit gate:

* **multi-join win** — on the 4-way chain workload the estimate-driven
  join order (pair ``A`` with ``D`` and ``B`` with ``C`` early) must run
  at least 2x faster end-to-end than the syntactic left-to-right fold at
  the largest size; in practice the gap is two orders of magnitude,
  because every intermediate stays at ``rows²`` instead of ``rows⁴``;
* **plan-cache hit overhead** — re-planning a cached program (program
  fingerprint + stats fingerprint + rule-set lookup) must cost at most
  1.1x a planning-free dispatch of the already-optimized plan, so
  leaving ``--optimize`` on for repeated runs is never a tax.

Both paths assert the optimized database equals the unoptimized one
before timing, so the trajectory can only ever record sound plans.  The
``optimizer-on``/``optimizer-off`` pair rolls into
``BENCH_trajectory.json`` as ``optimizer/<test name>`` records.
"""

import time

from repro.engine.optimizer import PlanCache, optimize_program
from repro.obs.stats import analyze_database
from repro.runtime.workloads import chain_join_workload

from conftest import report

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``optimizer/<test name>`` (see conftest).
BENCH_LABEL = "optimizer"

#: Per-table rows for the timed on/off pair (laptop-friendly: the
#: syntactic plan is ~40 ms here, ~600 ms at the largest sweep size).
BENCH_ROWS = 8

#: Per-table rows for the one-shot gates (largest size: the syntactic
#: intermediate reaches 16⁴ rows, the optimized one 16²).
GATE_ROWS = 16


def _clock(fn, repeats=20):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestChainDispatch:
    """The timed optimizer-on/off pair for the perf trajectory."""

    def test_chain_dispatch_optimizer_off(self, benchmark):
        program, db = chain_join_workload(BENCH_ROWS)
        result = benchmark(lambda: program.run(db))
        assert result.table("T").nrows - 1 == BENCH_ROWS**2

    def test_chain_dispatch_optimizer_on(self, benchmark):
        program, db = chain_join_workload(BENCH_ROWS)
        stats = analyze_database(db)
        cache = PlanCache()
        optimize_program(program, stats, cache=cache)  # warm the cache

        def planned():
            return optimize_program(program, stats, cache=cache).program.run(db)

        result = benchmark(planned)
        assert result == program.run(db)  # the rewritten plan is sound
        assert cache.hits >= 1


class TestOptimizerGates:
    def test_report_multi_join_win(self):
        """The ≥2x gate at the largest size, recorded to the trajectory."""
        program, db = chain_join_workload(GATE_ROWS)
        stats = analyze_database(db)
        result = optimize_program(program, stats, cache=None)
        assert result.applied  # the chain must actually be rewritten
        optimized = result.program
        assert optimized.run(db) == program.run(db)

        syntactic = _clock(lambda: program.run(db), repeats=3)
        planned = _clock(lambda: optimized.run(db))
        report(
            "multi-join-win",
            syntactic_ms=round(syntactic * 1e3, 3),
            optimized_ms=round(planned * 1e3, 3),
            speedup=round(syntactic / planned, 1),
        )
        assert planned * 2 <= syntactic

    def test_report_plan_cache_hit_overhead(self):
        """The ≤1.1x gate: a cache hit is nearly free.

        Planning-free dispatch runs the already-optimized program;
        the hit path re-enters ``optimize_program`` and pays only the
        fingerprint lookup.  A small absolute pad keeps sub-millisecond
        noise from flaking the gate on a loaded CI box.
        """
        program, db = chain_join_workload(GATE_ROWS)
        stats = analyze_database(db)
        cache = PlanCache()
        optimized = optimize_program(program, stats, cache=cache).program
        assert cache.misses == 1

        def hit():
            return optimize_program(program, stats, cache=cache).program.run(db)

        planning_free = _clock(lambda: optimized.run(db))
        cache_hit = _clock(hit)
        assert cache.hits >= 1
        report(
            "plan-cache-hit",
            planning_free_ms=round(planning_free * 1e3, 3),
            cache_hit_ms=round(cache_hit * 1e3, 3),
            ratio=round(cache_hit / planning_free, 3),
        )
        assert cache_hit < planning_free * 1.1 + 0.001
