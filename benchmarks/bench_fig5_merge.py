"""Experiment ``fig5`` — Figure 5: MERGE on Sold by Region.

Exactness: merging the bold ``Sales`` of ``SalesInfo2`` must produce the
printed twelve-row table (⊥ rows included), symbol for symbol; dropping
the all-⊥ rows recovers Figure 4 top.  The sweep times MERGE and the
compact unpivot on growing grouped tables.
"""

from repro.algebra import merge, merge_compact
from repro.data import (
    figure4_top,
    figure5_result,
    sales_info2,
    synthetic_grouped_table,
)
import pytest

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``fig5/<test name>`` (see conftest).
BENCH_LABEL = "fig5"


class TestExactness:
    def test_merge_reproduces_the_printed_table(self, benchmark):
        pivot = sales_info2().tables[0]
        result = benchmark(merge, pivot, "Sold", "Region")
        assert result == figure5_result()

    def test_null_filtering_recovers_the_relation(self, benchmark):
        pivot = sales_info2().tables[0]
        result = benchmark(merge_compact, pivot, "Sold", "Region")
        assert result.equivalent(figure4_top())


@pytest.fixture(params=(10, 40, 160), ids=lambda n: f"parts{n}")
def grouped_table(request):
    return synthetic_grouped_table(n_parts=request.param, n_regions=6, seed=request.param)


class TestScaling:
    def test_merge_scaling(self, benchmark, grouped_table):
        result = benchmark(merge, grouped_table, "Sold", "Region")
        # one output row per (part row x region column)
        parts = grouped_table.height - 1
        regions = grouped_table.width - 1
        assert result.height == parts * regions

    def test_merge_compact_scaling(self, benchmark, grouped_table):
        result = benchmark(merge_compact, grouped_table, "Sold", "Region")
        assert result.height <= (grouped_table.height - 1) * (grouped_table.width - 1)
