"""Experiment ``fig4`` — Figure 4: GROUP by Region on Sold.

The exactness target: applying the grouping statement to the printed
*top* table must produce the printed *bottom* table, symbol for symbol.
The sweep times GROUP (raw, as printed) and the compact pivot pipeline
(GROUP + CLEAN-UP + PURGE) on growing relations.
"""

from repro.algebra import cleanup, group, group_compact, purge
from repro.data import figure4_bottom, figure4_top, sales_info2

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``fig4/<test name>`` (see conftest).
BENCH_LABEL = "fig4"


class TestExactness:
    def test_group_reproduces_the_printed_table(self, benchmark):
        top = figure4_top()
        result = benchmark(group, top, "Region", "Sold")
        assert result == figure4_bottom()

    def test_cleanup_purge_reach_salesinfo2(self, benchmark):
        bottom = figure4_bottom()

        def compact():
            cleaned = cleanup(bottom, by="Part", on=[None])
            return purge(cleaned, on="Sold", by="Region")

        result = benchmark(compact)
        assert result.equivalent(sales_info2().tables[0])


class TestScaling:
    def test_group_scaling(self, benchmark, sized_sales):
        result = benchmark(group, sized_sales, "Region", "Sold")
        # one ℬ-block per data row + the kept Part column
        assert result.width == 1 + sized_sales.height

    def test_group_compact_scaling(self, benchmark, sized_sales):
        result = benchmark(group_compact, sized_sales, "Region", "Sold")
        # one Sold column per distinct region (4 generated regions)
        assert result.width <= 1 + 4
