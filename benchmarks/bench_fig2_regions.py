"""Experiment ``fig2`` — Figure 2: the four regions of a table.

Figure 2 is the diagrammatic decomposition of a table into table name,
column attributes, row attributes, and data entries, with the subtable
notation τ_I^J.  The benchmark validates the decomposition laws on the
sales tables and times region extraction / subtable formation as the
table grows.
"""

import pytest

from repro.data import sales_info2, synthetic_sales_table

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``fig2/<test name>`` (see conftest).
BENCH_LABEL = "fig2"


class TestRegionLaws:
    def test_regions_partition_the_grid(self):
        table = sales_info2().tables[0]
        cells = 1 + len(table.column_attributes) + len(table.row_attributes)
        cells += sum(len(row) for row in table.data)
        assert cells == table.nrows * table.ncols

    def test_subtable_notation(self):
        table = sales_info2().tables[0]
        # τ_0^> is the attribute row; τ_>^0 the attribute column; τ_>^> data
        top = table.subtable([0], range(1, table.ncols))
        assert top.row(0) == table.column_attributes
        assert table.subtable(range(table.nrows), [0]).nrows == table.nrows


class TestRegionExtraction:
    def test_extract_regions(self, benchmark, sized_sales):
        def extract():
            return (
                sized_sales.name,
                sized_sales.column_attributes,
                sized_sales.row_attributes,
                sized_sales.data,
            )

        name, cols, rows, data = benchmark(extract)
        assert len(rows) == sized_sales.height
        assert len(data) == sized_sales.height

    def test_subtable_half(self, benchmark, sized_sales):
        rows = range(0, sized_sales.nrows, 2)
        cols = range(sized_sales.ncols)
        result = benchmark(sized_sales.subtable, rows, cols)
        assert result.ncols == sized_sales.ncols

    def test_transpose_scaling(self, benchmark, sized_sales):
        result = benchmark(lambda: sized_sales.transpose())
        assert result.width == sized_sales.height
