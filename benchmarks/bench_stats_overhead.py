"""Experiment ``stats`` — ANALYZE cost and estimation-scope overhead.

Three guarantees are measured:

* **disabled** — with no estimation scope active, the estimator layer
  must be indistinguishable from the raw engine (one ``EST.active``
  attribute check per dispatch);
* **enabled** — running the Figure 4 pivot pipeline with a prebuilt
  ANALYZE snapshot installed (so every dispatch predicts, runs, and
  scores) stays under the 1.5x overhead gate;
* **ANALYZE itself** — one statistics pass over the pivot database on
  both engines, timed so the trajectory catches regressions in the
  sketch-building path.

The exactness of the estimated run is asserted against the plain one,
so estimation provably does not change results.
"""

import time

from repro.algebra.programs import parse_program
from repro.data import sales_info1
from repro.obs.estimator import estimation
from repro.obs.stats import analyze_database

from conftest import report

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``stats/<test name>`` (see conftest).
BENCH_LABEL = "stats"

PIVOT = """
    Grouped <- GROUP by {Region} on {Sold} (Sales)
    Cleaned <- CLEANUP by {Part} on {null} (Grouped)
    Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
"""


def run_pivot():
    return parse_program(PIVOT).run(sales_info1())


class TestEstimationOverhead:
    def test_disabled_estimation_runs_raw(self, benchmark):
        """The disabled path: no scope, one attribute check per dispatch."""
        result = benchmark(run_pivot)
        assert "Pivot" in {str(n) for n in result.table_names()}

    def test_enabled_estimation_runs_scored(self, benchmark):
        stats = analyze_database(sales_info1())

        def estimated():
            with estimation(stats) as estimator:
                db = run_pivot()
            return db, estimator

        db, estimator = benchmark(estimated)
        assert db == run_pivot()  # estimation never changes results
        assert estimator.accuracy.count >= 3  # every dispatch was scored

    def test_report_estimation_overhead_ratio(self):
        """One-shot on/off ratio, recorded to the trajectory.

        The 1.5x gate: with an ANALYZE snapshot installed and every
        dispatch predicted and scored, the pivot pipeline must stay
        under 1.5x its plain wall-clock (padded by a small absolute
        constant so sub-millisecond noise cannot flake the gate on a
        loaded CI box).
        """

        def clock(fn, repeats=20):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        disabled = clock(run_pivot)
        stats = analyze_database(sales_info1())

        def estimated():
            with estimation(stats):
                run_pivot()

        enabled = clock(estimated)
        report(
            "estimation-overhead",
            disabled_ms=round(disabled * 1e3, 3),
            enabled_ms=round(enabled * 1e3, 3),
            ratio=round(enabled / disabled, 2),
        )
        assert enabled < disabled * 1.5 + 0.005


class TestAnalyzeCost:
    def test_analyze_vector(self, benchmark):
        stats = benchmark(lambda: analyze_database(sales_info1(), engine="vector"))
        assert stats.total_rows == 8

    def test_analyze_naive(self, benchmark):
        stats = benchmark(lambda: analyze_database(sales_info1(), engine="naive"))
        assert stats.total_rows == 8

    def test_report_analyze_cost(self):
        """One-shot ANALYZE timings on both engines, for the trajectory."""

        def clock(fn, repeats=20):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        db = sales_info1()
        vector = clock(lambda: analyze_database(db, engine="vector"))
        naive = clock(lambda: analyze_database(db, engine="naive"))
        report(
            "analyze-cost",
            vector_ms=round(vector * 1e3, 3),
            naive_ms=round(naive * 1e3, 3),
        )
        assert analyze_database(db, engine="vector") == analyze_database(
            db, engine="naive"
        )
