"""Experiment ``good`` — contribution (4): GOOD embeds in the tabular model.

Random layered object graphs of growing size; a grandparent-derivation
program runs natively and through its tabular algebra compilation, and
the results must coincide (up to new-object ids for additions).
"""

import random

import pytest

from repro.good import (
    EdgeAddition,
    GoodEdge,
    GoodNode,
    GoodProgram,
    NodeAddition,
    ObjectGraph,
    Pattern,
    PatternEdge,
    PatternNode,
    compile_to_ta,
    decode_graph,
    encode_graph,
    graphs_isomorphic,
)

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``good/<test name>`` (see conftest).
BENCH_LABEL = "good"


def random_people(n: int, seed: int) -> ObjectGraph:
    rng = random.Random(seed)
    nodes = [GoodNode.make(f"p{i}", "Person", f"name{i}") for i in range(n)]
    edges = []
    for i in range(1, n):
        parent = rng.randrange(0, i)
        edges.append(GoodEdge.make(f"p{parent}", "parent", f"p{i}"))
    return ObjectGraph(nodes, edges)


def grandparent_program() -> GoodProgram:
    pattern = Pattern(
        [
            PatternNode.make("X", "Person"),
            PatternNode.make("Y", "Person"),
            PatternNode.make("Z", "Person"),
        ],
        [PatternEdge.make("X", "parent", "Y"), PatternEdge.make("Y", "parent", "Z")],
    )
    return GoodProgram((EdgeAddition(pattern, "X", "grandparent", "Z"),))


# Sizes stay small: the compiled simulation materializes the full
# 3-variable pattern product (|Nodes|^3 x |Edges|^2 rows) before selecting —
# the honest cost of unoptimized conjunctive evaluation in pure Python.
@pytest.fixture(params=(4, 6, 8), ids=lambda n: f"people{n}")
def graph(request):
    return random_people(request.param, seed=request.param)


class TestSimulation:
    def test_native_run(self, benchmark, graph):
        out = benchmark(grandparent_program().run, graph)
        assert len(out.edges) >= len(graph.edges)

    def test_tabular_simulation(self, benchmark, graph):
        program = grandparent_program()
        native = program.run(graph)
        ta = compile_to_ta(program)
        encoded = encode_graph(graph)

        def simulate():
            return decode_graph(ta.run(encoded))

        simulated = benchmark(simulate)
        assert simulated == native  # no new objects: exact equality

    def test_abstraction_simulation(self, benchmark):
        # abstraction through SETNEW: exponential in the neighbor domain,
        # so the workload stays tiny by necessity
        from repro.good import Abstraction

        graph = random_people(6, seed=6)
        program = GoodProgram(
            (
                Abstraction(
                    Pattern([PatternNode.make("X", "Person")]),
                    "X",
                    "parent",
                    "Cohort",
                    "member",
                ),
            )
        )
        native = program.run(graph)
        ta = compile_to_ta(program)
        encoded = encode_graph(graph)
        simulated = benchmark(lambda: decode_graph(ta.run(encoded)))
        assert graphs_isomorphic(simulated, native, fixed=graph.symbols())

    def test_node_addition_simulation(self, graph):
        pattern = Pattern(
            [PatternNode.make("P", "Person"), PatternNode.make("C", "Person")],
            [PatternEdge.make("P", "parent", "C")],
        )
        program = GoodProgram((NodeAddition(pattern, "Link", (("who", "P"),)),))
        native = program.run(graph)
        simulated = decode_graph(compile_to_ta(program).run(encode_graph(graph)))
        # new object ids differ; sizes and structure must match
        assert len(simulated) == len(native)
        assert len(simulated.edges) == len(native.edges)
        if len(graph) <= 8:
            assert graphs_isomorphic(simulated, native, fixed=graph.symbols())
