"""Experiment ``thm44`` — Theorem 4.4: TA computes exactly the transformations.

Two executable halves:

* **soundness** — every tabular algebra operation, run as a database
  transformation, satisfies the conditions (genericity, permutation
  invariance, determinacy, constructivity);
* **completeness (normal form)** — transformations recomputed through the
  canonical representation (``P_Rep ∘ P ∘ P_Rep⁻``) agree with their
  direct computation; the benchmark times the direct and normal-form
  routes, quantifying the paper's remark that the normal form "is not the
  way to proceed in practice".
"""

import pytest

from repro.algebra import (
    deduplicate,
    group_compact,
    project,
    select,
    transpose,
    union,
)
from repro.core import TabularDatabase, database, make_table
from repro.transform import check_transformation, normal_form, normal_form_agrees

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``thm44/<test name>`` (see conftest).
BENCH_LABEL = "thm44"


def sales_db() -> TabularDatabase:
    return database(
        make_table(
            "Sales",
            ["Part", "Region", "Sold"],
            [("n", "e", 1), ("b", "e", 2), ("n", "w", 3), ("s", "w", 4)],
        )
    )


def pivot(db):
    return database(group_compact(db.table("Sales"), by="Region", on="Sold"))


def flip(db):
    return TabularDatabase([transpose(t) for t in db.tables])


def projector(db):
    return database(project(db.table("Sales"), ["Part", "Sold"]))


def selector(db):
    return database(select(db.table("Sales"), "Part", "Region"))


def self_union(db):
    t = db.table("Sales")
    return database(union(t, t))


def dedup(db):
    return database(deduplicate(db.table("Sales")))


OPERATIONS = {
    "pivot": pivot,
    "transpose": flip,
    "project": projector,
    "select": selector,
    "union": self_union,
    "dedup": dedup,
}


class TestSoundness:
    @pytest.mark.parametrize("name", sorted(OPERATIONS), ids=sorted(OPERATIONS))
    def test_operation_is_a_transformation(self, benchmark, name):
        f = OPERATIONS[name]
        report = benchmark(check_transformation, f, sales_db(), 2)
        assert report.ok, report.failures


class TestCompleteness:
    @pytest.mark.parametrize(
        "name", ["pivot", "transpose", "project"], ids=["pivot", "transpose", "project"]
    )
    def test_normal_form_agrees(self, name):
        assert normal_form_agrees(OPERATIONS[name], sales_db())

    def test_direct_route(self, benchmark):
        result = benchmark(pivot, sales_db())
        assert len(result) == 1

    def test_normal_form_route(self, benchmark):
        composed = normal_form(pivot)
        result = benchmark(composed, sales_db())
        assert result.equivalent(pivot(sales_db()))
