"""Experiment ``lineage`` — cell-provenance overhead on the algebra engine.

Three measurements:

* **disabled** — with no lineage scope active, every provenance hook is
  a single ``OBS.lineage is None`` check and the engine runs raw (the
  zero-allocation discipline is pinned separately by
  ``tests/obs/test_lineage.py``);
* **enabled** — tagging the input cells and running with provenance
  threading stays within a constant factor of the raw run;
* **witness** — one why-provenance query plus its replay check, the
  interactive-debugging unit of work.

The tagged run's result is asserted equal to the raw result — tagged
symbol copies are indistinguishable to the algebra, so provenance
provably does not change semantics.
"""

import time

from repro.algebra.programs import parse_program
from repro.data import sales_info1
from repro.obs import lineage

from conftest import report

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``lineage/<test name>`` (see conftest).
BENCH_LABEL = "lineage"

PIVOT = """
    Grouped <- GROUP by {Region} on {Sold} (Sales)
    Cleaned <- CLEANUP by {Part} on {null} (Grouped)
    Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
"""


def run_pivot(db=None):
    return parse_program(PIVOT).run(db if db is not None else sales_info1())


def run_pivot_with_lineage():
    with lineage() as lin:
        tagged = lin.tag_database(sales_info1())
        return run_pivot(tagged), lin


class TestLineageOverhead:
    def test_disabled_lineage_runs_raw(self, benchmark):
        result = benchmark(run_pivot)
        assert "Pivot" in {str(n) for n in result.table_names()}

    def test_enabled_lineage_runs_tagged(self, benchmark):
        (db, _lin) = benchmark(run_pivot_with_lineage)
        assert db == run_pivot()  # provenance never changes results

    def test_witness_query_and_replay(self, benchmark):
        def query():
            with lineage() as lin:
                tagged = lin.tag_database(sales_info1())
                out = run_pivot(tagged)
                pivot = out.tables_named("Pivot")[0]  # noqa: F841 - name check
                witness = lin.witness(pivot, 1, 1)
                return lin.replay_check(run_pivot, witness)

        check = benchmark(query)
        assert check.regenerated

    def test_report_overhead_ratio(self):
        """One-shot ratio measurement, recorded to BENCH_obs.json."""

        def clock(fn, repeats=20):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        raw = clock(run_pivot)
        tagged = clock(run_pivot_with_lineage)
        report(
            "lineage-overhead",
            raw_ms=round(raw * 1e3, 3),
            tagged_ms=round(tagged * 1e3, 3),
            ratio=round(tagged / raw, 2),
        )
        # generous bound: tagging is one frozenset per input cell plus
        # set unions at the create sites, not a new algorithm
        assert tagged < raw * 10 + 0.05
