"""Shared benchmark fixtures and reporting helpers.

Every benchmark module regenerates one paper artifact (a figure or a
theorem's executable content) and *asserts* the reproduction before
timing, so `pytest benchmarks/ --benchmark-only` doubles as the
experiment harness of EXPERIMENTS.md.

Observations made with :func:`report` are printed (captured with
``-s``) and appended to ``benchmarks/BENCH_obs.json`` so experiment
runs leave a machine-readable trail next to the human-readable one.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.data import synthetic_sales_table
from repro.obs import OBS

#: Row counts for scaling sweeps (kept laptop-friendly).
SWEEP_SIZES = (10, 40, 160)

#: Machine-readable sink for :func:`report` records (git-ignored).
OBS_PATH = Path(__file__).resolve().parent / "BENCH_obs.json"


@pytest.fixture(params=SWEEP_SIZES, ids=lambda n: f"rows{n}")
def sized_sales(request):
    """A synthetic relation-style sales table with ~n data rows."""
    n = request.param
    return synthetic_sales_table(n_parts=max(2, n // 4), n_regions=4, seed=n)


def report(label: str, **values) -> None:
    """Record one experiment observation.

    The observation is printed for the console log and appended as a
    structured record to ``BENCH_obs.json``.  If an observation scope
    is active, the current metrics snapshot rides along, so benchmark
    records carry per-operation call counts and row flow.
    """
    rendered = "  ".join(f"{k}={v}" for k, v in values.items())
    print(f"[{label}] {rendered}")
    record: dict = {"label": label, "values": values}
    if OBS.active and OBS.metrics is not None and not OBS.metrics.is_empty():
        record["metrics"] = OBS.metrics.snapshot()
    _append_record(record)


def _append_record(record: dict) -> None:
    try:
        existing = json.loads(OBS_PATH.read_text())
        if not isinstance(existing, list):
            existing = []
    except (OSError, ValueError):
        existing = []
    existing.append(record)
    try:
        OBS_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    except OSError:
        pass  # read-only checkout: keep the console record
