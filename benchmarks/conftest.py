"""Shared benchmark fixtures, reporting, and the perf-trajectory rollup.

Every benchmark module regenerates one paper artifact (a figure or a
theorem's executable content) and *asserts* the reproduction before
timing, so `pytest benchmarks/ --benchmark-only` doubles as the
experiment harness of EXPERIMENTS.md.

Three layers of reporting:

* :func:`report` records one observation — printed for the console log
  and stored under the current *run* in ``benchmarks/BENCH_obs.json``
  (git-ignored).  Runs are grouped under a run id with a timestamp and
  only the last :data:`MAX_RUNS` runs are retained, so the sink cannot
  grow without bound;
* a teardown hook harvests every ``benchmark`` fixture's median and
  feeds it through :func:`report` under a stable label
  (``<module BENCH_LABEL>/<test name>``), so timing records appear with
  no per-test boilerplate;
* at session end the run's ``median_ms`` records are rolled into the
  committed ``BENCH_trajectory.json`` at the repository root (median ms
  per label, keyed by git SHA) — the perf history that
  ``python -m repro bench-compare`` diffs and CI gates on.
"""

from __future__ import annotations

import json
import statistics
import uuid
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.data import synthetic_sales_table
from repro.obs import OBS
from repro.obs.regress import current_git_sha, update_trajectory

#: Row counts for scaling sweeps (kept laptop-friendly).
SWEEP_SIZES = (10, 40, 160)

#: Machine-readable sink for :func:`report` records (git-ignored).
OBS_PATH = Path(__file__).resolve().parent / "BENCH_obs.json"

#: The committed perf history at the repository root.
TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_trajectory.json"

#: Runs retained in ``BENCH_obs.json`` (older runs are dropped).
MAX_RUNS = 20

#: The current run: every :func:`report` record lands here.
_RUN: dict = {
    "run_id": uuid.uuid4().hex[:12],
    "started": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    "records": [],
}


@pytest.fixture(params=SWEEP_SIZES, ids=lambda n: f"rows{n}")
def sized_sales(request):
    """A synthetic relation-style sales table with ~n data rows."""
    n = request.param
    return synthetic_sales_table(n_parts=max(2, n // 4), n_regions=4, seed=n)


def report(label: str, **values) -> None:
    """Record one experiment observation.

    The observation is printed for the console log and stored under the
    current run in ``BENCH_obs.json``.  If an observation scope is
    active, the current metrics snapshot rides along, so benchmark
    records carry per-operation call counts and row flow.
    """
    rendered = "  ".join(f"{k}={v}" for k, v in values.items())
    print(f"[{label}] {rendered}")
    record: dict = {"label": label, "values": values}
    if OBS.active and OBS.metrics is not None and not OBS.metrics.is_empty():
        record["metrics"] = OBS.metrics.snapshot()
    _RUN["records"].append(record)
    _flush_runs()


def _load_runs() -> list[dict]:
    try:
        data = json.loads(OBS_PATH.read_text())
    except (OSError, ValueError):
        return []
    # Current shape: {"runs": [...]}.  A bare list is the pre-run-id
    # shape this file used to have; treat it as one legacy run.
    if isinstance(data, dict) and isinstance(data.get("runs"), list):
        return [run for run in data["runs"] if isinstance(run, dict)]
    if isinstance(data, list):
        return [{"run_id": "legacy", "started": None, "records": data}]
    return []


def _flush_runs() -> None:
    runs = [run for run in _load_runs() if run.get("run_id") != _RUN["run_id"]]
    runs.append(_RUN)
    runs = runs[-MAX_RUNS:]
    try:
        OBS_PATH.write_text(json.dumps({"runs": runs}, indent=2) + "\n")
    except OSError:
        pass  # read-only checkout: keep the console record


def _module_label(item) -> str:
    module = getattr(item, "module", None)
    label = getattr(module, "BENCH_LABEL", None)
    if label:
        return str(label)
    name = getattr(module, "__name__", "bench")
    return name.removeprefix("bench_")


@pytest.hookimpl(trylast=True)
def pytest_runtest_teardown(item, nextitem):
    """Harvest the benchmark fixture's stats into a :func:`report` record.

    With ``--benchmark-disable`` (the CI smoke path without the
    regression gate) the fixture carries no stats and nothing is
    recorded, so the trajectory only ever sees measured medians.
    """
    fixture = getattr(item, "funcargs", {}).get("benchmark")
    metadata = getattr(fixture, "stats", None)
    stats = getattr(metadata, "stats", None)
    if stats is None or not getattr(stats, "data", None):
        return
    label = f"{_module_label(item)}/{item.name}"
    report(
        label,
        median_ms=round(stats.median * 1e3, 6),
        rounds=stats.rounds,
    )


def pytest_sessionfinish(session, exitstatus):
    """Roll this run's medians into the committed trajectory file."""
    medians: dict[str, list[float]] = {}
    for record in _RUN["records"]:
        median_ms = record.get("values", {}).get("median_ms")
        if isinstance(median_ms, (int, float)):
            medians.setdefault(record["label"], []).append(float(median_ms))
    if not medians:
        return
    update_trajectory(
        TRAJECTORY_PATH,
        {label: statistics.median(values) for label, values in medians.items()},
        sha=current_git_sha(TRAJECTORY_PATH.parent),
        recorded=datetime.now(timezone.utc).isoformat(timespec="seconds"),
    )
