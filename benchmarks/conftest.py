"""Shared benchmark fixtures and reporting helpers.

Every benchmark module regenerates one paper artifact (a figure or a
theorem's executable content) and *asserts* the reproduction before
timing, so `pytest benchmarks/ --benchmark-only` doubles as the
experiment harness of EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.data import synthetic_sales_table

#: Row counts for scaling sweeps (kept laptop-friendly).
SWEEP_SIZES = (10, 40, 160)


@pytest.fixture(params=SWEEP_SIZES, ids=lambda n: f"rows{n}")
def sized_sales(request):
    """A synthetic relation-style sales table with ~n data rows."""
    n = request.param
    return synthetic_sales_table(n_parts=max(2, n // 4), n_regions=4, seed=n)


def report(label: str, **values) -> None:
    """Print one experiment observation (captured with ``-s``)."""
    rendered = "  ".join(f"{k}={v}" for k, v in values.items())
    print(f"[{label}] {rendered}")
