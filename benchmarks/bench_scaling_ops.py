"""Experiment ``scale`` — engine scaling of every tabular algebra family.

No paper counterpart (the authors' Access/Excel system was never
evaluated); this sweep characterizes the pure-Python engine so the other
experiments' timings have context.  One benchmark per operation family
over the shared size sweep.
"""

import time

import pytest

from repro.algebra import (
    cleanup,
    deduplicate,
    group,
    merge,
    project,
    purge,
    rename,
    select_constant,
    split,
    transpose,
    tuplenew,
    union,
)
from repro.algebra.programs import parse_program
from repro.algebra.programs.statements import Program, assign
from repro.core import NULL, FreshValueSource, Name, Table, TabularDatabase, Value
from repro.data import sales_info1, synthetic_grouped_table
from repro.engine import run_program

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``scale/<test name>`` (see conftest).
BENCH_LABEL = "scale"


class TestOperationScaling:
    def test_transpose(self, benchmark, sized_sales):
        result = benchmark(transpose, sized_sales)
        assert result.width == sized_sales.height

    def test_rename(self, benchmark, sized_sales):
        result = benchmark(rename, sized_sales, "Sold", "Quantity")
        assert result.height == sized_sales.height

    def test_project(self, benchmark, sized_sales):
        result = benchmark(project, sized_sales, ["Part"])
        assert result.width == 1

    def test_select_constant(self, benchmark, sized_sales):
        result = benchmark(select_constant, sized_sales, "Region", "region0")
        assert result.height <= sized_sales.height

    def test_union_self(self, benchmark, sized_sales):
        result = benchmark(union, sized_sales, sized_sales)
        assert result.height == 2 * sized_sales.height

    def test_group(self, benchmark, sized_sales):
        result = benchmark(group, sized_sales, "Region", "Sold")
        assert result.height == sized_sales.height + 1

    def test_split(self, benchmark, sized_sales):
        result = benchmark(split, sized_sales, "Region")
        assert 1 <= len(result) <= 4

    def test_cleanup(self, benchmark, sized_sales):
        grouped = group(sized_sales, by="Region", on="Sold")
        result = benchmark(cleanup, grouped, "Part", [None])
        assert result.height <= grouped.height

    def test_purge(self, benchmark, sized_sales):
        grouped = cleanup(
            group(sized_sales, by="Region", on="Sold"), by="Part", on=[None]
        )
        result = benchmark(purge, grouped, "Sold", "Region")
        assert result.width <= grouped.width

    def test_merge(self, benchmark):
        grouped = synthetic_grouped_table(40, 6, seed=7)
        result = benchmark(merge, grouped, "Sold", "Region")
        assert result.height == (grouped.height - 1) * (grouped.width - 1)

    def test_deduplicate(self, benchmark, sized_sales):
        doubled = union(sized_sales, sized_sales)
        from repro.algebra import deduplicate_columns

        merged = deduplicate_columns(doubled)
        result = benchmark(deduplicate, merged)
        assert result.height == sized_sales.height

    def test_tuplenew(self, benchmark, sized_sales):
        result = benchmark(
            lambda: tuplenew(sized_sales, "Id", FreshValueSource())
        )
        assert result.width == sized_sales.width + 1


def _keyed_relation(name, n_rows, key_attr, key_count, prefix):
    """A relation-style table whose ``key_attr`` column repeats over
    ``key_count`` values — the join column for the product/select case."""
    keys = [Value(f"k{i}") for i in range(key_count)]
    header = [Name(name), Name(key_attr), Name(f"{prefix}0"), Name(f"{prefix}1")]
    grid = [header]
    for i in range(n_rows):
        grid.append(
            [NULL, keys[i % key_count], Value(f"{prefix}{i}a"), Value(f"{prefix}{i}b")]
        )
    return Table(grid)


def _duplicated_table(n_rows, n_cols, n_distinct):
    """A wide table where every distinct row repeats ~n/n_distinct times."""
    header = [Name("R")] + [Name(f"A{c}") for c in range(n_cols)]
    grid = [header]
    for i in range(n_rows):
        k = i % n_distinct
        grid.append([NULL] + [Value(f"v{k}_{c}") for c in range(n_cols)])
    return Table(grid)


def _product_select_case(n_rows):
    db = TabularDatabase(
        [
            _keyed_relation("R", n_rows, "K", max(2, n_rows // 8), "a"),
            _keyed_relation("S", n_rows, "J", max(2, n_rows // 8), "b"),
        ]
    )
    program = Program(
        [
            assign("T", "PRODUCT", "R", "S"),
            assign("T", "SELECT", "T", left="K", right="J"),
        ]
    )
    return program, db


def _dedup_fan_case(n_rows):
    db = TabularDatabase([_duplicated_table(n_rows, 14, max(2, n_rows // 16))])
    program = Program([assign(f"D{i}", "DEDUP", "R") for i in range(8)])
    return program, db


class TestEngineBackends:
    """Naive interpreter vs vectorized backend, side by side.

    Each case runs the *same program* under ``engine="naive"`` and
    ``engine="vector"``; the parametrize ids land in the trajectory as
    per-backend labels (``scale/test_...[naive-rowsN]`` vs
    ``[vector-rowsN]``), so ``bench-compare`` tracks both paths
    independently.
    """

    @pytest.mark.parametrize("rows", [10, 40, 160], ids=lambda n: f"rows{n}")
    @pytest.mark.parametrize("engine", ["naive", "vector"])
    def test_product_select_program(self, benchmark, engine, rows):
        program, db = _product_select_case(rows)
        result = benchmark(run_program, program, db, engine=engine)
        joined = result.tables_named("T")
        assert len(joined) == 1 and joined[0].height >= rows

    @pytest.mark.parametrize("rows", [10, 40, 160], ids=lambda n: f"rows{n}")
    @pytest.mark.parametrize("engine", ["naive", "vector"])
    def test_dedup_fan_program(self, benchmark, engine, rows):
        program, db = _dedup_fan_case(rows)
        result = benchmark(run_program, program, db, engine=engine)
        deduped = result.tables_named("D0")
        assert len(deduped) == 1
        assert deduped[0].height == max(2, rows // 16)


def _best_of(fn, reps=3):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize(
    "make_case,floor",
    [(_product_select_case, 5.0), (_dedup_fan_case, 5.0)],
    ids=["product_select", "dedup"],
)
def test_backend_speedup_floor(make_case, floor):
    """The vectorized backend is ≥5x faster at the largest sweep size.

    Measured directly (best of three wall-clock runs) rather than via the
    benchmark fixture so the assertion also runs under
    ``--benchmark-disable``.  Current margins are ~31x (product/select)
    and ~7x (dedup fan-out), so the 5x floor has headroom against CI
    timer noise.
    """
    program, db = make_case(160)
    expected = run_program(program, db, engine="naive")
    assert run_program(program, db, engine="vector") == expected

    naive = _best_of(lambda: run_program(program, db, engine="naive"))
    vector = _best_of(lambda: run_program(program, db, engine="vector"))
    assert naive / vector >= floor, (
        f"speedup {naive / vector:.1f}x fell below the {floor}x floor "
        f"(naive={naive * 1e3:.2f}ms vector={vector * 1e3:.2f}ms)"
    )


class TestInterpreterOverhead:
    """Interpreter dispatch vs direct calls (ablation input)."""

    def test_program_pipeline(self, benchmark):
        program = parse_program(
            """
            Grouped <- GROUP by {Region} on {Sold} (Sales)
            Cleaned <- CLEANUP by {Part} on {null} (Grouped)
            Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
            """
        )
        db = sales_info1()
        result = benchmark(program.run, db)
        assert result.tables_named("Pivot")

    def test_direct_pipeline(self, benchmark):
        table = sales_info1().table("Sales")

        def direct():
            grouped = group(table, by="Region", on="Sold")
            cleaned = cleanup(grouped, by="Part", on=[None])
            return purge(cleaned, on="Sold", by="Region")

        result = benchmark(direct)
        assert result.width == 5
