"""Experiment ``scale`` — engine scaling of every tabular algebra family.

No paper counterpart (the authors' Access/Excel system was never
evaluated); this sweep characterizes the pure-Python engine so the other
experiments' timings have context.  One benchmark per operation family
over the shared size sweep.
"""

import pytest

from repro.algebra import (
    cleanup,
    deduplicate,
    group,
    merge,
    project,
    purge,
    rename,
    select_constant,
    split,
    transpose,
    tuplenew,
    union,
)
from repro.algebra.programs import parse_program
from repro.core import FreshValueSource
from repro.data import sales_info1, synthetic_grouped_table

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``scale/<test name>`` (see conftest).
BENCH_LABEL = "scale"


class TestOperationScaling:
    def test_transpose(self, benchmark, sized_sales):
        result = benchmark(transpose, sized_sales)
        assert result.width == sized_sales.height

    def test_rename(self, benchmark, sized_sales):
        result = benchmark(rename, sized_sales, "Sold", "Quantity")
        assert result.height == sized_sales.height

    def test_project(self, benchmark, sized_sales):
        result = benchmark(project, sized_sales, ["Part"])
        assert result.width == 1

    def test_select_constant(self, benchmark, sized_sales):
        result = benchmark(select_constant, sized_sales, "Region", "region0")
        assert result.height <= sized_sales.height

    def test_union_self(self, benchmark, sized_sales):
        result = benchmark(union, sized_sales, sized_sales)
        assert result.height == 2 * sized_sales.height

    def test_group(self, benchmark, sized_sales):
        result = benchmark(group, sized_sales, "Region", "Sold")
        assert result.height == sized_sales.height + 1

    def test_split(self, benchmark, sized_sales):
        result = benchmark(split, sized_sales, "Region")
        assert 1 <= len(result) <= 4

    def test_cleanup(self, benchmark, sized_sales):
        grouped = group(sized_sales, by="Region", on="Sold")
        result = benchmark(cleanup, grouped, "Part", [None])
        assert result.height <= grouped.height

    def test_purge(self, benchmark, sized_sales):
        grouped = cleanup(
            group(sized_sales, by="Region", on="Sold"), by="Part", on=[None]
        )
        result = benchmark(purge, grouped, "Sold", "Region")
        assert result.width <= grouped.width

    def test_merge(self, benchmark):
        grouped = synthetic_grouped_table(40, 6, seed=7)
        result = benchmark(merge, grouped, "Sold", "Region")
        assert result.height == (grouped.height - 1) * (grouped.width - 1)

    def test_deduplicate(self, benchmark, sized_sales):
        doubled = union(sized_sales, sized_sales)
        from repro.algebra import deduplicate_columns

        merged = deduplicate_columns(doubled)
        result = benchmark(deduplicate, merged)
        assert result.height == sized_sales.height

    def test_tuplenew(self, benchmark, sized_sales):
        result = benchmark(
            lambda: tuplenew(sized_sales, "Id", FreshValueSource())
        )
        assert result.width == sized_sales.width + 1


class TestInterpreterOverhead:
    """Interpreter dispatch vs direct calls (ablation input)."""

    def test_program_pipeline(self, benchmark):
        program = parse_program(
            """
            Grouped <- GROUP by {Region} on {Sold} (Sales)
            Cleaned <- CLEANUP by {Part} on {null} (Grouped)
            Pivot   <- PURGE on {Sold} by {Region} (Cleaned)
            """
        )
        db = sales_info1()
        result = benchmark(program.run, db)
        assert result.tables_named("Pivot")

    def test_direct_pipeline(self, benchmark):
        table = sales_info1().table("Sales")

        def direct():
            grouped = group(table, by="Region", on="Sold")
            cleaned = cleanup(grouped, by="Part", on=[None])
            return purge(cleaned, on="Sold", by="Region")

        result = benchmark(direct)
        assert result.width == 5
