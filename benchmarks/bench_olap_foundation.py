"""Experiment ``olap`` — Section 4.3: tabular algebra as an OLAP foundation.

Exactness: the Figure 1 summary data (per-part totals, per-region totals,
grand total 420) regenerates from the cube operator, in all four
representation shapes.  Scaling: pivot (through the tabular algebra),
roll-up, and the cube operator over growing workloads.
"""

import pytest

from repro.data import BASE_FACTS, synthetic_sales_facts
from repro.olap import (
    Cube,
    cube_operator,
    cube_to_grouped_table,
    cube_to_matrix_table,
    database_with_totals,
    grouped_with_totals,
    matrix_with_totals,
    summary_relations,
)
from repro.data import sales_info1, sales_info2, sales_info3, sales_info4

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``olap/<test name>`` (see conftest).
BENCH_LABEL = "olap"


@pytest.fixture(scope="module")
def paper_cube():
    return Cube.from_facts(BASE_FACTS, ["Part", "Region"], measure="Sold")


class TestFigure1Summaries:
    def test_summary_relations(self, benchmark, paper_cube):
        result = benchmark(summary_relations, paper_cube)
        expected = sales_info1(with_summary=True)
        for name in ("TotalPartSales", "TotalRegionSales", "GrandTotal"):
            assert result.table(name).equivalent(expected.table(name))

    def test_salesinfo2_summaries(self, benchmark, paper_cube):
        result = benchmark(grouped_with_totals, paper_cube, "Part", "Region", "Sales")
        assert result.equivalent(sales_info2(with_summary=True).tables[0])

    def test_salesinfo3_summaries(self, benchmark, paper_cube):
        result = benchmark(matrix_with_totals, paper_cube, "Region", "Part", "Sales")
        assert result.equivalent(sales_info3(with_summary=True).tables[0])

    def test_salesinfo4_summaries(self, benchmark, paper_cube):
        result = benchmark(database_with_totals, paper_cube, "Region", "Sales")
        expected = sales_info4(with_summary=True).tables
        assert all(any(t.equivalent(x) for x in expected) for t in result.tables)


@pytest.fixture(params=(10, 40, 160), ids=lambda n: f"parts{n}")
def workload_cube(request):
    facts = synthetic_sales_facts(request.param, 6, 0.8, seed=request.param)
    return Cube.from_facts(facts, ["Part", "Region"], measure="Sold")


class TestScaling:
    def test_pivot_through_the_algebra(self, benchmark, workload_cube):
        result = benchmark(
            cube_to_grouped_table, workload_cube, "Part", "Region", "Sales"
        )
        assert result.width <= 1 + len(workload_cube.coords["Region"])

    def test_matrix_bridge(self, benchmark, workload_cube):
        result = benchmark(
            cube_to_matrix_table, workload_cube, "Part", "Region", "Sales"
        )
        assert result.height == len(workload_cube.coords["Part"])

    def test_rollup(self, benchmark, workload_cube):
        result = benchmark(workload_cube.rollup, "Region")
        assert result.arity == 1

    def test_cube_operator(self, benchmark, workload_cube):
        result = benchmark(cube_operator, workload_cube)
        assert len(result.cells) > len(workload_cube.cells)
