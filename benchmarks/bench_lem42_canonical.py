"""Experiment ``lem42`` — Lemmas 4.2/4.3: the canonical representation.

Round trip: ``decode(encode(D))`` must be D up to row/column permutations
for every Figure 1 database and for random databases of growing size;
identifier choice must be immaterial; the FDs must validate.  The sweep
times encode and decode separately.
"""

import pytest

from repro.canonical import DATA, MAP, decode, encode, validate_rep
from repro.core import FreshValueSource, TabularDatabase
from repro.data import (
    random_database,
    sales_info1,
    sales_info2,
    sales_info3,
    sales_info4,
    synthetic_sales_table,
)

#: Trajectory label prefix: timing records roll into
#: ``BENCH_trajectory.json`` as ``lem42/<test name>`` (see conftest).
BENCH_LABEL = "lem42"


class TestRoundTrips:
    @pytest.mark.parametrize(
        "factory",
        [sales_info1, sales_info2, sales_info3, sales_info4],
        ids=["info1", "info2", "info3", "info4"],
    )
    def test_figure1_round_trip(self, benchmark, factory):
        db = factory(with_summary=True)

        def round_trip():
            return decode(encode(db))

        result = benchmark(round_trip)
        assert result.equivalent(db)

    def test_random_databases_round_trip(self):
        for seed in range(5):
            db = random_database(n_tables=3, height=3, width=3, seed=seed)
            usable = TabularDatabase(
                t for t in db.tables if t.height > 0 and t.width > 0
            )
            assert decode(encode(usable)).equivalent(usable)

    def test_identifier_choice_immaterial(self):
        db = sales_info2()
        a = decode(encode(db, FreshValueSource(0)))
        b = decode(encode(db, FreshValueSource(10_000)))
        assert a.equivalent(b)


class TestScaling:
    @pytest.fixture(params=(10, 40, 160), ids=lambda n: f"rows{n}")
    def db(self, request):
        table = synthetic_sales_table(n_parts=request.param, n_regions=4, seed=1)
        return TabularDatabase([table])

    def test_encode_scaling(self, benchmark, db):
        rep = benchmark(encode, db)
        validate_rep(rep)
        rows = sum(t.height for t in db.tables)
        assert rep.table(DATA).height == rows * 3  # three data columns

    def test_decode_scaling(self, benchmark, db):
        rep = encode(db)
        result = benchmark(decode, rep)
        assert result.equivalent(db)

    def test_fixed_width_invariant(self, db):
        rep = encode(db)
        assert rep.table(DATA).width == 4
        assert rep.table(MAP).width == 2
